#!/usr/bin/env python
"""Link-check the Markdown docs and syntax-check their fenced Python.

Teaching docs rot in two ways: cross-references break when files move, and
code blocks drift from the API they demonstrate. This checker catches both
cheaply, and CI runs it (plus ``python -m doctest`` over README.md and the
docs/ guides for the ``>>>`` snippets, whose *outputs* must match):

1. Every relative Markdown link ``[text](target)`` in the repo's root and
   ``docs/`` Markdown files must point at an existing file or directory
   (``http(s):``/``mailto:`` links are not checked — no network in CI).
2. Every ``#fragment`` on a relative or same-file link must name a real
   heading anchor (GitHub slug rules: lowercase, punctuation stripped,
   spaces to hyphens, ``-N`` suffixes for duplicates) in the target
   Markdown file, so section cross-references cannot rot when headings
   are renamed or renumbered.
3. Every fenced ```` ```python ```` block must at least *compile*. Blocks
   written as interactive sessions (``>>>``) are skipped here; doctest
   executes those for real.

Usage::

    python tools/check_docs.py            # check the repo it lives in
    python tools/check_docs.py --root DIR # check another tree
"""

from __future__ import annotations

import argparse
import doctest
import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"```python\n(.*?)```", re.DOTALL)
HEADING_RE = re.compile(r"^#{1,6}\s+(.+?)\s*$")
MD_LINK_IN_HEADING_RE = re.compile(r"\[([^\]]*)\]\([^)]*\)")

SKIP_SCHEMES = ("http://", "https://", "mailto:")


def github_slug(title: str) -> str:
    """GitHub's heading → anchor transformation (the common subset).

    Inline code/link markup is reduced to its text, then: lowercase, drop
    everything but word characters, spaces and hyphens, spaces become
    hyphens (one each — consecutive spaces yield consecutive hyphens).
    """
    title = MD_LINK_IN_HEADING_RE.sub(r"\1", title).replace("`", "")
    title = re.sub(r"[^\w\- ]", "", title.lower())
    return title.replace(" ", "-")


def heading_anchors(text: str) -> set[str]:
    """Every anchor the rendered page exposes (``-N`` suffixed duplicates).

    Headings inside fenced code blocks are not headings and expose nothing.
    """
    anchors: set[str] = set()
    counts: dict[str, int] = {}
    in_fence = False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING_RE.match(line)
        if match is None:
            continue
        slug = github_slug(match.group(1))
        seen = counts.get(slug, 0)
        counts[slug] = seen + 1
        anchors.add(slug if seen == 0 else f"{slug}-{seen}")
    return anchors


def markdown_files(root: Path) -> list[Path]:
    """The docs we gate: root-level *.md plus everything under docs/."""
    files = sorted(root.glob("*.md"))
    files += sorted((root / "docs").glob("**/*.md"))
    return [f for f in files if f.is_file()]


def check_links(
    path: Path, root: Path, anchor_cache: dict[Path, set[str]] | None = None
) -> list[str]:
    """Broken relative links (and dead ``#anchors``) in one Markdown file."""
    if anchor_cache is None:
        anchor_cache = {}

    def anchors_of(target: Path) -> set[str]:
        if target not in anchor_cache:
            anchor_cache[target] = heading_anchors(
                target.read_text(encoding="utf-8")
            )
        return anchor_cache[target]

    errors = []
    text = path.read_text(encoding="utf-8")
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(SKIP_SCHEMES):
            continue
        relative, _, fragment = target.partition("#")
        if relative:
            resolved = (path.parent / relative).resolve()
            if not resolved.exists():
                errors.append(
                    f"{path.relative_to(root)}: broken link '{target}' "
                    f"(no such file: {relative})"
                )
                continue
        else:
            resolved = path  # bare '#fragment': a same-page section link
        if not fragment:
            continue
        if resolved.is_file() and resolved.suffix == ".md":
            if fragment not in anchors_of(resolved):
                errors.append(
                    f"{path.relative_to(root)}: broken anchor '{target}' "
                    f"(no heading slugs to '#{fragment}' in "
                    f"{resolved.name})"
                )
    return errors


def check_python_fences(path: Path, root: Path) -> list[str]:
    """Fenced python blocks that do not even compile."""
    errors = []
    text = path.read_text(encoding="utf-8")
    for i, match in enumerate(FENCE_RE.finditer(text), start=1):
        block = match.group(1)
        if ">>>" in block:
            continue  # interactive session: doctest executes it for real
        try:
            compile(block, f"<{path.name} python block {i}>", "exec")
        except SyntaxError as exc:
            errors.append(
                f"{path.relative_to(root)}: python block {i} does not "
                f"compile: {exc}"
            )
    return errors


def count_doctests(path: Path) -> int:
    """Number of ``>>>`` examples doctest would run over this file."""
    parser = doctest.DocTestParser()
    examples = parser.get_examples(path.read_text(encoding="utf-8"))
    return len(examples)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parents[1],
        help="repository root to check (default: this repo)",
    )
    args = parser.parse_args(argv)
    root = args.root.resolve()

    errors: list[str] = []
    checked_links = 0
    anchor_cache: dict[Path, set[str]] = {}
    for path in markdown_files(root):
        errors += check_links(path, root, anchor_cache)
        errors += check_python_fences(path, root)
        checked_links += len(LINK_RE.findall(path.read_text(encoding="utf-8")))

    # The doctest gate only bites if the snippets exist: losing them all to
    # an over-eager edit should fail loudly, not pass vacuously. Minimums
    # track the guide's growth (the migration chapter §6 added its own).
    for doc, minimum in (
        ("README.md", 3),
        (Path("docs") / "FEDERATION.md", 12),
        (Path("docs") / "PERFORMANCE.md", 8),
        (Path("docs") / "POLICIES.md", 12),
        (Path("docs") / "SERVICE.md", 12),
        (Path("docs") / "WORKLOADS.md", 12),
    ):
        path = root / doc
        if not path.exists():
            errors.append(f"{doc}: missing (doctest-gated document)")
        elif count_doctests(path) < minimum:
            errors.append(
                f"{doc}: expected at least {minimum} doctest example(s); "
                "the runnable snippets have been removed"
            )

    if errors:
        print(f"FAIL: {len(errors)} documentation problem(s):")
        for error in errors:
            print(f"  - {error}")
        return 1
    files = markdown_files(root)
    print(
        f"OK: {len(files)} Markdown files, {checked_links} links checked "
        "(files and #anchors), all python fences compile, doctest snippets "
        "present"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
