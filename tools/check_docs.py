#!/usr/bin/env python
"""Link-check the Markdown docs and syntax-check their fenced Python.

Teaching docs rot in two ways: cross-references break when files move, and
code blocks drift from the API they demonstrate. This checker catches both
cheaply, and CI runs it (plus ``python -m doctest`` over README.md and
docs/FEDERATION.md for the ``>>>`` snippets, whose *outputs* must match):

1. Every relative Markdown link ``[text](target)`` in the repo's root and
   ``docs/`` Markdown files must point at an existing file or directory
   (URL fragments are stripped; ``http(s):``/``mailto:`` links are not
   checked — no network in CI).
2. Every fenced ```` ```python ```` block must at least *compile*. Blocks
   written as interactive sessions (``>>>``) are skipped here; doctest
   executes those for real.

Usage::

    python tools/check_docs.py            # check the repo it lives in
    python tools/check_docs.py --root DIR # check another tree
"""

from __future__ import annotations

import argparse
import doctest
import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"```python\n(.*?)```", re.DOTALL)

SKIP_SCHEMES = ("http://", "https://", "mailto:")


def markdown_files(root: Path) -> list[Path]:
    """The docs we gate: root-level *.md plus everything under docs/."""
    files = sorted(root.glob("*.md"))
    files += sorted((root / "docs").glob("**/*.md"))
    return [f for f in files if f.is_file()]


def check_links(path: Path, root: Path) -> list[str]:
    """Broken relative links in one Markdown file."""
    errors = []
    text = path.read_text(encoding="utf-8")
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = (path.parent / relative).resolve()
        if not resolved.exists():
            errors.append(
                f"{path.relative_to(root)}: broken link '{target}' "
                f"(no such file: {relative})"
            )
    return errors


def check_python_fences(path: Path, root: Path) -> list[str]:
    """Fenced python blocks that do not even compile."""
    errors = []
    text = path.read_text(encoding="utf-8")
    for i, match in enumerate(FENCE_RE.finditer(text), start=1):
        block = match.group(1)
        if ">>>" in block:
            continue  # interactive session: doctest executes it for real
        try:
            compile(block, f"<{path.name} python block {i}>", "exec")
        except SyntaxError as exc:
            errors.append(
                f"{path.relative_to(root)}: python block {i} does not "
                f"compile: {exc}"
            )
    return errors


def count_doctests(path: Path) -> int:
    """Number of ``>>>`` examples doctest would run over this file."""
    parser = doctest.DocTestParser()
    examples = parser.get_examples(path.read_text(encoding="utf-8"))
    return len(examples)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parents[1],
        help="repository root to check (default: this repo)",
    )
    args = parser.parse_args(argv)
    root = args.root.resolve()

    errors: list[str] = []
    checked_links = 0
    for path in markdown_files(root):
        errors += check_links(path, root)
        errors += check_python_fences(path, root)
        checked_links += len(LINK_RE.findall(path.read_text(encoding="utf-8")))

    # The doctest gate only bites if the snippets exist: losing them all to
    # an over-eager edit should fail loudly, not pass vacuously.
    for doc, minimum in (("README.md", 1), (Path("docs") / "FEDERATION.md", 5)):
        path = root / doc
        if not path.exists():
            errors.append(f"{doc}: missing (doctest-gated document)")
        elif count_doctests(path) < minimum:
            errors.append(
                f"{doc}: expected at least {minimum} doctest example(s); "
                "the runnable snippets have been removed"
            )

    if errors:
        print(f"FAIL: {len(errors)} documentation problem(s):")
        for error in errors:
            print(f"  - {error}")
        return 1
    files = markdown_files(root)
    print(
        f"OK: {len(files)} Markdown files, {checked_links} links checked, "
        "all python fences compile, doctest snippets present"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
