"""Setuptools shim.

This offline environment ships setuptools without the ``wheel`` package, so
PEP 517 editable installs (which build a wheel) are unavailable. Keeping a
``setup.py`` lets ``pip install -e .`` fall back to the legacy
``setup.py develop`` path. All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
