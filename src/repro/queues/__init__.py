"""Arrival-side queueing (the batch queue of Fig. 1)."""

from .batch_queue import BatchQueue

__all__ = ["BatchQueue"]
