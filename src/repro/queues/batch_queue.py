"""Batch queue — the arrival buffer of Fig. 1.

"The batch queue is where tasks are held before being scheduled." Immediate
policies see it drain one task per arrival; batch policies see the whole
buffer. The queue also performs the *cancellation sweep*: before each mapping
pass, tasks whose deadline has already passed are evicted as CANCELLED
("canceled because of missing its deadline before assignment", §3).
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

from ..core.errors import SimulationStateError
from ..tasks.task import Task, TaskStatus

__all__ = ["BatchQueue"]


class BatchQueue:
    """FIFO arrival buffer with deadline sweeping."""

    def __init__(self) -> None:
        self._queue: deque[Task] = deque()

    def __len__(self) -> int:
        return len(self._queue)

    def __iter__(self) -> Iterator[Task]:
        return iter(self._queue)

    def __contains__(self, task: Task) -> bool:
        return task in self._queue

    @property
    def is_empty(self) -> bool:
        return not self._queue

    def push(self, task: Task) -> None:
        """Admit an arriving task (moves it to IN_BATCH_QUEUE)."""
        task.enqueue_batch()
        self._queue.append(task)

    def readmit(self, task: Task) -> None:
        """Re-admit a task already in IN_BATCH_QUEUE state (failure requeue)."""
        if task.status is not TaskStatus.IN_BATCH_QUEUE:
            raise SimulationStateError(
                f"task {task.id} cannot be readmitted in state {task.status.name}"
            )
        self._queue.append(task)

    def peek(self) -> Task | None:
        return self._queue[0] if self._queue else None

    def pop(self) -> Task:
        if not self._queue:
            raise SimulationStateError("pop from an empty batch queue")
        return self._queue.popleft()

    def remove(self, task: Task) -> bool:
        """Remove a specific task (a mapping decision took it). False if absent."""
        try:
            self._queue.remove(task)
            return True
        except ValueError:
            return False

    def sweep_expired(self, now: float) -> list[Task]:
        """Evict and CANCEL all tasks whose deadline is <= now.

        A task whose deadline equals *now* can no longer complete on time
        (its execution would finish strictly after the deadline for any
        positive EET), so it is cancelled rather than mapped.
        """
        queue = self._queue
        for task in queue:
            if task.deadline <= now:
                break
        else:
            return []  # common case: nothing expired, no rebuild
        kept: deque[Task] = deque()
        cancelled: list[Task] = []
        for task in queue:
            if task.deadline <= now:
                task.cancel(now)
                cancelled.append(task)
            else:
                kept.append(task)
        self._queue = kept
        return cancelled

    def snapshot(self) -> list[Task]:
        """Current contents in FIFO order (copy)."""
        return list(self._queue)

    def clear(self) -> list[Task]:
        out = list(self._queue)
        self._queue.clear()
        return out
