"""Workload generator — paper feature (i).

Produces a :class:`~repro.tasks.workload.Workload` from per-task-type arrival
specs. Two pieces reproduce the class-assignment methodology of §4:

* **Intensity calibration.** The assignment uses three traces at "low, medium
  and high" arrival intensity to stress the system at different levels. Here,
  intensity is expressed as an *oversubscription ratio* ρ = offered load /
  system capacity. Given the EET matrix and the machine population we compute
  the aggregate service rate μ (tasks/second if machines run a balanced mix)
  and scale arrival rates so that Σλ = ρ·μ. ρ < 1 under-subscribes the system
  (most deadlines met); ρ ≈ 1 saturates it; ρ > 1 oversubscribes it (deadline
  misses become unavoidable) — yielding the monotone completion-rate decline
  the paper expects students to observe.

* **Deadline model.** Each task's deadline is ``arrival + relative deadline``.
  The relative deadline comes either from the task type (fixed) or from the
  EET matrix: ``slack_factor × mean EET of the type across machines`` — the
  standard heterogeneous-computing convention, so tighter machines imply
  tighter deadlines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..core.errors import ConfigurationError
from ..core.rng import make_rng, spawn
from ..machines.eet import EETMatrix
from .arrivals import ArrivalProcess, PoissonProcess, arrival_process_from_spec
from .task import Task
from .workload import Workload

__all__ = [
    "TaskTypeSpec",
    "WorkloadGenerator",
    "INTENSITY_LEVELS",
    "oversubscription_for_level",
]

#: Canonical oversubscription ratios for the class-assignment intensity labels.
INTENSITY_LEVELS: dict[str, float] = {"low": 0.5, "medium": 1.0, "high": 2.0}


def oversubscription_for_level(level: str | float) -> float:
    """Map an intensity label (or a raw ratio) to an oversubscription ratio."""
    if isinstance(level, str):
        try:
            return INTENSITY_LEVELS[level.lower()]
        except KeyError:
            raise ConfigurationError(
                f"unknown intensity level {level!r}; "
                f"known: {sorted(INTENSITY_LEVELS)} or a positive float"
            ) from None
    if level <= 0:
        raise ConfigurationError(f"intensity ratio must be positive, got {level}")
    return float(level)


@dataclass
class TaskTypeSpec:
    """Per-task-type generation recipe.

    Attributes
    ----------
    name:
        Task type name (must match an EET row).
    arrival:
        Arrival process, or None to let the generator assign a Poisson process
        whose rate is derived from the intensity calibration (equal share per
        type weighted by ``share``).
    share:
        Relative share of the total arrival volume when ``arrival`` is None.
    slack_factor:
        Relative deadline = slack_factor × (mean EET of this type). Ignored if
        the task type carries a fixed ``relative_deadline``.
    """

    name: str
    arrival: ArrivalProcess | None = None
    share: float = 1.0
    slack_factor: float = 4.0

    def __post_init__(self) -> None:
        if self.share <= 0:
            raise ConfigurationError(f"share must be positive, got {self.share}")
        if self.slack_factor <= 0:
            raise ConfigurationError(
                f"slack_factor must be positive, got {self.slack_factor}"
            )

    @classmethod
    def from_dict(cls, spec: Mapping) -> "TaskTypeSpec":
        arrival = spec.get("arrival")
        return cls(
            name=spec["name"],
            arrival=arrival_process_from_spec(arrival) if arrival else None,
            share=spec.get("share", 1.0),
            slack_factor=spec.get("slack_factor", 4.0),
        )


class WorkloadGenerator:
    """Generates workload traces compatible with a given EET matrix."""

    def __init__(
        self,
        eet: EETMatrix,
        specs: Sequence[TaskTypeSpec] | None = None,
        *,
        machine_counts: Sequence[int] | None = None,
    ) -> None:
        """
        Parameters
        ----------
        eet:
            The EET matrix defining the task-type universe.
        specs:
            Per-type recipes; defaults to one equal-share spec per EET row.
        machine_counts:
            Machines per machine type (column multiplicity) for capacity
            calibration; defaults to one machine per EET column.
        """
        self.eet = eet
        if specs is None:
            specs = [TaskTypeSpec(name=n) for n in eet.task_type_names]
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate task type specs: {names}")
        for name in names:
            if not eet.has_task_type(name):
                raise ConfigurationError(
                    f"spec for {name!r} has no EET row; rows: {eet.task_type_names}"
                )
        self.specs = list(specs)
        if machine_counts is None:
            machine_counts = [1] * eet.n_machine_types
        if len(machine_counts) != eet.n_machine_types:
            raise ConfigurationError(
                f"machine_counts must have one entry per EET column "
                f"({len(machine_counts)} vs {eet.n_machine_types})"
            )
        if any(c < 0 for c in machine_counts):
            raise ConfigurationError("machine_counts must be >= 0")
        if sum(machine_counts) == 0:
            raise ConfigurationError("at least one machine is required")
        self.machine_counts = np.asarray(machine_counts, dtype=int)

    # -- capacity calibration ----------------------------------------------------

    def system_service_rate(self) -> float:
        """Aggregate tasks/second the machine population can sustain.

        Each machine type contributes ``count / mean-EET-across-spec-types``;
        the mean uses the shares of the specs, matching the generated mix.
        """
        shares = np.array([s.share for s in self.specs], dtype=float)
        shares = shares / shares.sum()
        rows = [self.eet.row(s.name) for s in self.specs]  # (n_types, n_machine_types)
        mix_eet = np.average(np.vstack(rows), axis=0, weights=shares)
        rates = self.machine_counts / mix_eet
        return float(rates.sum())

    def rates_for_oversubscription(self, ratio: float) -> dict[str, float]:
        """Per-type Poisson rates so that total offered load = ratio × capacity."""
        if ratio <= 0:
            raise ConfigurationError(f"oversubscription must be positive: {ratio}")
        mu = self.system_service_rate()
        shares = np.array([s.share for s in self.specs], dtype=float)
        shares = shares / shares.sum()
        total_lambda = ratio * mu
        return {
            s.name: float(total_lambda * w) for s, w in zip(self.specs, shares)
        }

    # -- deadline model ------------------------------------------------------------

    def relative_deadline(self, spec: TaskTypeSpec) -> float:
        """Relative deadline for tasks of this spec's type."""
        task_type = self.eet.task_type(spec.name)
        if task_type.relative_deadline is not None:
            return task_type.relative_deadline
        return spec.slack_factor * float(self.eet.row(spec.name).mean())

    # -- generation ---------------------------------------------------------------

    def generate(
        self,
        duration: float,
        *,
        intensity: str | float = "medium",
        seed: int | None | np.random.Generator = None,
        start: float = 0.0,
    ) -> Workload:
        """Generate a workload over ``[start, start + duration)``.

        ``intensity`` is a label (low/medium/high) or a raw oversubscription
        ratio. Types whose spec carries an explicit arrival process use it
        scaled by the ratio; types without one get a calibrated Poisson rate.
        """
        if duration <= 0:
            raise ConfigurationError(f"duration must be positive, got {duration}")
        ratio = oversubscription_for_level(intensity)
        rng = make_rng(seed)
        streams = spawn(rng, len(self.specs))
        calibrated = self.rates_for_oversubscription(ratio)

        type_indices: list[int] = []
        arrivals: list[float] = []
        deadlines: list[float] = []
        for spec, stream in zip(self.specs, streams):
            task_type = self.eet.task_type(spec.name)
            rel_deadline = self.relative_deadline(spec)
            if spec.arrival is not None:
                times = spec.arrival.generate(
                    start, start + duration, rng=stream, intensity=ratio
                )
            else:
                process = PoissonProcess(rate=calibrated[spec.name])
                times = process.generate(
                    start, start + duration, rng=stream, intensity=1.0
                )
            type_indices.extend([task_type.index] * times.size)
            arrivals.extend(times.tolist())
            deadlines.extend((times + rel_deadline).tolist())

        return Workload.from_arrays(
            self.eet.task_types, type_indices, arrivals, deadlines
        )

    def generate_count(
        self,
        n_tasks: int,
        *,
        intensity: str | float = "medium",
        seed: int | None | np.random.Generator = None,
        start: float = 0.0,
    ) -> Workload:
        """Generate (approximately then exactly) *n_tasks* tasks.

        Chooses a window long enough for the calibrated rates, generates, and
        truncates/extends to exactly *n_tasks*, preserving arrival order.
        """
        if n_tasks <= 0:
            raise ConfigurationError(f"n_tasks must be positive, got {n_tasks}")
        ratio = oversubscription_for_level(intensity)
        total_rate = sum(self.rates_for_oversubscription(ratio).values())
        duration = max(n_tasks / total_rate * 1.5, 1e-6)
        rng = make_rng(seed)
        workload = self.generate(
            duration, intensity=intensity, seed=rng, start=start
        )
        attempts = 0
        while len(workload) < n_tasks and attempts < 16:
            duration *= 1.6
            workload = self.generate(
                duration, intensity=intensity, seed=rng, start=start
            )
            attempts += 1
        if len(workload) < n_tasks:
            raise ConfigurationError(
                f"could not generate {n_tasks} tasks (got {len(workload)}); "
                "arrival rates may be degenerate"
            )
        trimmed = workload.tasks[:n_tasks]
        reindexed = [
            Task(
                id=i,
                task_type=t.task_type,
                arrival_time=t.arrival_time,
                deadline=t.deadline,
            )
            for i, t in enumerate(trimmed)
        ]
        return Workload(task_types=self.eet.task_types, tasks=reindexed)
