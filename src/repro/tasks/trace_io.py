"""CSV trace I/O — workload files and cluster-trace ingestion.

Two layers live here:

**Workload CSVs** (the E2C file format of Fig. 2) are already in the
simulator's vocabulary — one row per task, canonical columns, extras
preserved on round-trip:

```
task_id,task_type,arrival_time,deadline
0,T1,0.00,4.80
1,T3,0.35,6.10
```

``deadline`` may be omitted; then each task type must carry a
``relative_deadline`` (or one is supplied via ``default_relative_deadline``).
Columns beyond the canonical four ride along verbatim: they are parsed into
each task's ``extras`` tuple and written back by :func:`write_workload_csv`
in first-appearance order, so ``read → write`` is a fixpoint even for
annotated traces. The EET CSV format lives in :mod:`repro.machines.eet`.

**Cluster traces** (Google/Azure-style exports) are *not* in that
vocabulary: columns have site-specific names, times are epoch microseconds,
there is no deadline, and the file may hold millions of rows.
:class:`TraceSpec` declares how to turn such a file into a
:class:`~repro.tasks.workload.Workload` against a concrete EET matrix —
column mapping, time rescaling and windowing, task-type binning, deadline
synthesis, and deterministic down-sampling with derived seeds — and is the
JSON-serialisable ``trace`` field of a :class:`~repro.core.config.Scenario`.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence, TextIO

import numpy as np

from ..core.errors import ConfigurationError, WorkloadError
from ..core.rng import derive_seed, make_rng
from .task import Task
from .task_type import TaskType
from .workload import Workload

__all__ = [
    "read_workload_csv",
    "write_workload_csv",
    "workload_from_rows",
    "TraceSpec",
    "resolve_trace_path",
]

_REQUIRED = ("task_id", "task_type", "arrival_time")

#: The workload-CSV columns the simulator itself consumes; everything else
#: is an "extra" preserved verbatim through the round-trip.
_CANONICAL = ("task_id", "task_type", "arrival_time", "deadline")


def _open_source(source: str | Path | TextIO) -> tuple[TextIO, bool]:
    if isinstance(source, (str, Path)):
        return open(source, "r", newline="", encoding="utf-8"), True
    return source, False


def read_workload_csv(
    source: str | Path | TextIO,
    task_types: Sequence[TaskType] | None = None,
    *,
    default_relative_deadline: float | None = None,
) -> Workload:
    """Parse a workload trace CSV into a :class:`Workload`.

    Parameters
    ----------
    source:
        Path or open text stream.
    task_types:
        The task-type universe; if None, types are inferred from the file in
        first-appearance order (deadline column then becomes mandatory unless
        ``default_relative_deadline`` is given).
    default_relative_deadline:
        Fallback ``deadline = arrival + default_relative_deadline`` for rows
        lacking a deadline.
    """
    stream, owned = _open_source(source)
    try:
        reader = csv.DictReader(stream)
        if reader.fieldnames is None:
            raise WorkloadError("workload CSV is empty (no header)")
        header = [h.strip() for h in reader.fieldnames]
        missing = [c for c in _REQUIRED if c not in header]
        if missing:
            raise WorkloadError(
                f"workload CSV missing required columns {missing}; header={header}"
            )
        has_deadline = "deadline" in header
        extra_columns = [c for c in header if c not in _CANONICAL]

        rows = []
        for lineno, raw in enumerate(reader, start=2):
            row = {k.strip(): (v.strip() if v is not None else "") for k, v in raw.items() if k}
            try:
                rows.append(
                    {
                        "task_id": int(row["task_id"]),
                        "task_type": row["task_type"],
                        "arrival_time": float(row["arrival_time"]),
                        "deadline": float(row["deadline"])
                        if has_deadline and row.get("deadline", "") != ""
                        else None,
                        "extras": tuple(
                            (c, row.get(c, "")) for c in extra_columns
                        ),
                        "line": lineno,
                    }
                )
            except (KeyError, ValueError) as exc:
                raise WorkloadError(f"workload CSV line {lineno}: {exc}") from exc
    finally:
        if owned:
            stream.close()

    return workload_from_rows(
        rows,
        task_types=task_types,
        default_relative_deadline=default_relative_deadline,
    )


def _row_label(row: Mapping) -> str:
    """Human-readable identity of a parsed row for error messages."""
    label = f"task {row['task_id']}"
    if row.get("line") is not None:
        label += f" (CSV line {row['line']})"
    return label


def workload_from_rows(
    rows: Sequence[Mapping],
    *,
    task_types: Sequence[TaskType] | None = None,
    default_relative_deadline: float | None = None,
) -> Workload:
    """Assemble a Workload from parsed row dicts (see read_workload_csv)."""
    if task_types is None:
        seen: dict[str, int] = {}
        for row in rows:
            seen.setdefault(row["task_type"], len(seen))
        task_types = [TaskType(name=n, index=i) for n, i in seen.items()]
    by_name = {t.name: t for t in task_types}

    tasks: list[Task] = []
    for row in rows:
        name = row["task_type"]
        if name not in by_name:
            raise WorkloadError(
                f"{_row_label(row)}: unknown task type {name!r}; "
                f"defined: {sorted(by_name)}"
            )
        task_type = by_name[name]
        deadline = row.get("deadline")
        if deadline is None:
            rel = (
                task_type.relative_deadline
                if task_type.relative_deadline is not None
                else default_relative_deadline
            )
            if rel is None:
                raise WorkloadError(
                    f"{_row_label(row)}: no deadline given "
                    f"(arrival_time={row['arrival_time']}, task type "
                    f"{name!r} has no relative_deadline and no "
                    "default_relative_deadline was supplied)"
                )
            deadline = row["arrival_time"] + rel
        extras = row.get("extras", ())
        if isinstance(extras, Mapping):
            extras = tuple((str(k), str(v)) for k, v in extras.items())
        else:
            extras = tuple((str(k), str(v)) for k, v in extras)
        tasks.append(
            Task(
                id=row["task_id"],
                task_type=task_type,
                arrival_time=row["arrival_time"],
                deadline=deadline,
                extras=extras,
            )
        )
    return Workload(task_types=list(task_types), tasks=tasks)


def write_workload_csv(
    workload: Workload, target: str | Path | TextIO | None = None
) -> str:
    """Serialise *workload* as CSV. Returns the CSV text; writes if given a target.

    Extra (non-canonical) columns carried in the tasks' ``extras`` tuples are
    appended after ``deadline`` in first-appearance order, so a file read by
    :func:`read_workload_csv` writes back with its annotation columns intact.
    """
    extra_columns: list[str] = []
    seen_extras: set[str] = set()
    for task in workload:
        for name, _ in task.extras:
            if name not in seen_extras:
                seen_extras.add(name)
                extra_columns.append(name)

    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(list(_CANONICAL) + extra_columns)
    for task in workload:
        by_name = dict(task.extras)
        writer.writerow(
            [
                task.id,
                task.task_type.name,
                f"{task.arrival_time:.9g}",
                f"{task.deadline:.9g}",
            ]
            + [by_name.get(c, "") for c in extra_columns]
        )
    text = buffer.getvalue()
    if target is not None:
        if isinstance(target, (str, Path)):
            Path(target).write_text(text, encoding="utf-8")
        else:
            target.write(text)
    return text


# ---------------------------------------------------------------------------
# Cluster-trace ingestion
# ---------------------------------------------------------------------------

#: Prefix selecting a CSV shipped inside ``repro.scenarios/data`` instead of
#: a filesystem path — keeps preset scenarios' JSON portable across machines.
_DATA_PREFIX = "data:"


def resolve_trace_path(path: str | Path) -> Path:
    """Resolve a :class:`TraceSpec` path, honouring the ``data:`` scheme.

    ``data:google_sample.csv`` names a trace bundled with the package
    (``src/repro/scenarios/data/``); anything else is an ordinary path.
    """
    text = str(path)
    if text.startswith(_DATA_PREFIX):
        from importlib.resources import files

        return Path(str(files("repro.scenarios") / "data" / text[len(_DATA_PREFIX):]))
    return Path(text)


@dataclass
class TraceSpec:
    """Recipe for importing a cluster-trace CSV into a :class:`Workload`.

    The pipeline, in order (every stage is deterministic given the spec and
    a seed):

    1. **Column mapping** — ``columns`` maps the canonical roles
       (``task_id``, ``task_type``, ``arrival_time``, ``deadline``) to the
       source file's column names; unmapped roles default to their own
       name. Unconsumed source columns become each task's ``extras``.
    2. **Time rescaling** — source times are multiplied by ``time_unit``
       (seconds per source unit; e.g. ``1e-6`` for Google's microseconds).
    3. **Rebasing** — ``time_offset`` (in rescaled seconds) is subtracted;
       ``None`` rebases to the earliest arrival, so traces with epoch
       timestamps start at 0.
    4. **Windowing** — keep arrivals in ``window = (start, end)`` (rebased
       seconds, end exclusive) and re-shift so the window starts at 0.
    5. **Compression** — arrivals (and mapped deadlines) are multiplied by
       ``time_scale`` (< 1 squeezes a day-long trace into minutes).
    6. **Task-type binning** — if the mapped ``task_type`` column exists,
       its values must name EET task types. Otherwise ``bin_column`` (a
       numeric source column, e.g. requested CPUs or runtime) is
       quantile-binned: the EET's task types are ordered by mean expected
       execution time and each quantile of the bin values maps onto one
       type, smallest values to the lightest type.
    7. **Deadline synthesis** — a mapped ``deadline`` column rides the same
       time transform as arrivals; otherwise ``deadline = arrival +
       slack_factor * relative_deadline`` (the type's, or
       ``default_relative_deadline``).
    8. **Down-sampling** — keep each row with probability ``sample`` using
       a derived-seed RNG (``derive_seed(seed, "trace", "sample",
       replication)``), then truncate to ``max_tasks``. Task ids are
       reassigned ``0..n-1`` in arrival order.
    """

    path: str
    columns: dict[str, str] = field(default_factory=dict)
    time_unit: float = 1.0
    time_offset: float | None = None
    window: tuple[float, float] | None = None
    time_scale: float = 1.0
    bin_column: str | None = None
    slack_factor: float = 1.0
    default_relative_deadline: float | None = None
    sample: float = 1.0
    max_tasks: int | None = None

    def __post_init__(self) -> None:
        unknown_roles = set(self.columns) - set(_CANONICAL)
        if unknown_roles:
            raise ConfigurationError(
                f"trace column mapping has unknown roles {sorted(unknown_roles)}; "
                f"canonical roles: {list(_CANONICAL)}"
            )
        if self.time_unit <= 0:
            raise ConfigurationError(
                f"trace time_unit must be > 0, got {self.time_unit}"
            )
        if self.time_scale <= 0:
            raise ConfigurationError(
                f"trace time_scale must be > 0, got {self.time_scale}"
            )
        if self.window is not None:
            start, end = self.window
            if not start < end:
                raise ConfigurationError(
                    f"trace window must satisfy start < end, got {self.window}"
                )
            self.window = (float(start), float(end))
        if not 0.0 < self.sample <= 1.0:
            raise ConfigurationError(
                f"trace sample fraction must be in (0, 1], got {self.sample}"
            )
        if self.max_tasks is not None and self.max_tasks <= 0:
            raise ConfigurationError(
                f"trace max_tasks must be > 0, got {self.max_tasks}"
            )
        if self.slack_factor <= 0:
            raise ConfigurationError(
                f"trace slack_factor must be > 0, got {self.slack_factor}"
            )

    # -- source access -------------------------------------------------------

    def _column(self, role: str) -> str:
        """Source column carrying the given canonical role."""
        return self.columns.get(role, role)

    def _read_raw(self) -> tuple[list[str], list[tuple[int, dict[str, str]]]]:
        path = resolve_trace_path(self.path)
        try:
            stream = open(path, "r", newline="", encoding="utf-8")
        except OSError as exc:
            raise WorkloadError(f"cannot read trace {self.path!r}: {exc}") from exc
        with stream:
            reader = csv.DictReader(stream)
            if reader.fieldnames is None:
                raise WorkloadError(f"trace {self.path!r} is empty (no header)")
            header = [h.strip() for h in reader.fieldnames]
            records = [
                (
                    lineno,
                    {
                        k.strip(): (v.strip() if v is not None else "")
                        for k, v in raw.items()
                        if k
                    },
                )
                for lineno, raw in enumerate(reader, start=2)
            ]
        arrival_col = self._column("arrival_time")
        if arrival_col not in header:
            raise WorkloadError(
                f"trace {self.path!r} has no arrival column {arrival_col!r}; "
                f"header={header}"
            )
        return header, records

    def describe(self) -> dict[str, Any]:
        """Inspection summary of the raw trace (the CLI ``trace inspect``).

        Reports row/column counts and the source-time arrival span *after*
        ``time_unit`` rescaling but before rebasing/windowing, so the values
        are directly usable as ``time_offset`` / ``window`` bounds.
        """
        header, records = self._read_raw()
        arrival_col = self._column("arrival_time")
        arrivals = sorted(
            self._parse_time(rec, lineno, arrival_col) for lineno, rec in records
        )
        out: dict[str, Any] = {
            "path": str(self.path),
            "rows": len(records),
            "columns": header,
            "arrival_min": arrivals[0] if arrivals else 0.0,
            "arrival_max": arrivals[-1] if arrivals else 0.0,
        }
        type_col = self._column("task_type")
        if type_col in header:
            counts: dict[str, int] = {}
            for _, rec in records:
                counts[rec.get(type_col, "")] = counts.get(rec.get(type_col, ""), 0) + 1
            out["type_counts"] = dict(sorted(counts.items()))
        if self.bin_column is not None and self.bin_column in header:
            values = [
                self._parse_number(rec, lineno, self.bin_column)
                for lineno, rec in records
            ]
            if values:
                arr = np.asarray(values, dtype=float)
                out["bin_column"] = self.bin_column
                out["bin_quartiles"] = [
                    float(q) for q in np.quantile(arr, [0.0, 0.25, 0.5, 0.75, 1.0])
                ]
        return out

    def _parse_number(self, rec: Mapping[str, str], lineno: int, col: str) -> float:
        try:
            return float(rec[col])
        except KeyError:
            raise WorkloadError(
                f"trace {self.path!r} line {lineno}: missing column {col!r}"
            ) from None
        except ValueError as exc:
            raise WorkloadError(
                f"trace {self.path!r} line {lineno}: bad value for {col!r}: {exc}"
            ) from exc

    def _parse_time(self, rec: Mapping[str, str], lineno: int, col: str) -> float:
        return self._parse_number(rec, lineno, col) * self.time_unit

    # -- the ingestion pipeline ----------------------------------------------

    def build_workload(
        self,
        eet: "Any",
        *,
        seed: int | None = None,
        replication: int = 0,
    ) -> Workload:
        """Run the full import pipeline against *eet*'s task-type universe."""
        header, records = self._read_raw()
        task_types: list[TaskType] = eet.task_types
        arrival_col = self._column("arrival_time")
        id_col = self._column("task_id")
        type_col = self._column("task_type")
        deadline_col = self._column("deadline")
        has_id = id_col in header
        has_type = type_col in header
        has_deadline = deadline_col in header
        if not has_type and self.bin_column is None:
            raise WorkloadError(
                f"trace {self.path!r} has no task-type column {type_col!r} "
                "and the spec names no bin_column to derive types from"
            )
        if self.bin_column is not None and self.bin_column not in header:
            raise WorkloadError(
                f"trace {self.path!r} has no bin column {self.bin_column!r}; "
                f"header={header}"
            )
        consumed = {arrival_col}
        if has_id:
            consumed.add(id_col)
        if has_type:
            consumed.add(type_col)
        if has_deadline:
            consumed.add(deadline_col)
        extra_columns = [c for c in header if c not in consumed]

        # 2-3: rescale to seconds and rebase.
        arrivals = [
            self._parse_time(rec, lineno, arrival_col) for lineno, rec in records
        ]
        offset = self.time_offset
        if offset is None:
            offset = min(arrivals) if arrivals else 0.0

        kept: list[tuple[float, int, dict[str, str], float | None]] = []
        for (lineno, rec), raw_arrival in zip(records, arrivals):
            arrival = raw_arrival - offset
            # 4: window filter + re-shift.
            if self.window is not None:
                start, end = self.window
                if not start <= arrival < end:
                    continue
                arrival -= start
            # 5: compression.
            arrival *= self.time_scale
            deadline: float | None = None
            if has_deadline and rec.get(deadline_col, "") != "":
                deadline = self._parse_time(rec, lineno, deadline_col) - offset
                if self.window is not None:
                    deadline -= self.window[0]
                deadline *= self.time_scale
            kept.append((arrival, lineno, rec, deadline))
        kept.sort(key=lambda item: (item[0], item[1]))

        # 6: task-type assignment (explicit names, or quantile binning).
        by_name = {t.name: t for t in task_types}
        if has_type:
            chosen = []
            for arrival, lineno, rec, _ in kept:
                name = rec.get(type_col, "")
                if name not in by_name:
                    raise WorkloadError(
                        f"trace {self.path!r} line {lineno}: unknown task "
                        f"type {name!r}; EET defines {sorted(by_name)}"
                    )
                chosen.append(by_name[name])
        else:
            assert self.bin_column is not None
            values = np.asarray(
                [
                    self._parse_number(rec, lineno, self.bin_column)
                    for _, lineno, rec, _ in kept
                ],
                dtype=float,
            )
            # Lightest type (smallest mean EET) takes the smallest values.
            order = np.argsort(eet.values.mean(axis=1), kind="stable")
            n_bins = len(order)
            if len(values):
                edges = np.quantile(
                    values, [i / n_bins for i in range(1, n_bins)]
                )
                bins = np.searchsorted(edges, values, side="right")
            else:
                bins = np.empty(0, dtype=int)
            chosen = [task_types[int(order[b])] for b in bins]

        # 7: deadline synthesis for rows the trace left open.
        rows: list[dict[str, Any]] = []
        for (arrival, lineno, rec, deadline), task_type in zip(kept, chosen):
            if deadline is None:
                rel = (
                    task_type.relative_deadline
                    if task_type.relative_deadline is not None
                    else self.default_relative_deadline
                )
                if rel is None:
                    raise WorkloadError(
                        f"trace {self.path!r} line {lineno}: no deadline "
                        f"column and task type {task_type.name!r} has no "
                        "relative_deadline (set default_relative_deadline "
                        "on the TraceSpec)"
                    )
                deadline = arrival + self.slack_factor * rel
            extras = [(c, rec.get(c, "")) for c in extra_columns]
            if has_id:
                extras.insert(0, ("source_id", rec.get(id_col, "")))
            rows.append(
                {
                    "task_type": task_type,
                    "arrival_time": arrival,
                    "deadline": deadline,
                    "extras": tuple(extras),
                }
            )

        # 8: deterministic down-sampling, truncation, id reassignment.
        if self.sample < 1.0:
            rng = make_rng(derive_seed(seed, "trace", "sample", replication))
            mask = rng.random(len(rows)) < self.sample
            rows = [row for row, keep in zip(rows, mask) if keep]
        if self.max_tasks is not None:
            rows = rows[: self.max_tasks]
        tasks = [
            Task(
                id=i,
                task_type=row["task_type"],
                arrival_time=row["arrival_time"],
                deadline=row["deadline"],
                extras=row["extras"],
            )
            for i, row in enumerate(rows)
        ]
        return Workload(task_types=list(task_types), tasks=tasks)

    # -- JSON round-trip ------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"path": self.path}
        if self.columns:
            out["columns"] = dict(self.columns)
        if self.time_unit != 1.0:
            out["time_unit"] = self.time_unit
        if self.time_offset is not None:
            out["time_offset"] = self.time_offset
        if self.window is not None:
            out["window"] = list(self.window)
        if self.time_scale != 1.0:
            out["time_scale"] = self.time_scale
        if self.bin_column is not None:
            out["bin_column"] = self.bin_column
        if self.slack_factor != 1.0:
            out["slack_factor"] = self.slack_factor
        if self.default_relative_deadline is not None:
            out["default_relative_deadline"] = self.default_relative_deadline
        if self.sample != 1.0:
            out["sample"] = self.sample
        if self.max_tasks is not None:
            out["max_tasks"] = self.max_tasks
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TraceSpec":
        if isinstance(data, TraceSpec):
            return data
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"trace spec must be a mapping, got {type(data).__name__}"
            )
        payload = dict(data)
        known = {
            "path",
            "columns",
            "time_unit",
            "time_offset",
            "window",
            "time_scale",
            "bin_column",
            "slack_factor",
            "default_relative_deadline",
            "sample",
            "max_tasks",
        }
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                f"trace spec has unknown keys {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        if "path" not in payload:
            raise ConfigurationError("trace spec needs a 'path'")
        window = payload.get("window")
        if window is not None:
            window = (float(window[0]), float(window[1]))
        return cls(
            path=str(payload["path"]),
            columns={
                str(k): str(v)
                for k, v in dict(payload.get("columns", {})).items()
            },
            time_unit=float(payload.get("time_unit", 1.0)),
            time_offset=(
                None
                if payload.get("time_offset") is None
                else float(payload["time_offset"])
            ),
            window=window,
            time_scale=float(payload.get("time_scale", 1.0)),
            bin_column=(
                None
                if payload.get("bin_column") is None
                else str(payload["bin_column"])
            ),
            slack_factor=float(payload.get("slack_factor", 1.0)),
            default_relative_deadline=(
                None
                if payload.get("default_relative_deadline") is None
                else float(payload["default_relative_deadline"])
            ),
            sample=float(payload.get("sample", 1.0)),
            max_tasks=(
                None
                if payload.get("max_tasks") is None
                else int(payload["max_tasks"])
            ),
        )
