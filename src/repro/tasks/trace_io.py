"""CSV trace I/O — the file formats of the E2C workload component (Fig. 2).

Workload CSV columns (header required, extras preserved on round-trip):

```
task_id,task_type,arrival_time,deadline
0,T1,0.00,4.80
1,T3,0.35,6.10
```

``deadline`` may be omitted; then each task type must carry a
``relative_deadline`` (or one is supplied via ``default_relative_deadline``).
The EET CSV format lives in :mod:`repro.machines.eet` next to the matrix.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Mapping, Sequence, TextIO

from ..core.errors import WorkloadError
from .task import Task
from .task_type import TaskType
from .workload import Workload

__all__ = ["read_workload_csv", "write_workload_csv", "workload_from_rows"]

_REQUIRED = ("task_id", "task_type", "arrival_time")


def _open_source(source: str | Path | TextIO) -> tuple[TextIO, bool]:
    if isinstance(source, (str, Path)):
        return open(source, "r", newline="", encoding="utf-8"), True
    return source, False


def read_workload_csv(
    source: str | Path | TextIO,
    task_types: Sequence[TaskType] | None = None,
    *,
    default_relative_deadline: float | None = None,
) -> Workload:
    """Parse a workload trace CSV into a :class:`Workload`.

    Parameters
    ----------
    source:
        Path or open text stream.
    task_types:
        The task-type universe; if None, types are inferred from the file in
        first-appearance order (deadline column then becomes mandatory unless
        ``default_relative_deadline`` is given).
    default_relative_deadline:
        Fallback ``deadline = arrival + default_relative_deadline`` for rows
        lacking a deadline.
    """
    stream, owned = _open_source(source)
    try:
        reader = csv.DictReader(stream)
        if reader.fieldnames is None:
            raise WorkloadError("workload CSV is empty (no header)")
        header = [h.strip() for h in reader.fieldnames]
        missing = [c for c in _REQUIRED if c not in header]
        if missing:
            raise WorkloadError(
                f"workload CSV missing required columns {missing}; header={header}"
            )
        has_deadline = "deadline" in header

        rows = []
        for lineno, raw in enumerate(reader, start=2):
            row = {k.strip(): (v.strip() if v is not None else "") for k, v in raw.items() if k}
            try:
                rows.append(
                    {
                        "task_id": int(row["task_id"]),
                        "task_type": row["task_type"],
                        "arrival_time": float(row["arrival_time"]),
                        "deadline": float(row["deadline"])
                        if has_deadline and row.get("deadline", "") != ""
                        else None,
                    }
                )
            except (KeyError, ValueError) as exc:
                raise WorkloadError(f"workload CSV line {lineno}: {exc}") from exc
    finally:
        if owned:
            stream.close()

    return workload_from_rows(
        rows,
        task_types=task_types,
        default_relative_deadline=default_relative_deadline,
    )


def workload_from_rows(
    rows: Sequence[Mapping],
    *,
    task_types: Sequence[TaskType] | None = None,
    default_relative_deadline: float | None = None,
) -> Workload:
    """Assemble a Workload from parsed row dicts (see read_workload_csv)."""
    if task_types is None:
        seen: dict[str, int] = {}
        for row in rows:
            seen.setdefault(row["task_type"], len(seen))
        task_types = [TaskType(name=n, index=i) for n, i in seen.items()]
    by_name = {t.name: t for t in task_types}

    tasks: list[Task] = []
    for row in rows:
        name = row["task_type"]
        if name not in by_name:
            raise WorkloadError(
                f"task {row['task_id']}: unknown task type {name!r}; "
                f"defined: {sorted(by_name)}"
            )
        task_type = by_name[name]
        deadline = row.get("deadline")
        if deadline is None:
            rel = (
                task_type.relative_deadline
                if task_type.relative_deadline is not None
                else default_relative_deadline
            )
            if rel is None:
                raise WorkloadError(
                    f"task {row['task_id']}: no deadline column and task type "
                    f"{name!r} has no relative_deadline"
                )
            deadline = row["arrival_time"] + rel
        tasks.append(
            Task(
                id=row["task_id"],
                task_type=task_type,
                arrival_time=row["arrival_time"],
                deadline=deadline,
            )
        )
    return Workload(task_types=list(task_types), tasks=tasks)


def write_workload_csv(
    workload: Workload, target: str | Path | TextIO | None = None
) -> str:
    """Serialise *workload* as CSV. Returns the CSV text; writes if given a target."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["task_id", "task_type", "arrival_time", "deadline"])
    for task in workload:
        writer.writerow(
            [
                task.id,
                task.task_type.name,
                f"{task.arrival_time:.9g}",
                f"{task.deadline:.9g}",
            ]
        )
    text = buffer.getvalue()
    if target is not None:
        if isinstance(target, (str, Path)):
            Path(target).write_text(text, encoding="utf-8")
        else:
            target.write(text)
    return text
