"""Arrival processes for workload generation.

The E2C workload component lets a user pick, per task type, an arrival
distribution and a duration (paper §3, feature (i): "user-defined workload
generation scenarios with various number of applications and arrival
intensities"). Each process here generates a sorted array of arrival
timestamps within ``[start, end)``.

Implemented processes:

* :class:`PoissonProcess` — exponential inter-arrivals with rate λ; the
  canonical open-system arrival model used by the class assignment.
* :class:`UniformProcess` — inter-arrivals ~ U(low, high).
* :class:`NormalProcess` — inter-arrivals ~ N(mean, std) truncated at a small
  positive floor (a clock can't run backwards).
* :class:`ConstantProcess` — fixed spacing (periodic sensors).
* :class:`BurstyProcess` — on/off bursts: periods of Poisson traffic at a high
  rate separated by silences; stresses batch policies.

All processes share :meth:`ArrivalProcess.generate` and scale under a
multiplicative ``intensity`` factor (>1 means more arrivals per unit time),
which is how the low/medium/high workload intensities of §4 are produced.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..core.errors import ConfigurationError
from ..core.rng import make_rng

__all__ = [
    "ArrivalProcess",
    "PoissonProcess",
    "UniformProcess",
    "NormalProcess",
    "ConstantProcess",
    "BurstyProcess",
    "ParetoProcess",
    "arrival_process_from_spec",
]

_MIN_GAP = 1e-9  # positive floor for degenerate inter-arrival draws


class ArrivalProcess(abc.ABC):
    """Generates sorted arrival timestamps in a window."""

    #: registry name used by config files / CLI
    kind: str = ""

    @abc.abstractmethod
    def mean_rate(self) -> float:
        """Expected arrivals per unit time at intensity 1."""

    @abc.abstractmethod
    def _inter_arrivals(
        self, rng: np.random.Generator, n: int, intensity: float
    ) -> np.ndarray:
        """Draw *n* positive inter-arrival gaps at the given intensity."""

    def generate(
        self,
        start: float,
        end: float,
        *,
        rng: np.random.Generator | int | None = None,
        intensity: float = 1.0,
    ) -> np.ndarray:
        """Return sorted arrival times in ``[start, end)``.

        ``intensity`` multiplies the arrival rate: gaps shrink by 1/intensity.
        """
        if end < start:
            raise ConfigurationError(f"arrival window end {end} < start {start}")
        if intensity <= 0:
            raise ConfigurationError(f"intensity must be positive, got {intensity}")
        rng = make_rng(rng)
        window = end - start
        if window == 0:
            return np.empty(0)
        # Draw in growing chunks until the cumulative sum exits the window.
        expected = max(8, int(self.mean_rate() * intensity * window * 1.25) + 8)
        gaps = self._inter_arrivals(rng, expected, intensity)
        times = np.cumsum(gaps)
        while times.size == 0 or times[-1] < window:
            more = self._inter_arrivals(rng, expected, intensity)
            offset = times[-1] if times.size else 0.0
            times = np.concatenate([times, offset + np.cumsum(more)])
        times = times[times < window]
        return start + times

    def spec(self) -> dict:
        """JSON-serialisable description (inverse of arrival_process_from_spec)."""
        out = {"kind": self.kind}
        out.update(
            {
                k: v
                for k, v in vars(self).items()
                if not k.startswith("_")
            }
        )
        return out


@dataclass(eq=True)
class PoissonProcess(ArrivalProcess):
    """Homogeneous Poisson process with rate ``rate`` (arrivals / second)."""

    rate: float
    kind = "poisson"

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ConfigurationError(f"Poisson rate must be positive, got {self.rate}")

    def mean_rate(self) -> float:
        return self.rate

    def _inter_arrivals(self, rng, n, intensity):
        return rng.exponential(1.0 / (self.rate * intensity), size=n)


@dataclass(eq=True)
class UniformProcess(ArrivalProcess):
    """Inter-arrival gaps uniform on ``[low, high]`` seconds."""

    low: float
    high: float
    kind = "uniform"

    def __post_init__(self) -> None:
        if self.low < 0 or self.high <= 0 or self.high < self.low:
            raise ConfigurationError(
                f"uniform gaps need 0 <= low <= high, high > 0; "
                f"got low={self.low}, high={self.high}"
            )

    def mean_rate(self) -> float:
        return 2.0 / (self.low + self.high)

    def _inter_arrivals(self, rng, n, intensity):
        gaps = rng.uniform(self.low, self.high, size=n) / intensity
        return np.maximum(gaps, _MIN_GAP)


@dataclass(eq=True)
class NormalProcess(ArrivalProcess):
    """Inter-arrival gaps ~ N(mean, std), truncated to stay positive."""

    mean: float
    std: float
    kind = "normal"

    def __post_init__(self) -> None:
        if self.mean <= 0:
            raise ConfigurationError(f"normal mean gap must be positive: {self.mean}")
        if self.std < 0:
            raise ConfigurationError(f"normal std must be >= 0: {self.std}")

    def mean_rate(self) -> float:
        return 1.0 / self.mean

    def _inter_arrivals(self, rng, n, intensity):
        gaps = rng.normal(self.mean, self.std, size=n) / intensity
        return np.maximum(gaps, _MIN_GAP)


@dataclass(eq=True)
class ConstantProcess(ArrivalProcess):
    """Fixed inter-arrival gap (periodic source)."""

    period: float
    kind = "constant"

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ConfigurationError(f"period must be positive, got {self.period}")

    def mean_rate(self) -> float:
        return 1.0 / self.period

    def _inter_arrivals(self, rng, n, intensity):
        return np.full(n, self.period / intensity)


@dataclass(eq=True)
class BurstyProcess(ArrivalProcess):
    """On/off bursts: Poisson(burst_rate) during bursts, silence between.

    A burst lasts Exp(1/burst_duration); silences last Exp(1/idle_duration).
    Useful for stressing batch policies with alternating saturation/idleness.
    """

    burst_rate: float
    burst_duration: float
    idle_duration: float
    kind = "bursty"

    def __post_init__(self) -> None:
        for attr in ("burst_rate", "burst_duration", "idle_duration"):
            if getattr(self, attr) <= 0:
                raise ConfigurationError(f"{attr} must be positive")

    def mean_rate(self) -> float:
        duty = self.burst_duration / (self.burst_duration + self.idle_duration)
        return self.burst_rate * duty

    def _inter_arrivals(self, rng, n, intensity):
        # Simulate the on/off envelope until we have n arrivals.
        gaps: list[float] = []
        carry = 0.0  # silence accumulated before the next arrival
        while len(gaps) < n:
            burst_len = rng.exponential(self.burst_duration)
            t = 0.0
            while True:
                gap = rng.exponential(1.0 / (self.burst_rate * intensity))
                if t + gap > burst_len:
                    break
                t += gap
                gaps.append(carry + gap)
                carry = 0.0
            carry += (burst_len - t) + rng.exponential(self.idle_duration)
        return np.asarray(gaps[:n])


@dataclass(eq=True)
class ParetoProcess(ArrivalProcess):
    """Heavy-tailed (Lomax / Pareto-II) inter-arrival gaps.

    ``gap = scale x Pareto(shape)`` with mean ``scale / (shape - 1)``; the
    polynomial tail produces dense arrival bursts separated by rare, very
    long silences — the flash-crowd traffic that exercises batch policies
    and large machine populations far harder than Poisson arrivals.
    ``shape`` must exceed 1 for the mean (and hence intensity calibration)
    to exist; shapes just above 1 are extremely bursty, large shapes
    approach a light tail.
    """

    shape: float
    scale: float = 1.0
    kind = "pareto"

    def __post_init__(self) -> None:
        if self.shape <= 1.0:
            raise ConfigurationError(
                f"pareto shape must be > 1 for a finite mean gap, "
                f"got {self.shape}"
            )
        if self.scale <= 0:
            raise ConfigurationError(
                f"pareto scale must be positive, got {self.scale}"
            )

    def mean_rate(self) -> float:
        return (self.shape - 1.0) / self.scale

    def _inter_arrivals(self, rng, n, intensity):
        gaps = self.scale * rng.pareto(self.shape, size=n) / intensity
        return np.maximum(gaps, _MIN_GAP)


_PROCESS_KINDS: dict[str, type[ArrivalProcess]] = {
    "poisson": PoissonProcess,
    "exponential": PoissonProcess,  # alias: exponential inter-arrivals
    "uniform": UniformProcess,
    "normal": NormalProcess,
    "constant": ConstantProcess,
    "bursty": BurstyProcess,
    "pareto": ParetoProcess,
    "heavytail": ParetoProcess,  # alias: heavy-tailed inter-arrivals
}


def arrival_process_from_spec(spec: dict) -> ArrivalProcess:
    """Build an arrival process from a JSON-style spec dict.

    Example: ``{"kind": "poisson", "rate": 2.5}``.
    """
    if "kind" not in spec:
        raise ConfigurationError(f"arrival spec missing 'kind': {spec}")
    kind = spec["kind"].lower()
    if kind not in _PROCESS_KINDS:
        raise ConfigurationError(
            f"unknown arrival kind {kind!r}; available: {sorted(_PROCESS_KINDS)}"
        )
    kwargs = {k: v for k, v in spec.items() if k != "kind"}
    try:
        return _PROCESS_KINDS[kind](**kwargs)
    except TypeError as exc:
        raise ConfigurationError(f"bad arrival spec {spec}: {exc}") from exc
