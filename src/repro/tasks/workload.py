"""Workload container: an ordered collection of tasks plus its task types.

A :class:`Workload` owns the task-type list (the EET row space) and the tasks
themselves, sorted by arrival time. It validates EET compatibility — the
paper's rule that "there can be no task type within the workload that is not
defined within the EET" — and offers summary statistics used by reports and
the intensity calibrator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator

import numpy as np

from ..core.errors import IncompatibleWorkloadError, WorkloadError
from .task import Task
from .task_type import TaskType

if TYPE_CHECKING:  # pragma: no cover
    from ..machines.eet import EETMatrix

__all__ = ["Workload"]


@dataclass
class Workload:
    """A sorted batch of tasks over a fixed task-type universe."""

    task_types: list[TaskType]
    tasks: list[Task] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [t.name for t in self.task_types]
        if len(set(names)) != len(names):
            raise WorkloadError(f"duplicate task type names: {names}")
        indices = sorted(t.index for t in self.task_types)
        if indices != list(range(len(self.task_types))):
            raise WorkloadError(
                f"task type indices must be 0..n-1 without gaps, got {indices}"
            )
        self._by_name = {t.name: t for t in self.task_types}
        self.tasks = sorted(self.tasks, key=lambda t: (t.arrival_time, t.id))
        ids = [t.id for t in self.tasks]
        if len(set(ids)) != len(ids):
            raise WorkloadError("duplicate task ids in workload")
        unknown = {
            t.task_type.name for t in self.tasks if t.task_type.name not in self._by_name
        }
        if unknown:
            raise IncompatibleWorkloadError(
                f"tasks reference undefined task types: {sorted(unknown)}"
            )

    # -- container protocol ----------------------------------------------------

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self.tasks)

    def __getitem__(self, i: int) -> Task:
        return self.tasks[i]

    # -- lookups ---------------------------------------------------------------

    def type_by_name(self, name: str) -> TaskType:
        try:
            return self._by_name[name]
        except KeyError:
            raise IncompatibleWorkloadError(
                f"unknown task type {name!r}; defined: {sorted(self._by_name)}"
            ) from None

    def counts_by_type(self) -> dict[str, int]:
        counts = {t.name: 0 for t in self.task_types}
        for task in self.tasks:
            counts[task.task_type.name] += 1
        return counts

    # -- derived properties ------------------------------------------------------

    @property
    def makespan_window(self) -> tuple[float, float]:
        """(first arrival, last arrival); (0, 0) when empty."""
        if not self.tasks:
            return (0.0, 0.0)
        return (self.tasks[0].arrival_time, self.tasks[-1].arrival_time)

    @property
    def duration(self) -> float:
        first, last = self.makespan_window
        return last - first

    def mean_arrival_rate(self) -> float:
        """Empirical arrivals per second over the arrival window."""
        if len(self.tasks) < 2 or self.duration == 0:
            return 0.0
        return (len(self.tasks) - 1) / self.duration

    # -- validation / utilities --------------------------------------------------

    def validate_against_eet(self, eet: "EETMatrix") -> None:
        """Raise IncompatibleWorkloadError unless all types exist in *eet*.

        Enforces the Fig-2 rule: "EET and Workload files must be compatible".
        """
        missing = [
            t.name for t in self.task_types if not eet.has_task_type(t.name)
        ]
        if missing:
            raise IncompatibleWorkloadError(
                f"EET matrix does not define task types {missing}; "
                f"it defines {eet.task_type_names}"
            )

    def fresh_copy(self) -> "Workload":
        """Deep-copy tasks into pristine (CREATED) state for a re-run.

        The simulator mutates tasks; Reset (the GUI button) needs a clean
        workload to replay the same trace.
        """
        clones = [
            Task(
                id=t.id,
                task_type=t.task_type,
                arrival_time=t.arrival_time,
                deadline=t.deadline,
                extras=t.extras,
            )
            for t in self.tasks
        ]
        return Workload(task_types=list(self.task_types), tasks=clones)

    def scaled(self, time_factor: float) -> "Workload":
        """Return a copy with arrivals & deadlines compressed by *time_factor*.

        ``time_factor`` < 1 squeezes the same tasks into a shorter window —
        an alternative way to raise intensity on a fixed trace.
        """
        if time_factor <= 0:
            raise WorkloadError(f"time_factor must be positive, got {time_factor}")
        clones = [
            Task(
                id=t.id,
                task_type=t.task_type,
                arrival_time=t.arrival_time * time_factor,
                deadline=t.arrival_time * time_factor
                + (t.deadline - t.arrival_time),
                extras=t.extras,
            )
            for t in self.tasks
        ]
        return Workload(task_types=list(self.task_types), tasks=clones)

    @classmethod
    def from_arrays(
        cls,
        task_types: list[TaskType],
        type_indices: Iterable[int],
        arrival_times: Iterable[float],
        deadlines: Iterable[float],
        *,
        id_offset: int = 0,
    ) -> "Workload":
        """Vectorised constructor from parallel arrays."""
        type_idx = np.asarray(list(type_indices), dtype=int)
        arrivals = np.asarray(list(arrival_times), dtype=float)
        dls = np.asarray(list(deadlines), dtype=float)
        if not (type_idx.shape == arrivals.shape == dls.shape):
            raise WorkloadError("from_arrays: arrays must have identical length")
        if type_idx.size and (type_idx.min() < 0 or type_idx.max() >= len(task_types)):
            raise WorkloadError("from_arrays: task type index out of range")
        order = np.argsort(arrivals, kind="stable")
        tasks = [
            Task(
                id=id_offset + rank,
                task_type=task_types[int(type_idx[i])],
                arrival_time=float(arrivals[i]),
                deadline=float(dls[i]),
            )
            for rank, i in enumerate(order)
        ]
        return cls(task_types=task_types, tasks=tasks)
