"""Tasks and their lifecycle.

Status machine (DESIGN.md §4):

```
CREATED -> IN_BATCH_QUEUE -> ASSIGNED -> RUNNING -> COMPLETED
                 |               |          |
                 v               v          v
             CANCELLED        MISSED     MISSED
```

``CANCELLED`` is the paper's "canceled" box — the deadline passed while the
task was still waiting in the batch queue (before any mapping decision took
effect). ``MISSED`` is the paper's "dropped/missed" box — the deadline passed
after assignment, either while queued on the machine or mid-execution.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..core.errors import SimulationStateError, WorkloadError
from .task_type import TaskType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..machines.machine import Machine

__all__ = ["Task", "TaskStatus", "DropStage"]


class TaskStatus(enum.Enum):
    """Where a task is in its lifecycle."""

    CREATED = "created"
    IN_BATCH_QUEUE = "in_batch_queue"
    ASSIGNED = "assigned"          # sitting in a machine queue
    RUNNING = "running"
    COMPLETED = "completed"
    CANCELLED = "cancelled"        # deadline miss before assignment
    MISSED = "missed"              # deadline miss after assignment

    @property
    def is_terminal(self) -> bool:
        return self._terminal


# Precompute terminality per member: is_terminal sits on the per-event hot
# path (every record_terminal and deadline check), and the tuple-membership
# test costs three enum comparisons per call.
for _status in TaskStatus:
    _status._terminal = _status in (
        TaskStatus.COMPLETED,
        TaskStatus.CANCELLED,
        TaskStatus.MISSED,
    )


class DropStage(enum.Enum):
    """Where a MISSED task was when its deadline expired."""

    MACHINE_QUEUE = "machine_queue"
    EXECUTING = "executing"
    IN_TRANSIT = "in_transit"      # communication extension


@dataclass(slots=True, eq=False)
class Task:
    """One request for an application (task type).

    Mutable simulation entity; identity-hashed. The timestamps fill in as the
    task moves through the system and feed the Task/Full reports.
    """

    id: int
    task_type: TaskType
    arrival_time: float
    deadline: float
    status: TaskStatus = TaskStatus.CREATED
    machine: "Machine | None" = None
    assigned_time: float | None = None
    start_time: float | None = None
    completion_time: float | None = None
    missed_time: float | None = None
    cancelled_time: float | None = None
    drop_stage: DropStage | None = None
    execution_time: float | None = None    # realised (possibly noisy) runtime
    energy: float | None = None            # Joules attributed to this task
    available_at: float | None = None      # delivery time under the network model
    retries: int = 0                       # times requeued after machine failures
    origin_cluster: int | None = None      # federation: shard the task arrived at
    cluster: int | None = None             # federation: shard currently owning it
    migrations: int = 0                    # federation: mid-queue cross-cluster moves
    extras: tuple[tuple[str, str], ...] = ()  # passthrough trace columns (name, raw value)

    def __post_init__(self) -> None:
        if self.id < 0:
            raise WorkloadError(f"task id must be >= 0, got {self.id}")
        if not math.isfinite(self.arrival_time) or self.arrival_time < 0:
            raise WorkloadError(
                f"task {self.id}: arrival_time must be finite and >= 0, "
                f"got {self.arrival_time}"
            )
        if not math.isfinite(self.deadline) and self.deadline != math.inf:
            raise WorkloadError(
                f"task {self.id}: deadline must be finite or +inf, got {self.deadline}"
            )
        if self.deadline < self.arrival_time:
            raise WorkloadError(
                f"task {self.id}: deadline {self.deadline} precedes arrival "
                f"{self.arrival_time}"
            )

    # -- lifecycle transitions -------------------------------------------------

    def enqueue_batch(self) -> None:
        if self.status is not TaskStatus.CREATED:
            self._expect(TaskStatus.CREATED)
        self.status = TaskStatus.IN_BATCH_QUEUE

    def assign(self, machine: "Machine", now: float) -> None:
        status = self.status
        if status is not TaskStatus.IN_BATCH_QUEUE and status is not TaskStatus.CREATED:
            self._expect(TaskStatus.IN_BATCH_QUEUE, TaskStatus.CREATED)
        self.status = TaskStatus.ASSIGNED
        self.machine = machine
        self.assigned_time = now

    def start(self, now: float) -> None:
        if self.status is not TaskStatus.ASSIGNED:
            self._expect(TaskStatus.ASSIGNED)
        self.status = TaskStatus.RUNNING
        self.start_time = now

    def complete(self, now: float) -> None:
        if self.status is not TaskStatus.RUNNING:
            self._expect(TaskStatus.RUNNING)
        self.status = TaskStatus.COMPLETED
        self.completion_time = now

    def cancel(self, now: float) -> None:
        self._expect(TaskStatus.IN_BATCH_QUEUE, TaskStatus.CREATED)
        self.status = TaskStatus.CANCELLED
        self.cancelled_time = now

    def miss(self, now: float, stage: DropStage) -> None:
        self._expect(TaskStatus.ASSIGNED, TaskStatus.RUNNING)
        self.status = TaskStatus.MISSED
        self.missed_time = now
        self.drop_stage = stage

    def evict_for_migration(self, now: float) -> None:
        """Pull the task out of a batch queue for a cross-cluster migration.

        Returns the task to ``CREATED`` — the same state an offloaded task
        holds while crossing the WAN — so the in-flight deadline handling
        (cancel, exact link accounting) applies unchanged, and re-arrival at
        the destination runs the ordinary ``enqueue_batch`` transition. The
        deadline is untouched: time spent queued at the source is lost.
        """
        self._expect(TaskStatus.IN_BATCH_QUEUE)
        self.status = TaskStatus.CREATED
        self.migrations += 1

    def requeue(self, now: float) -> None:
        """Return the task to the batch queue after a machine failure.

        Valid from ASSIGNED (queued / in transit) or RUNNING; clears the
        placement so the task competes again on the next scheduling pass.
        Its deadline is unchanged — lost progress is lost.
        """
        self._expect(TaskStatus.ASSIGNED, TaskStatus.RUNNING)
        self.status = TaskStatus.IN_BATCH_QUEUE
        self.machine = None
        self.assigned_time = None
        self.start_time = None
        self.execution_time = None
        self.available_at = None
        self.retries += 1

    def _expect(self, *allowed: TaskStatus) -> None:
        if self.status not in allowed:
            raise SimulationStateError(
                f"task {self.id}: illegal transition from {self.status.name} "
                f"(expected one of {[s.name for s in allowed]})"
            )

    # -- derived quantities ----------------------------------------------------

    @property
    def on_time(self) -> bool:
        """True iff the task completed no later than its deadline."""
        return (
            self.status is TaskStatus.COMPLETED
            and self.completion_time is not None
            and self.completion_time <= self.deadline
        )

    @property
    def slack(self) -> float:
        """Time remaining until the deadline at arrival."""
        return self.deadline - self.arrival_time

    def urgency(self, now: float) -> float:
        """Inverse of remaining laxity; larger = more urgent."""
        remaining = self.deadline - now
        if remaining <= 0:
            return math.inf
        return 1.0 / remaining

    @property
    def wait_time(self) -> float | None:
        """Batch-queue + machine-queue waiting before execution began."""
        if self.start_time is None:
            return None
        return self.start_time - self.arrival_time

    @property
    def response_time(self) -> float | None:
        """Arrival-to-completion latency (None unless completed)."""
        if self.completion_time is None:
            return None
        return self.completion_time - self.arrival_time

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Task(id={self.id}, type={self.task_type.name}, "
            f"arrival={self.arrival_time:.6g}, deadline={self.deadline:.6g}, "
            f"status={self.status.name})"
        )
