"""Tasks, task types, workloads and workload generation."""

from .arrivals import (
    ArrivalProcess,
    BurstyProcess,
    ConstantProcess,
    NormalProcess,
    PoissonProcess,
    UniformProcess,
    arrival_process_from_spec,
)
from .generator import (
    INTENSITY_LEVELS,
    TaskTypeSpec,
    WorkloadGenerator,
    oversubscription_for_level,
)
from .task import DropStage, Task, TaskStatus
from .task_type import TaskType, build_task_types
from .trace_io import read_workload_csv, workload_from_rows, write_workload_csv
from .workload import Workload

__all__ = [
    "Task",
    "TaskStatus",
    "DropStage",
    "TaskType",
    "build_task_types",
    "Workload",
    "ArrivalProcess",
    "PoissonProcess",
    "UniformProcess",
    "NormalProcess",
    "ConstantProcess",
    "BurstyProcess",
    "arrival_process_from_spec",
    "WorkloadGenerator",
    "TaskTypeSpec",
    "INTENSITY_LEVELS",
    "oversubscription_for_level",
    "read_workload_csv",
    "write_workload_csv",
    "workload_from_rows",
]
