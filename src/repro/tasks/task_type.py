"""Task types — the "applications" of the simulated system.

The paper (§3): "A workload is defined as a large group of tasks where each
task is a request for an application (task type)" — e.g. object detection,
noise removal, image enhancement on a satellite-imaging system. A task type
carries everything shared by its requests: a display name, a stable index into
the EET matrix rows, deadline parameters and optional resource footprints used
by the network/memory extensions.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import ConfigurationError

__all__ = ["TaskType"]


@dataclass(frozen=True, slots=True)
class TaskType:
    """An application class whose requests form the workload.

    Attributes
    ----------
    name:
        Human-readable identifier, e.g. ``"T1"`` or ``"object_detection"``.
        Must be unique within a scenario; used in CSV traces and reports.
    index:
        Row index of this type in the EET matrix.
    relative_deadline:
        Deadline offset added to each task's arrival time, in simulated
        seconds. ``None`` means tasks of this type get it derived from the
        EET matrix by the workload generator (``slack_factor`` model).
    data_in / data_out:
        Input/output payload sizes in MB; only used when the communication
        extension is enabled (transfer delay = latency + size/bandwidth).
    memory:
        Resident memory footprint in MB; only used when the memory extension
        is enabled.
    """

    name: str
    index: int
    relative_deadline: float | None = None
    data_in: float = 0.0
    data_out: float = 0.0
    memory: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("task type name must be non-empty")
        if self.index < 0:
            raise ConfigurationError(
                f"task type {self.name!r}: index must be >= 0, got {self.index}"
            )
        if self.relative_deadline is not None and self.relative_deadline <= 0:
            raise ConfigurationError(
                f"task type {self.name!r}: relative_deadline must be positive, "
                f"got {self.relative_deadline}"
            )
        for attr in ("data_in", "data_out", "memory"):
            value = getattr(self, attr)
            if value < 0:
                raise ConfigurationError(
                    f"task type {self.name!r}: {attr} must be >= 0, got {value}"
                )

    def __str__(self) -> str:
        return self.name


def build_task_types(
    names: list[str],
    *,
    relative_deadlines: list[float] | None = None,
) -> list[TaskType]:
    """Construct a consistently-indexed task-type list from plain names."""
    if len(set(names)) != len(names):
        raise ConfigurationError(f"duplicate task type names in {names}")
    deadlines: list[float | None]
    if relative_deadlines is None:
        deadlines = [None] * len(names)
    else:
        if len(relative_deadlines) != len(names):
            raise ConfigurationError(
                "relative_deadlines must match names in length "
                f"({len(relative_deadlines)} vs {len(names)})"
            )
        deadlines = list(relative_deadlines)
    return [
        TaskType(name=n, index=i, relative_deadline=d)
        for i, (n, d) in enumerate(zip(names, deadlines))
    ]
