"""Simulator positioning matrix — Table 1 of the paper (§2).

Table 1 compares E2C against CloudSim, iFogSim, EdgeCloudSim, iCanCloud and
TeachCloud on four axes: implementation language, GUI, heterogeneous-computing
support and workload generation. The rows for the other simulators are
literature facts; the E2C row is *introspected from this library* — the
feature claims are asserted against the code (GUI ⇒ the viz front-end exists;
heterogeneous ⇒ inconsistent EET matrices are expressible; workload generator
⇒ the generator module exists), so the regenerated table cannot drift from
the implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

__all__ = ["SimulatorEntry", "positioning_table", "render_table", "introspect_e2c"]

Support = Literal["yes", "no", "limited"]

_MARK = {"yes": "yes", "no": "no", "limited": "limited"}


@dataclass(frozen=True)
class SimulatorEntry:
    """One row of Table 1."""

    name: str
    language: str
    gui: Support
    heterogeneous: Support
    workload_generator: Support

    def as_dict(self) -> dict[str, str]:
        return {
            "simulator": self.name,
            "language": self.language,
            "gui": _MARK[self.gui],
            "heterogeneous": _MARK[self.heterogeneous],
            "workload_generator": _MARK[self.workload_generator],
        }


#: Literature rows of Table 1 (as printed in the paper).
_LITERATURE: tuple[SimulatorEntry, ...] = (
    SimulatorEntry("CloudSim", "Java", "no", "no", "limited"),
    SimulatorEntry("iFogSim", "Java", "no", "no", "limited"),
    SimulatorEntry("EdgeCloudSim", "Java", "no", "no", "yes"),
    SimulatorEntry("iCanCloud", "C++", "yes", "no", "no"),
    SimulatorEntry("TeachCloud", "Java", "yes", "no", "limited"),
)


def introspect_e2c() -> SimulatorEntry:
    """Build the E2C row by checking this library's actual capabilities."""
    # GUI claim: the visual front-end (renderer + animation + controller).
    try:
        from .core.controller import SimulationController  # noqa: F401
        from .viz.animation import Animator  # noqa: F401
        from .viz.renderer import SystemRenderer  # noqa: F401

        gui: Support = "yes"
    except ImportError:  # pragma: no cover - would indicate a broken build
        gui = "no"

    # Heterogeneity claim: an inconsistent EET matrix must be expressible.
    try:
        from .machines.eet_generation import generate_eet_cvb

        matrix = generate_eet_cvb(
            3, 3, v_machine=0.5, consistency="inconsistent", seed=0
        )
        heterogeneous: Support = (
            "yes" if not matrix.is_homogeneous() else "no"
        )
    except Exception:  # pragma: no cover
        heterogeneous = "no"

    # Workload generation claim: the generator with intensity calibration.
    try:
        from .tasks.generator import WorkloadGenerator  # noqa: F401

        workload: Support = "yes"
    except ImportError:  # pragma: no cover
        workload = "no"

    return SimulatorEntry("E2C", "Python", gui, heterogeneous, workload)


def positioning_table() -> list[SimulatorEntry]:
    """All rows of Table 1, the E2C row introspected live."""
    return [*_LITERATURE, introspect_e2c()]


def render_table() -> str:
    """ASCII rendering of Table 1."""
    rows = [e.as_dict() for e in positioning_table()]
    columns = [
        ("simulator", "Simulator"),
        ("language", "Language"),
        ("gui", "GUI"),
        ("heterogeneous", "Heterogeneous"),
        ("workload_generator", "Workload gen."),
    ]
    widths = {
        key: max(len(header), *(len(r[key]) for r in rows))
        for key, header in columns
    }
    header_line = "  ".join(h.ljust(widths[k]) for k, h in columns)
    rule = "  ".join("-" * widths[k] for k, _ in columns)
    lines = [
        "Table 1 — positioning of E2C among distributed-system simulators",
        header_line,
        rule,
    ]
    for row in rows:
        lines.append("  ".join(row[k].ljust(widths[k]) for k, _ in columns))
    return "\n".join(lines)
