"""Experiment campaigns: declarative policy sweeps over scenario grids.

The subsystem behind ``e2c-sim sweep``. A campaign is the cartesian product
of registered scenarios × scheduling policies × seeds; this package expands
it, fans it out over worker processes, and aggregates the per-run summaries
into a tidy table plus a cross-policy comparison report::

    from repro.experiments import CampaignSpec, run_campaign

    spec = CampaignSpec(
        scenarios=["satellite_imaging", "edge_ai"],
        schedulers=["FCFS", "MECT", "MM"],
        seeds=[1, 2, 3],
        seed=42,
    )
    result = run_campaign(spec)
    print(result.to_text())
    result.to_csv("campaign.csv")

Determinism contract: given the same spec (including the campaign ``seed``),
the aggregated table is byte-identical across serial and parallel execution
and across any worker count.

:mod:`.tournament` builds on campaigns: it expands every gateway × eviction
policy pairing over a preset grid into one campaign and distils the result
into a ranked, canonically-rendered leaderboard (``e2c-sim tournament``).
"""

from .campaign import DEFAULT_METRICS, CampaignSpec, RunSpec, ScenarioRef
from .runner import (
    CampaignResult,
    CampaignRunner,
    RunRecord,
    execute_campaign,
    result_extras,
    run_campaign,
)
from .tournament import (
    TournamentResult,
    TournamentSpec,
    build_leaderboard,
    leaderboard_json,
    leaderboard_rows_from_csv,
    leaderboard_text,
    run_tournament,
    tournament_campaign,
)

__all__ = [
    "CampaignSpec",
    "ScenarioRef",
    "RunSpec",
    "DEFAULT_METRICS",
    "CampaignRunner",
    "CampaignResult",
    "RunRecord",
    "run_campaign",
    "execute_campaign",
    "result_extras",
    "TournamentSpec",
    "TournamentResult",
    "tournament_campaign",
    "run_tournament",
    "build_leaderboard",
    "leaderboard_rows_from_csv",
    "leaderboard_json",
    "leaderboard_text",
]
