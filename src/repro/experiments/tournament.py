"""Policy tournaments: every gateway × eviction policy, ranked on a grid.

The paper positions the simulator as a laboratory for comparing scheduling
policies; the federation layer doubles the policy surface (gateway routing
× mid-queue eviction). A :class:`TournamentSpec` names a preset grid and
expands every registered (or explicitly listed) gateway × eviction
combination into one :class:`~.campaign.CampaignSpec` scenario cell per
preset — so the whole tournament *is* a campaign: it fans out over the
multiprocessing runner, derives per-repetition seeds through
:func:`repro.core.rng.derive_seed`, and is cacheable as-is by the campaign
service (its dict form is an ordinary campaign submission).

The result is distilled into a **leaderboard**: per (gateway, eviction)
pair, metric means over every (preset, repetition) cell, ranked by
completion rate. :func:`leaderboard_json` renders it canonically (sorted
keys, ``repr``-precision floats), so the same tournament produces
byte-identical ``leaderboard.json`` files whatever the worker count — the
regression surface CI's tournament job and the determinism suite pin.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from ..core.errors import ConfigurationError
from ..scheduling.federation import available_evictions, available_gateways
from .campaign import CampaignSpec, ScenarioRef
from .runner import CampaignResult, run_campaign

__all__ = [
    "TournamentSpec",
    "TournamentResult",
    "tournament_campaign",
    "run_tournament",
    "build_leaderboard",
    "leaderboard_rows_from_csv",
    "leaderboard_json",
    "leaderboard_text",
]

#: Separator of the ``preset|gateway|eviction`` scenario labels.
LABEL_SEPARATOR = "|"

#: Presets a bare TournamentSpec competes on: both accept the ``gateway``
#: and ``migration`` override knobs the tournament sweeps.
DEFAULT_PRESETS = ("fed_rebalance", "fed_adaptive")

#: Metrics the leaderboard aggregates (means over all cells of a pair).
LEADERBOARD_METRICS = (
    "completion_rate",
    "mean_response_time",
    "total_energy",
)


@dataclass(frozen=True)
class TournamentSpec:
    """One policy tournament: preset grid × gateways × evictions × seeds.

    Empty ``gateways``/``evictions`` mean *every registered policy* —
    resolved at expansion time, so plug-in policies registered before the
    run compete automatically. ``repetitions`` is the seed-axis length;
    per-cell scenario seeds derive from ``seed`` exactly like any campaign.
    """

    presets: tuple[str, ...] = DEFAULT_PRESETS
    gateways: tuple[str, ...] = ()
    evictions: tuple[str, ...] = ()
    scheduler: str = "MM"
    repetitions: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "presets", tuple(self.presets))
        object.__setattr__(self, "gateways", tuple(self.gateways))
        object.__setattr__(self, "evictions", tuple(self.evictions))
        if not self.presets:
            raise ConfigurationError("tournament needs at least one preset")
        if self.repetitions < 1:
            raise ConfigurationError(
                f"repetitions must be >= 1, got {self.repetitions}"
            )
        if self.seed < 0:
            raise ConfigurationError(f"seed must be >= 0, got {self.seed}")
        for preset in self.presets:
            if LABEL_SEPARATOR in preset:
                raise ConfigurationError(
                    f"preset name {preset!r} must not contain "
                    f"{LABEL_SEPARATOR!r} (the tournament label separator)"
                )

    def resolved_gateways(self) -> tuple[str, ...]:
        """The gateway axis; empty spec → every registered gateway."""
        return self.gateways or tuple(available_gateways())

    def resolved_evictions(self) -> tuple[str, ...]:
        """The eviction axis; empty spec → every registered eviction."""
        return self.evictions or tuple(available_evictions())

    def grid(self) -> dict[str, Any]:
        """The fully-resolved grid (the leaderboard's provenance block)."""
        return {
            "presets": list(self.presets),
            "gateways": list(self.resolved_gateways()),
            "evictions": list(self.resolved_evictions()),
            "scheduler": self.scheduler,
            "repetitions": self.repetitions,
            "seed": self.seed,
        }


def tournament_campaign(spec: TournamentSpec) -> CampaignSpec:
    """Expand a tournament into the campaign that runs it.

    One scenario ref per (preset, gateway, eviction) — labelled
    ``preset|gateway|eviction`` so the leaderboard can re-group rows — a
    single local-scheduler axis entry, and the repetition range as the
    seed axis. The returned spec is an ordinary campaign: it sweeps on the
    multiprocessing runner and its ``to_dict()`` form submits to the
    campaign service (and hits its result cache) unchanged.
    """
    scenarios = [
        ScenarioRef(
            name=preset,
            overrides={"gateway": gateway, "migration": eviction},
            label=LABEL_SEPARATOR.join((preset, gateway, eviction)),
        )
        for preset in spec.presets
        for gateway in spec.resolved_gateways()
        for eviction in spec.resolved_evictions()
    ]
    return CampaignSpec(
        scenarios=scenarios,
        schedulers=[spec.scheduler],
        seeds=list(range(spec.repetitions)),
        seed=spec.seed,
        metrics=list(LEADERBOARD_METRICS),
        name="tournament",
    )


def build_leaderboard(
    spec: TournamentSpec, rows: Sequence[Mapping[str, Any]]
) -> dict[str, Any]:
    """Distil tidy campaign rows into the ranked leaderboard document.

    ``rows`` is any iterable of tidy-table rows — straight from
    :meth:`~.runner.CampaignResult.table` or re-parsed from the canonical
    CSV a service cache hit returns (:func:`leaderboard_rows_from_csv`);
    both sources yield the identical document because the CSV stores
    ``repr``-precision floats. Cells aggregate per (gateway, eviction) in
    sorted (label, seed) order, so the float means — and therefore the
    rendered bytes — do not depend on the order rows arrived in.
    """
    groups: dict[tuple[str, str], list[Mapping[str, Any]]] = {}
    for row in rows:
        label = str(row["scenario"])
        parts = label.split(LABEL_SEPARATOR)
        if len(parts) != 3:
            raise ConfigurationError(
                f"row scenario label {label!r} is not "
                "'preset|gateway|eviction'"
            )
        groups.setdefault((parts[1], parts[2]), []).append(row)
    entries: list[dict[str, Any]] = []
    for (gateway, eviction), cells in sorted(groups.items()):
        ordered = sorted(
            cells, key=lambda c: (str(c["scenario"]), int(c["seed"]))
        )
        entry: dict[str, Any] = {
            "gateway": gateway,
            "eviction": eviction,
            "cells": len(ordered),
        }
        for metric in LEADERBOARD_METRICS:
            values = [float(cell[metric]) for cell in ordered]
            entry[metric] = sum(values) / len(values)
        entries.append(entry)
    entries.sort(
        key=lambda e: (
            -e["completion_rate"],
            e["mean_response_time"],
            e["gateway"],
            e["eviction"],
        )
    )
    for rank, entry in enumerate(entries, start=1):
        entry["rank"] = rank
    return {
        "kind": "tournament-leaderboard",
        "grid": spec.grid(),
        "metrics": list(LEADERBOARD_METRICS),
        "entries": entries,
    }


def leaderboard_rows_from_csv(csv_text: str) -> list[dict[str, str]]:
    """Tidy rows back out of the canonical campaign CSV (service cache)."""
    reader = csv.DictReader(io.StringIO(csv_text))
    return [dict(row) for row in reader]


def leaderboard_json(board: Mapping[str, Any]) -> str:
    """Canonical bytes of a leaderboard: sorted keys, ``repr`` floats.

    ``json.dumps`` renders floats with ``repr`` precision, so two runs of
    the same tournament — serial, 2 workers, 8 workers, or a service cache
    hit — produce byte-identical files.
    """
    return json.dumps(board, indent=2, sort_keys=True) + "\n"


def leaderboard_text(board: Mapping[str, Any]) -> str:
    """The tidy human-readable leaderboard table."""
    entries = board["entries"]
    gateway_width = max(
        [len("gateway")] + [len(e["gateway"]) for e in entries]
    )
    eviction_width = max(
        [len("eviction")] + [len(e["eviction"]) for e in entries]
    )
    metrics = list(board.get("metrics", LEADERBOARD_METRICS))
    header = "  ".join(
        ["rank", f"{'gateway':<{gateway_width}}",
         f"{'eviction':<{eviction_width}}"]
        + [f"{m:>{max(len(m), 12)}}" for m in metrics]
        + ["cells"]
    )
    lines = [header, "-" * len(header)]
    for entry in entries:
        lines.append(
            "  ".join(
                [f"{entry['rank']:>4}",
                 f"{entry['gateway']:<{gateway_width}}",
                 f"{entry['eviction']:<{eviction_width}}"]
                + [
                    f"{entry[m]:>{max(len(m), 12)}.4f}"
                    for m in metrics
                ]
                + [f"{entry['cells']:>5}"]
            )
        )
    return "\n".join(lines)


@dataclass(frozen=True)
class TournamentResult:
    """A finished tournament: the campaign table plus its leaderboard."""

    spec: TournamentSpec
    campaign: CampaignResult
    leaderboard: dict[str, Any] = field(repr=False)

    def to_json(self) -> str:
        """Canonical ``leaderboard.json`` bytes (see :func:`leaderboard_json`)."""
        return leaderboard_json(self.leaderboard)

    def to_text(self) -> str:
        """Human-readable leaderboard table."""
        return leaderboard_text(self.leaderboard)


def run_tournament(
    spec: TournamentSpec,
    *,
    parallel: bool = True,
    workers: int | None = None,
) -> TournamentResult:
    """Run the tournament's campaign and build its leaderboard."""
    campaign = run_campaign(
        tournament_campaign(spec), parallel=parallel, workers=workers
    )
    return TournamentResult(
        spec=spec,
        campaign=campaign,
        leaderboard=build_leaderboard(spec, campaign.table()),
    )
