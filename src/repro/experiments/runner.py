"""Campaign execution: fan the grid out over worker processes, gather a table.

:class:`CampaignRunner` executes every :class:`~.campaign.RunSpec` cell of a
:class:`~.campaign.CampaignSpec`, serially or over a ``multiprocessing``
pool. Each cell is a pure function of its spec — the worker rebuilds the
scenario from the registry, installs the derived per-run seed, runs, and
returns only the (small, picklable) summary — so the aggregated table is
bit-for-bit identical whichever execution mode produced it and however many
workers raced over the grid.

The result object keeps the tidy table (one row per run) and feeds
:class:`repro.metrics.comparison.PolicyComparison` for the cross-policy
report the classroom workflow asks for: "which policy wins on which metric
in which scenario".
"""

from __future__ import annotations

import csv
import io
import multiprocessing
import os
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Sequence

from ..core.errors import ConfigurationError
from ..metrics.collector import SummaryMetrics
from ..metrics.comparison import PolicyComparison
from ..scenarios import build_scenario
from .campaign import CampaignSpec, RunSpec

__all__ = [
    "RunRecord",
    "CampaignResult",
    "CampaignRunner",
    "run_campaign",
    "execute_campaign",
    "result_extras",
]

#: Identity columns every tidy-table row starts with, in order.
IDENTITY_COLUMNS = ("scenario", "scheduler", "seed", "run_seed")


def _pool_context():
    """Prefer ``fork`` so runtime-registered scenarios reach the workers.

    Python's default start method varies by platform and version; ``fork``
    inherits the parent's scenario registry, which is part of this module's
    documented contract. Platforms without it fall back to the default.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def result_extras(result) -> dict[str, float]:
    """Result-level metrics living outside SummaryMetrics, as plain floats.

    Federated runs carry the offloading/WAN energy figures (and, when
    mid-queue migration ran, its conservation + energy account) into the
    campaign table and the service result cache; single-cluster runs have
    none.
    """
    extras: dict[str, float] = {}
    if hasattr(result, "energy_split"):
        split = result.energy_split
        extras = {
            "offload_rate": result.offload_rate,
            "wan_time_total": result.wan_time_total,
            "wan_energy_total": result.wan_energy_total,
            "energy_per_local_task": split.energy_per_local_task,
            "energy_per_offloaded_task": split.energy_per_offloaded_task,
        }
        stats = result.migration_stats
        if stats.attempted:
            extras.update(stats.as_dict())
    return extras


def _execute_cell(cell: RunSpec) -> "RunRecord":
    """Run one grid cell; module-level so worker processes can import it."""
    scenario = build_scenario(cell.scenario, **dict(cell.overrides))
    scenario = replace(
        scenario,
        scheduler=cell.scheduler,
        scheduler_params=dict(cell.scheduler_params),
        seed=cell.run_seed,
        name=cell.label,
    )
    result = scenario.run()
    extras = result_extras(result)
    return RunRecord(
        scenario=cell.label,
        scheduler=cell.scheduler,
        seed=cell.seed,
        run_seed=cell.run_seed,
        summary=result.summary,
        extras=extras,
    )


@dataclass(frozen=True)
class RunRecord:
    """Outcome of one cell: grid coordinates plus the run's summary metrics.

    ``extras`` carries result-level metrics that live outside
    :class:`~repro.metrics.collector.SummaryMetrics` — today the federated
    offloading/WAN-energy figures (offload rate, WAN time and energy, the
    edge-vs-cloud energy-per-completed-task split) plus, when mid-queue
    migration ran, the migration conservation/energy account; empty for
    single-cluster runs.
    """

    scenario: str
    scheduler: str
    seed: int
    run_seed: int
    summary: SummaryMetrics
    extras: dict = field(default_factory=dict)

    def row(self) -> dict:
        """Tidy-table row: identity columns then every summary metric."""
        out = {
            "scenario": self.scenario,
            "scheduler": self.scheduler,
            "seed": self.seed,
            "run_seed": self.run_seed,
        }
        out.update(self.summary.as_dict())
        out.update(self.extras)
        return out


@dataclass(frozen=True)
class CampaignResult:
    """All records of a finished campaign, in grid order."""

    spec: CampaignSpec
    records: tuple[RunRecord, ...]

    @property
    def scenario_labels(self) -> list[str]:
        return [ref.effective_label for ref in self.spec.scenarios]

    def table(self) -> list[dict]:
        """One tidy row per run, in deterministic grid order."""
        return [record.row() for record in self.records]

    def columns(self) -> list[str]:
        """Identity columns followed by the sorted union of metric columns."""
        metric_cols: set[str] = set()
        for record in self.records:
            metric_cols.update(record.summary.as_dict())
            metric_cols.update(record.extras)
        return list(IDENTITY_COLUMNS) + sorted(metric_cols)

    def to_csv(self, path: str | Path | None = None) -> str:
        """Render the tidy table as CSV text (and optionally write it).

        Formatting is deliberately canonical — fixed column order, ``repr``
        floats — so two runs of the same campaign produce byte-identical
        files regardless of worker count.
        """
        columns = self.columns()
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(columns)
        for row in self.table():
            writer.writerow([_format_value(row.get(c, "")) for c in columns])
        text = buffer.getvalue()
        if path is not None:
            Path(path).write_text(text, encoding="utf-8")
        return text

    def comparison(self, scenario: str | None = None) -> PolicyComparison:
        """Cross-policy comparison, per scenario label (or the whole grid).

        Each scheduler's replications are its runs over the seed axis, so the
        comparison is paired: every policy saw the same workloads.
        """
        if scenario is not None and scenario not in self.scenario_labels:
            raise ConfigurationError(
                f"unknown scenario label {scenario!r}; "
                f"have {self.scenario_labels}"
            )
        comparison = PolicyComparison()
        for record in self.records:
            if scenario is None or record.scenario == scenario:
                comparison.add(record.scheduler, record.summary)
        return comparison

    def to_text(self, metrics: Sequence[str] | None = None) -> str:
        """Human-readable cross-policy report, one block per scenario."""
        metrics = list(metrics or self.spec.metrics)
        lines = [
            f"Campaign {self.spec.name!r}: "
            f"{len(self.scenario_labels)} scenario(s) x "
            f"{len(self.spec.schedulers)} scheduler(s) x "
            f"{len(self.spec.seeds)} seed(s) = {len(self.records)} runs"
        ]
        policy_width = max(
            (len(p) for p in self.spec.schedulers), default=8
        )
        policy_width = max(policy_width, len("policy"))
        for label in self.scenario_labels:
            comparison = self.comparison(label)
            lines.append("")
            lines.append(f"[{label}]")
            header = "  ".join(
                [f"{'policy':<{policy_width}}"]
                + [f"{m:>{max(len(m), 12)}}" for m in metrics]
            )
            lines.append(header)
            lines.append("-" * len(header))
            for policy in self.spec.schedulers:
                cells = [f"{policy:<{policy_width}}"]
                for metric in metrics:
                    value = comparison.mean(policy, metric)
                    cells.append(f"{value:>{max(len(metric), 12)}.4f}")
                lines.append("  ".join(cells))
        return "\n".join(lines)


def _format_value(value) -> str:
    # repr() keeps full float precision; csv handles the quoting.
    if isinstance(value, float):
        return repr(value)
    return str(value)


class CampaignRunner:
    """Executes a campaign spec, serially or across worker processes.

    Parameters
    ----------
    spec:
        The campaign to run.
    workers:
        Default worker-process count for :meth:`run`; ``None`` means one per
        CPU (capped at the number of grid cells).

    Note on custom scenarios: worker processes resolve scenario names through
    the registry after importing :mod:`repro.scenarios`, so stock presets are
    always available. The pool is explicitly created with the POSIX ``fork``
    start method where the platform offers it (regardless of the Python
    version's default), so scenarios registered at runtime are visible to
    workers too; on platforms without ``fork`` (e.g. Windows) register custom
    scenarios at module import time.
    """

    def __init__(self, spec: CampaignSpec, *, workers: int | None = None):
        if workers is not None and workers < 1:
            raise ConfigurationError(f"need at least 1 worker, got {workers}")
        self.spec = spec
        self.workers = workers

    def effective_workers(self, n_cells: int) -> int:
        workers = self.workers or os.cpu_count() or 1
        return max(1, min(workers, n_cells))

    def run(self, *, parallel: bool = True) -> CampaignResult:
        """Execute every cell and gather records in grid order.

        ``parallel=False`` forces in-process serial execution (useful for
        debugging and for determinism tests); the resulting table is
        identical either way.
        """
        cells = self.spec.cells()
        workers = self.effective_workers(len(cells))
        if parallel and workers > 1:
            with _pool_context().Pool(processes=workers) as pool:
                records = pool.map(_execute_cell, cells)
        else:
            records = [_execute_cell(cell) for cell in cells]
        return CampaignResult(spec=self.spec, records=tuple(records))


def run_campaign(
    spec: CampaignSpec,
    *,
    parallel: bool = True,
    workers: int | None = None,
) -> CampaignResult:
    """One-call convenience: ``CampaignRunner(spec, workers=...).run(...)``."""
    return CampaignRunner(spec, workers=workers).run(parallel=parallel)


def execute_campaign(
    spec: CampaignSpec,
    *,
    progress: Callable[[int, int], None] | None = None,
) -> CampaignResult:
    """Run a campaign serially, reporting per-cell progress as it goes.

    The streaming twin of :meth:`CampaignRunner.run`: cells execute in grid
    order inside the calling process, and ``progress(done, total)`` fires
    after every completed run. The campaign service's persistent workers use
    this to journal runs-completed counters incrementally; the resulting
    table is byte-identical to every other execution mode (same cells, same
    derived seeds, same order).
    """
    cells = spec.cells()
    if progress is not None:
        progress(0, len(cells))
    records = []
    for done, cell in enumerate(cells, start=1):
        records.append(_execute_cell(cell))
        if progress is not None:
            progress(done, len(cells))
    return CampaignResult(spec=spec, records=tuple(records))
