"""Declarative experiment campaigns: scenario grid × scheduler list × seeds.

The paper positions E2C as an instrument for comparing scheduling policies
across heterogeneous scenarios; follow-on work runs exactly such
multi-policy, multi-platform sweeps. A :class:`CampaignSpec` captures one
sweep declaratively — which registered scenarios (with per-scenario factory
overrides), which policies, which seeds — and expands it into the cartesian
product of :class:`RunSpec` cells. Specs round-trip through plain dicts and
JSON so a campaign is a reproducible artifact exactly like a scenario file.

Seeding: every cell's scenario seed is derived from the campaign master seed
and the (scenario label, grid seed) pair via :func:`repro.core.rng.derive_seed`.
The scheduler deliberately does *not* enter the derivation, so every policy
faces the identical workload for a given (scenario, seed) cell — paired
comparisons with common random numbers, the same discipline
:func:`repro.metrics.comparison.compare_policies` uses.
"""

from __future__ import annotations

import inspect
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

from ..core.errors import ConfigurationError
from ..core.jsonio import load_json_source
from ..core.rng import derive_seed
from ..scenarios import scenario_factory
from ..scheduling.registry import scheduler_class

__all__ = ["ScenarioRef", "RunSpec", "CampaignSpec", "DEFAULT_METRICS"]

#: Summary metrics campaigns report on unless the spec says otherwise.
DEFAULT_METRICS = (
    "completion_rate",
    "mean_response_time",
    "total_energy",
)


@dataclass(frozen=True)
class ScenarioRef:
    """A named scenario preset plus factory overrides.

    ``name`` must resolve in the scenario registry; ``overrides`` are keyword
    arguments forwarded to the factory (e.g. ``duration``, ``intensity``).
    ``label`` distinguishes two refs to the same preset with different
    overrides; it defaults to ``name``.
    """

    name: str
    overrides: Mapping[str, Any] = field(default_factory=dict)
    label: str | None = None

    @property
    def effective_label(self) -> str:
        return self.label or self.name

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"name": self.name}
        if self.overrides:
            out["overrides"] = dict(self.overrides)
        if self.label is not None:
            out["label"] = self.label
        return out

    @classmethod
    def coerce(cls, value: "ScenarioRef | str | Mapping[str, Any]") -> "ScenarioRef":
        """Accept a ref, a bare preset name, or its dict form."""
        if isinstance(value, ScenarioRef):
            return value
        if isinstance(value, str):
            return cls(name=value)
        if isinstance(value, Mapping):
            if "name" not in value:
                raise ConfigurationError(
                    f"scenario reference {dict(value)!r} needs a 'name'"
                )
            return cls(
                name=value["name"],
                overrides=dict(value.get("overrides", {})),
                label=value.get("label"),
            )
        raise ConfigurationError(
            f"cannot interpret {value!r} as a scenario reference"
        )


@dataclass(frozen=True)
class RunSpec:
    """One fully-determined cell of the campaign grid.

    Self-contained and picklable: a worker process rebuilds the scenario from
    the registry using only this object. ``run_seed`` is the derived scenario
    seed (see module docstring); ``seed`` is the grid-axis value it came from.
    """

    campaign: str
    scenario: str
    overrides: Mapping[str, Any]
    label: str
    scheduler: str
    scheduler_params: Mapping[str, Any]
    seed: int
    run_seed: int

    def key(self) -> tuple[str, str, int]:
        """Identity of the cell within its campaign."""
        return (self.label, self.scheduler, self.seed)


@dataclass
class CampaignSpec:
    """Declarative description of a full experiment campaign.

    Attributes
    ----------
    scenarios:
        Scenario refs (or bare preset names / dicts — coerced on init).
    schedulers:
        Registry names of the policies to sweep.
    seeds:
        Grid seed values; each (scenario, seed) pair gets an independent
        workload shared by every scheduler.
    seed:
        Campaign master seed all per-run seeds derive from.
    scheduler_params:
        Optional per-policy constructor kwargs, keyed by policy name.
    metrics:
        Summary metrics the comparison report shows.
    name:
        Campaign identifier (report headers, CSV file names).
    """

    scenarios: Sequence[ScenarioRef | str | Mapping[str, Any]]
    schedulers: Sequence[str]
    seeds: Sequence[int] = (0,)
    seed: int = 0
    scheduler_params: dict[str, dict] = field(default_factory=dict)
    metrics: Sequence[str] = DEFAULT_METRICS
    name: str = "campaign"

    def __post_init__(self) -> None:
        self.scenarios = [ScenarioRef.coerce(s) for s in self.scenarios]
        # Canonicalise policy names (case/alias) so scheduler_params lookup,
        # reports and CSV columns all show registry names.
        self.schedulers = [
            scheduler_class(str(s)).name for s in self.schedulers
        ]
        self.scheduler_params = {
            scheduler_class(str(k)).name: dict(v)
            for k, v in self.scheduler_params.items()
        }
        try:
            self.seeds = [int(s) for s in self.seeds]
            self.seed = int(self.seed)
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"campaign seeds must be integers: {exc}"
            ) from exc
        if self.seed < 0 or any(s < 0 for s in self.seeds):
            # derive_seed feeds numpy's SeedSequence, which rejects negatives
            raise ConfigurationError(
                "campaign seeds must be non-negative integers"
            )
        self.metrics = [str(m) for m in self.metrics]
        self.validate()

    def validate(self) -> None:
        if not self.scenarios:
            raise ConfigurationError("campaign needs at least one scenario")
        if not self.schedulers:
            raise ConfigurationError("campaign needs at least one scheduler")
        if not self.seeds:
            raise ConfigurationError("campaign needs at least one seed")
        labels = [ref.effective_label for ref in self.scenarios]
        duplicates = {l for l in labels if labels.count(l) > 1}
        if duplicates:
            raise ConfigurationError(
                f"duplicate scenario labels {sorted(duplicates)}; "
                "give overridden refs distinct 'label's"
            )
        for ref in self.scenarios:
            factory = scenario_factory(ref.name)  # raises UnknownScenarioError
            try:
                inspect.signature(factory).bind_partial(**dict(ref.overrides))
            except TypeError as exc:
                raise ConfigurationError(
                    f"invalid overrides for scenario {ref.name!r}: {exc}"
                ) from exc
        unknown = set(self.scheduler_params) - set(self.schedulers)
        if unknown:
            raise ConfigurationError(
                f"scheduler_params for policies not in the sweep: "
                f"{sorted(unknown)}"
            )

    @property
    def n_runs(self) -> int:
        return len(self.scenarios) * len(self.schedulers) * len(self.seeds)

    def cells(self) -> list[RunSpec]:
        """Expand the grid, scenario-major, in deterministic order."""
        out = []
        for ref in self.scenarios:
            label = ref.effective_label
            for scheduler in self.schedulers:
                params = self.scheduler_params.get(scheduler, {})
                for grid_seed in self.seeds:
                    out.append(
                        RunSpec(
                            campaign=self.name,
                            scenario=ref.name,
                            overrides=dict(ref.overrides),
                            label=label,
                            scheduler=scheduler,
                            scheduler_params=dict(params),
                            seed=grid_seed,
                            run_seed=derive_seed(
                                self.seed, "campaign", label, grid_seed
                            ),
                        )
                    )
        return out

    # -- dict / JSON round-trip ------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "seed": self.seed,
            "scenarios": [ref.to_dict() for ref in self.scenarios],
            "schedulers": list(self.schedulers),
            "seeds": list(self.seeds),
            "scheduler_params": {
                k: dict(v) for k, v in self.scheduler_params.items()
            },
            "metrics": list(self.metrics),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"campaign spec must be a JSON object, got {type(data).__name__}"
            )
        try:
            scenarios = data["scenarios"]
            schedulers = data["schedulers"]
        except KeyError as exc:
            raise ConfigurationError(
                f"campaign spec is missing required key {exc.args[0]!r}"
            ) from None
        return cls(
            scenarios=scenarios,
            schedulers=schedulers,
            seeds=data.get("seeds", (0,)),
            seed=data.get("seed", 0),
            scheduler_params=data.get("scheduler_params", {}),
            metrics=data.get("metrics", DEFAULT_METRICS),
            name=data.get("name", "campaign"),
        )

    def to_json(self, path: str | Path | None = None, *, indent: int = 2) -> str:
        text = json.dumps(self.to_dict(), indent=indent)
        if path is not None:
            Path(path).write_text(text, encoding="utf-8")
        return text

    @classmethod
    def from_json(cls, source: str | Path) -> "CampaignSpec":
        """Load from a JSON file path or a JSON string (like Scenario)."""
        return cls.from_dict(load_json_source(source, what="campaign spec"))
