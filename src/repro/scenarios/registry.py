"""Scenario registry — named presets students and campaigns build on.

The scheduling layer already has a plug-in registry (any policy can be
registered by name and picked from the GUI drop-down); this module gives
scenarios the same treatment. A *scenario factory* is any callable taking
keyword arguments and returning a :class:`~repro.core.config.Scenario`.
Registering it under a name makes it addressable from campaign specs
(``repro.experiments``), the CLI (``e2c-sim sweep`` / ``e2c-sim scenarios``)
and student code::

    from repro.scenarios import register_scenario, build_scenario

    @register_scenario("tiny_lab")
    def tiny_lab(*, scheduler="FCFS", duration=100.0, seed=1):
        ...
        return Scenario(...)

    scenario = build_scenario("tiny_lab", scheduler="MECT")

Names are case-insensitive. Factories should accept ``scheduler``, ``seed``
and (where meaningful) ``duration``/``intensity`` keywords so campaign grids
can re-parameterise them uniformly.
"""

from __future__ import annotations

from typing import Callable, TYPE_CHECKING

from ..core.errors import ConfigurationError, UnknownScenarioError

if TYPE_CHECKING:  # pragma: no cover
    from ..core.config import Scenario

__all__ = [
    "register_scenario",
    "scenario_factory",
    "build_scenario",
    "available_scenarios",
    "scenario_summaries",
]

ScenarioFactory = Callable[..., "Scenario"]

_REGISTRY: dict[str, ScenarioFactory] = {}


def register_scenario(
    name: str | ScenarioFactory | None = None, *, overwrite: bool = False
):
    """Register a scenario factory under *name* (default: the function name).

    Usable as ``@register_scenario``, ``@register_scenario("name")`` or
    imperatively: ``register_scenario("name")(factory)``. Pass
    ``overwrite=True`` to replace an existing preset (e.g. a classroom
    variant shadowing a stock one).
    """

    def apply(factory: ScenarioFactory) -> ScenarioFactory:
        key = (name if isinstance(name, str) else factory.__name__).lower()
        if not key:
            raise ConfigurationError("scenario name must be non-empty")
        existing = _REGISTRY.get(key)
        if existing is not None and existing is not factory and not overwrite:
            raise ConfigurationError(
                f"scenario name {key!r} already registered to "
                f"{getattr(existing, '__name__', existing)!r}; "
                "pass overwrite=True to replace it"
            )
        _REGISTRY[key] = factory
        return factory

    if callable(name):  # bare @register_scenario form
        return apply(name)
    return apply


def scenario_factory(name: str) -> ScenarioFactory:
    """Resolve a registered factory by (case-insensitive) name."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise UnknownScenarioError(
            f"unknown scenario {name!r}; available: {available_scenarios()}"
        ) from None


def build_scenario(name: str, **overrides) -> "Scenario":
    """Build a registered scenario, forwarding *overrides* to its factory."""
    return scenario_factory(name)(**overrides)


def available_scenarios() -> list[str]:
    """Sorted names of every registered scenario preset."""
    return sorted(_REGISTRY)


def scenario_summaries() -> list[tuple[str, str]]:
    """(name, one-line description) for every registered preset, sorted.

    The description is the first line of the factory's docstring — the
    single source of truth the ``e2c-sim scenarios`` listing and the
    doctest-pinned preset table in the README both render, so the two can
    never drift apart (or from the registry itself).
    """
    rows = []
    for name in available_scenarios():
        doc = (_REGISTRY[name].__doc__ or "").strip().splitlines()
        rows.append((name, doc[0] if doc else ""))
    return rows
