"""Trace-driven and cross-traffic scenario presets.

Two presets exercise the ingestion and background-traffic layers this PR
adds (see docs/WORKLOADS.md for the teaching walk-through):

* :func:`trace_replay` — replays the bundled Google-style cluster-trace
  sample (``src/repro/scenarios/data/google_cluster_sample.csv``) on a
  single heterogeneous cluster. Task types come from quantile-binning the
  trace's ``cpu_request`` column against the EET matrix, deadlines are
  synthesised from per-type relative deadlines, and the whole pipeline is
  a pure function of the scenario seed — the replay is golden-pinned.
* :func:`diurnal_wan` — the contended two-edges-one-cloud federation with
  *background cross-traffic* on the uplinks: edge_a's FIFO pipe breathes
  with a diurnal sinusoid, edge_b's PS pipe suffers bursty MMPP squeezes.
  Offload decisions that look safe at the nominal bandwidth meet residual
  capacity instead.
"""

from __future__ import annotations

import numpy as np

from ..core.config import Scenario
from ..federation.spec import ClusterSpec, FederationSpec
from ..machines.eet import EETMatrix
from ..machines.power import PowerProfile
from ..net.crosstraffic import DiurnalTraffic, MmppTraffic
from ..net.topology import InterClusterTopology
from ..tasks.task_type import TaskType
from ..tasks.trace_io import TraceSpec
from .registry import register_scenario

__all__ = ["trace_replay", "diurnal_wan"]

#: The bundled cluster-trace sample every trace-layer doctest/preset uses.
SAMPLE_TRACE = "data:google_cluster_sample.csv"


@register_scenario
def trace_replay(
    *,
    scheduler: str = "MECT",
    seed: int = 61,
    sample: float = 1.0,
    max_tasks: int | None = None,
    time_scale: float = 1.0,
    slack_factor: float = 1.0,
) -> Scenario:
    """Replay of the bundled Google-style cluster trace on one cluster.

    The trace has no task-type or deadline columns — the realistic case —
    so the :class:`~repro.tasks.trace_io.TraceSpec` quantile-bins the
    ``cpu_request`` column into the EET's three task types (lightest type
    takes the smallest requests) and synthesises ``deadline = arrival +
    slack_factor * relative_deadline``. ``sample`` < 1 thins the trace
    deterministically under the scenario seed; ``time_scale`` < 1
    compresses the ~460 s arrival span to raise pressure.
    """
    task_types = [
        TaskType("light", 0, relative_deadline=30.0),
        TaskType("standard", 1, relative_deadline=60.0),
        TaskType("heavy", 2, relative_deadline=120.0),
    ]
    eet = EETMatrix(
        np.array(
            [
                # CPU    GPU
                [4.0, 3.0],     # light
                [12.0, 5.0],    # standard
                [30.0, 9.0],    # heavy
            ]
        ),
        task_types,
        ["CPU", "GPU"],
    )
    return Scenario(
        eet=eet,
        machine_counts={"CPU": 4, "GPU": 2},
        scheduler=scheduler,
        trace=TraceSpec(
            path=SAMPLE_TRACE,
            columns={"task_id": "job_id", "arrival_time": "submit_time_us"},
            time_unit=1e-6,
            time_scale=time_scale,
            bin_column="cpu_request",
            slack_factor=slack_factor,
            sample=sample,
            max_tasks=max_tasks,
        ),
        power_profiles={
            "CPU": PowerProfile(idle_watts=10.0, busy_watts=95.0),
            "GPU": PowerProfile(idle_watts=30.0, busy_watts=250.0),
        },
        seed=seed,
        name="trace_replay",
    )


@register_scenario
def diurnal_wan(
    *,
    scheduler: str = "MECT",
    gateway: str = "EET_AWARE_REMOTE",
    gateway_params: dict | None = None,
    intensity: str | float = 1.2,
    duration: float = 300.0,
    seed: int = 67,
    uplink_bandwidth: float = 8.0,
    energy_per_mb: float = 0.35,
    period: float = 120.0,
) -> Scenario:
    """Edge-cloud offloading over WAN uplinks with background cross-traffic.

    The ``fed_congested`` shape — two edge sites shipping large payloads
    into one cloud over narrow energy-metered uplinks — but the pipes are
    no longer the simulation's alone: edge_a's FIFO uplink carries a
    diurnal sinusoid (utilisation swinging 0.05..0.75 with period
    ``period``), and edge_b's PS uplink suffers bursty MMPP cross-traffic
    (long quiet spells at 10% utilisation, squeezes at 75%). Transfers
    serve at the residual capacity ``bandwidth * (1 - u(t))``, so the same
    offload is cheap at night and ruinous at the peak — the signal a
    congestion-aware gateway has to read.
    """
    task_types = [
        TaskType("video_analytics", 0, data_in=8.0),
        TaskType("sensor_fusion", 1, data_in=0.5),
        TaskType("model_update", 2, data_in=20.0),
    ]
    eet = EETMatrix(
        np.array(
            [
                # edge_cpu  cloud_cpu  cloud_gpu
                [25.0, 8.0, 2.5],    # video analytics
                [6.0, 3.0, 2.0],     # sensor fusion
                [40.0, 12.0, 4.0],   # model update
            ]
        ),
        task_types,
        ["edge_cpu", "cloud_cpu", "cloud_gpu"],
    )
    topology = InterClusterTopology()
    topology.set_link(
        "edge_a", "cloud", 0.05, uplink_bandwidth,
        contention="fifo", energy_per_mb=energy_per_mb,
        idle_watts=2.0, busy_watts=12.0,
        cross_traffic=DiurnalTraffic(
            period=period, base=0.4, amplitude=0.35
        ),
    )
    topology.set_link(
        "edge_b", "cloud", 0.05, uplink_bandwidth,
        contention="ps", energy_per_mb=energy_per_mb,
        idle_watts=2.0, busy_watts=12.0,
        cross_traffic=MmppTraffic(
            quiet=0.1, burst=0.75, mean_quiet=40.0, mean_burst=12.0
        ),
    )
    topology.set_link(
        "edge_a", "edge_b", 0.02, 40.0,
        contention="ps", energy_per_mb=energy_per_mb / 2,
    )
    federation = FederationSpec(
        clusters=[
            ClusterSpec(
                name="edge_a",
                machine_counts={"edge_cpu": 3},
                weight=1.0,
            ),
            ClusterSpec(
                name="edge_b",
                machine_counts={"edge_cpu": 3},
                weight=1.0,
            ),
            ClusterSpec(
                name="cloud",
                machine_counts={"cloud_cpu": 4, "cloud_gpu": 2},
                weight=0.0,  # offloading target only
            ),
        ],
        gateway=gateway,
        gateway_params=dict(gateway_params or {}),
        topology=topology,
    )
    return Scenario(
        eet=eet,
        machine_counts={"edge_cpu": 6, "cloud_cpu": 4, "cloud_gpu": 2},
        scheduler=scheduler,
        generator={
            "duration": duration,
            "intensity": intensity,
            "specs": [
                {"name": "video_analytics", "share": 1.0, "slack_factor": 4.0},
                {"name": "sensor_fusion", "share": 2.0, "slack_factor": 5.0},
                {"name": "model_update", "share": 0.5, "slack_factor": 6.0},
            ],
        },
        power_profiles={
            "edge_cpu": PowerProfile(idle_watts=3.0, busy_watts=9.0),
            "cloud_cpu": PowerProfile(idle_watts=40.0, busy_watts=120.0),
            "cloud_gpu": PowerProfile(idle_watts=35.0, busy_watts=260.0),
        },
        federation=federation,
        seed=seed,
        name="diurnal_wan",
    )
