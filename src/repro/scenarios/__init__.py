"""Named scenario presets plus the registry they plug into.

Import surface is backward compatible with the old ``repro.scenarios``
module — ``satellite_imaging``, ``edge_ai`` and ``classroom_homogeneous``
are importable directly — and adds the registry API used by campaign specs
and the ``e2c-sim scenarios`` / ``e2c-sim sweep`` subcommands:

* :func:`register_scenario` — decorator registering a factory by name,
* :func:`build_scenario` — build a preset by name with keyword overrides,
* :func:`available_scenarios` — sorted names of all registered presets,
* :func:`scenario_summaries` — (name, one-line description) rows for every
  preset; the single source of truth behind ``e2c-sim scenarios`` and the
  doctest-pinned preset table in the README.
"""

from .federated import (
    edge_cloud,
    fed_adaptive,
    fed_congested,
    fed_heavytail,
    fed_rebalance,
    geo_3site,
)
from .hierarchical import hier_3region, hier_deep
from .presets import classroom_homogeneous, edge_ai, satellite_imaging
from .registry import (
    available_scenarios,
    build_scenario,
    register_scenario,
    scenario_factory,
    scenario_summaries,
)
from .scale import scale_campus, scale_datacenter, scale_heavytail
from .traces import diurnal_wan, trace_replay

__all__ = [
    "satellite_imaging",
    "edge_ai",
    "classroom_homogeneous",
    "scale_campus",
    "scale_datacenter",
    "scale_heavytail",
    "edge_cloud",
    "geo_3site",
    "fed_heavytail",
    "fed_congested",
    "fed_rebalance",
    "fed_adaptive",
    "trace_replay",
    "diurnal_wan",
    "hier_3region",
    "hier_deep",
    "register_scenario",
    "scenario_factory",
    "build_scenario",
    "available_scenarios",
    "scenario_summaries",
]
