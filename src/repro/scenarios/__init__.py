"""Named scenario presets plus the registry they plug into.

Import surface is backward compatible with the old ``repro.scenarios``
module — ``satellite_imaging``, ``edge_ai`` and ``classroom_homogeneous``
are importable directly — and adds the registry API used by campaign specs
and the ``e2c-sim scenarios`` / ``e2c-sim sweep`` subcommands:

* :func:`register_scenario` — decorator registering a factory by name,
* :func:`build_scenario` — build a preset by name with keyword overrides,
* :func:`available_scenarios` — sorted names of all registered presets.
"""

from .federated import edge_cloud, fed_heavytail, geo_3site
from .presets import classroom_homogeneous, edge_ai, satellite_imaging
from .registry import (
    available_scenarios,
    build_scenario,
    register_scenario,
    scenario_factory,
)
from .scale import scale_campus, scale_datacenter, scale_heavytail

__all__ = [
    "satellite_imaging",
    "edge_ai",
    "classroom_homogeneous",
    "scale_campus",
    "scale_datacenter",
    "scale_heavytail",
    "edge_cloud",
    "geo_3site",
    "fed_heavytail",
    "register_scenario",
    "scenario_factory",
    "build_scenario",
    "available_scenarios",
]
