"""Federated scenario presets — multi-cluster systems with WAN offloading.

The paper's Fig. 1 is one scheduler over one machine pool; its future work
names "various communication paradigms" and larger heterogeneous
deployments. These presets exercise the federation layer
(:mod:`repro.federation`) on the three canonical multi-site shapes of the
heterogeneous-computing literature:

* :func:`edge_cloud` — the 2-site offloading classic: a small, battery-class
  edge cluster where all tasks arrive, and a remote cloud with far faster
  machines across a WAN link. The gateway decides keep-vs-offload per task.
* :func:`geo_3site` — three geo-distributed sites with asymmetric WAN
  latencies and their own machine mixes; arrivals split across all sites.
* :func:`fed_heavytail` — two sites under heavy-tailed (Pareto-II)
  flash-crowd arrivals: bursts overwhelm the origin site and the gateway's
  spill decisions dominate the outcome.

All factories accept ``scheduler`` (the local, per-cluster policy),
``gateway`` (the inter-cluster offloading policy), ``intensity``,
``duration`` and ``seed`` so campaign grids can sweep offloading x local
policy combinations like any other preset.
"""

from __future__ import annotations

import numpy as np

from ..core.config import Scenario
from ..federation.spec import ClusterSpec, FederationSpec, MigrationSpec
from ..machines.eet import EETMatrix
from ..machines.eet_generation import generate_eet_cvb
from ..machines.power import PowerProfile
from ..net.topology import InterClusterTopology
from ..tasks.task_type import TaskType
from .registry import register_scenario

__all__ = [
    "edge_cloud",
    "geo_3site",
    "fed_heavytail",
    "fed_congested",
    "fed_rebalance",
    "fed_adaptive",
]


@register_scenario
def edge_cloud(
    *,
    scheduler: str = "MECT",
    gateway: str = "EET_AWARE_REMOTE",
    gateway_params: dict | None = None,
    intensity: str | float = "medium",
    duration: float = 400.0,
    seed: int = 19,
    wan_latency: float = 0.08,
    wan_bandwidth: float = 25.0,
    wan_contention: str = "none",
    wan_energy_per_mb: float = 0.0,
) -> Scenario:
    """Edge-cloud offloading: 4 edge CPUs vs a 6-machine cloud over a WAN.

    Every task arrives at the edge; the gateway chooses between the local,
    slow-but-free edge CPUs and the fast cloud machines that cost a WAN
    round of ``wan_latency + data_in / wan_bandwidth`` seconds. Video
    analytics (8 MB payloads) and model updates (20 MB) make that trade-off
    non-trivial, sensor fusion (0.5 MB) is cheap to ship but also cheap to
    run locally.

    The contended-WAN variant: pass ``wan_contention="fifo"`` (or ``"ps"``)
    to make concurrent offloads queue for the link instead of overlapping
    for free, and ``wan_energy_per_mb`` to charge each shipped megabyte
    (see :mod:`repro.net.wan` and the ``fed_congested`` preset).
    """
    task_types = [
        TaskType("video_analytics", 0, data_in=8.0),
        TaskType("sensor_fusion", 1, data_in=0.5),
        TaskType("model_update", 2, data_in=20.0),
    ]
    eet = EETMatrix(
        np.array(
            [
                # edge_cpu  cloud_cpu  cloud_gpu
                [25.0, 8.0, 2.5],    # video analytics
                [6.0, 3.0, 2.0],     # sensor fusion
                [40.0, 12.0, 4.0],   # model update
            ]
        ),
        task_types,
        ["edge_cpu", "cloud_cpu", "cloud_gpu"],
    )
    federation = FederationSpec(
        clusters=[
            ClusterSpec(
                name="edge",
                machine_counts={"edge_cpu": 4},
                weight=1.0,
            ),
            ClusterSpec(
                name="cloud",
                machine_counts={"cloud_cpu": 4, "cloud_gpu": 2},
                weight=0.0,  # tasks never *arrive* here; offloading only
            ),
        ],
        gateway=gateway,
        gateway_params=dict(gateway_params or {}),
        topology=InterClusterTopology.uniform(
            ["edge", "cloud"],
            latency=wan_latency,
            bandwidth=wan_bandwidth,
            contention=wan_contention,
            energy_per_mb=wan_energy_per_mb,
        ),
    )
    return Scenario(
        eet=eet,
        machine_counts={"edge_cpu": 4, "cloud_cpu": 4, "cloud_gpu": 2},
        scheduler=scheduler,
        generator={
            "duration": duration,
            "intensity": intensity,
            "specs": [
                {"name": "video_analytics", "share": 1.0, "slack_factor": 4.0},
                {"name": "sensor_fusion", "share": 2.0, "slack_factor": 5.0},
                {"name": "model_update", "share": 0.5, "slack_factor": 6.0},
            ],
        },
        power_profiles={
            "edge_cpu": PowerProfile(idle_watts=3.0, busy_watts=9.0),
            "cloud_cpu": PowerProfile(idle_watts=40.0, busy_watts=120.0),
            "cloud_gpu": PowerProfile(idle_watts=35.0, busy_watts=260.0),
        },
        federation=federation,
        seed=seed,
        name="edge_cloud",
    )


@register_scenario
def geo_3site(
    *,
    scheduler: str = "MECT",
    gateway: str = "LEAST_LOADED",
    gateway_params: dict | None = None,
    intensity: str | float = "medium",
    duration: float = 600.0,
    seed: int = 23,
    wan_contention: str = "none",
) -> Scenario:
    """Three geo-distributed sites with asymmetric WAN latencies.

    Six CVB-generated machine types are split two per site (a big/little
    pair each); arrivals originate at all three sites in a 3:2:1 ratio.
    The WAN triangle is asymmetric — the long haul costs 3x the short hop —
    so pure load balancing and locality make measurably different choices.
    ``wan_contention`` applies one queueing discipline (``"fifo"``/``"ps"``)
    to all three links of the triangle.
    """
    eet = generate_eet_cvb(
        5,
        6,
        mean_task=14.0,
        v_task=0.4,
        v_machine=0.6,
        seed=29,
        machine_type_names=[
            "ams_big", "ams_little",
            "nyc_big", "nyc_little",
            "tyo_big", "tyo_little",
        ],
    )
    topology = InterClusterTopology()
    topology.set_link("ams", "nyc", 0.04, 60.0, contention=wan_contention)
    topology.set_link("nyc", "tyo", 0.09, 40.0, contention=wan_contention)
    topology.set_link("ams", "tyo", 0.12, 40.0, contention=wan_contention)
    federation = FederationSpec(
        clusters=[
            ClusterSpec(
                name="ams",
                machine_counts={"ams_big": 2, "ams_little": 4},
                weight=3.0,
            ),
            ClusterSpec(
                name="nyc",
                machine_counts={"nyc_big": 2, "nyc_little": 4},
                weight=2.0,
            ),
            ClusterSpec(
                name="tyo",
                machine_counts={"tyo_big": 2, "tyo_little": 4},
                weight=1.0,
            ),
        ],
        gateway=gateway,
        gateway_params=dict(gateway_params or {}),
        topology=topology,
    )
    return Scenario(
        eet=eet,
        machine_counts={n: (2 if n.endswith("big") else 4) for n in eet.machine_type_names},
        scheduler=scheduler,
        generator={"duration": duration, "intensity": intensity},
        federation=federation,
        seed=seed,
        name="geo_3site",
    )


@register_scenario
def fed_heavytail(
    *,
    scheduler: str = "MECT",
    gateway: str = "LOCALITY_FIRST",
    gateway_params: dict | None = None,
    intensity: str | float = 1.5,
    duration: float = 900.0,
    seed: int = 31,
    shape: float = 1.6,
    machines_per_type: int = 6,
) -> Scenario:
    """Two sites under heavy-tailed (Pareto-II) flash-crowd arrivals.

    The access site takes 70% of arrivals on a quarter of the machines; the
    core site holds the rest behind a 60 ms WAN hop. Lomax inter-arrivals
    (tail index ``shape``; infinite variance for ``shape <= 2``) produce
    long silences punctuated by bursts that saturate the access site — the
    regime where the gateway's spill threshold decides the outcome.
    """
    n_task_types = 4
    n_machine_types = 4
    eet = generate_eet_cvb(
        n_task_types,
        n_machine_types,
        mean_task=12.0,
        v_task=0.4,
        v_machine=0.5,
        seed=37,
        machine_type_names=["access_cpu", "core_a", "core_b", "core_c"],
    )
    from ..tasks.generator import WorkloadGenerator, oversubscription_for_level

    # Calibrate per-type rates exactly like the Poisson generator, then
    # express each as a Pareto process with the same mean rate (the
    # scale_heavytail recipe, federated).
    ratio = oversubscription_for_level(intensity)
    calibrator = WorkloadGenerator(
        eet, machine_counts=[machines_per_type] * n_machine_types
    )
    rates = calibrator.rates_for_oversubscription(ratio)
    specs = [
        {
            "name": name,
            "arrival": {
                "kind": "pareto",
                "shape": shape,
                "scale": (shape - 1.0) / rate,
            },
            "slack_factor": 5.0,
        }
        for name, rate in rates.items()
    ]
    gparams = dict(gateway_params or {})
    federation = FederationSpec(
        clusters=[
            ClusterSpec(
                name="access",
                machine_counts={"access_cpu": machines_per_type},
                weight=0.7,
            ),
            ClusterSpec(
                name="core",
                machine_counts={
                    "core_a": machines_per_type,
                    "core_b": machines_per_type,
                    "core_c": machines_per_type,
                },
                weight=0.3,
            ),
        ],
        gateway=gateway,
        gateway_params=gparams,
        topology=InterClusterTopology.uniform(
            ["access", "core"], latency=0.06, bandwidth=0.0
        ),
    )
    return Scenario(
        eet=eet,
        machine_counts={n: machines_per_type for n in eet.machine_type_names},
        scheduler=scheduler,
        generator={"duration": duration, "specs": specs},
        federation=federation,
        seed=seed,
        name="fed_heavytail",
    )


@register_scenario
def fed_rebalance(
    *,
    scheduler: str = "MM",
    gateway: str = "LOCALITY_FIRST",
    gateway_params: dict | None = None,
    migration: str | dict | MigrationSpec | None = "LONGEST_WAIT",
    migration_interval: float = 3.0,
    intensity: str | float = 1.3,
    duration: float = 300.0,
    seed: int = 53,
    uplink_bandwidth: float = 10.0,
    energy_per_mb: float = 0.3,
) -> Scenario:
    """Mid-queue migration over a contended WAN: a sticky gateway, relieved.

    Every task arrives at a small, slow *access* site whose batch policy
    (MM, bounded machine queues) lets the batch queue pile up under the
    1.3x-oversubscribed load; the *relief* site's fast machines idle across
    a single narrow FIFO uplink. The gateway is deliberately sticky
    (LOCALITY_FIRST with a high threshold): it routes each task exactly
    once, at arrival, and by the time the access queue saturates those
    decisions are stale — the regime mid-queue migration exists for. A
    periodic rebalance pass (eviction policy ``migration``, default
    LONGEST_WAIT) re-homes queued tasks over the same energy-metered,
    contention-modelled link any gateway offload would use — one pipe,
    whoever is sending — and under the default cadence the narrow uplink
    saturates, so some migrations expire in flight (the FIFO queue's wait
    eats their slack): the LONGEST_WAIT-vs-DEADLINE_SLACK comparison in
    docs/FEDERATION.md §6 hinges on exactly that waste.

    Pass ``migration=None`` to run the identical scenario without the
    rebalancer (the control arm of the teaching comparison), or a
    :class:`~repro.federation.spec.MigrationSpec`-shaped dict / policy name
    to sweep eviction disciplines.
    """
    task_types = [
        TaskType("video_analytics", 0, data_in=8.0),
        TaskType("sensor_fusion", 1, data_in=0.5),
        TaskType("model_update", 2, data_in=20.0),
    ]
    eet = EETMatrix(
        np.array(
            [
                # access_cpu  relief_cpu  relief_gpu
                [25.0, 8.0, 2.5],    # video analytics
                [6.0, 3.0, 2.0],     # sensor fusion
                [40.0, 12.0, 4.0],   # model update
            ]
        ),
        task_types,
        ["access_cpu", "relief_cpu", "relief_gpu"],
    )
    if migration is None or isinstance(migration, MigrationSpec):
        migration_spec = migration
    elif isinstance(migration, str):
        # An aggressive cadence on purpose: the access site oversubscribes
        # its four CPUs ~1.3x, so relief must move ~2-3 tasks/s to keep up.
        migration_spec = MigrationSpec(
            policy=migration,
            interval=migration_interval,
            pressure_gap=0.5,
            batch_max=8,
        )
    else:
        migration_spec = MigrationSpec.from_dict(migration)
    topology = InterClusterTopology()
    topology.set_link(
        "access", "relief", 0.05, uplink_bandwidth,
        contention="fifo", energy_per_mb=energy_per_mb,
        idle_watts=2.0, busy_watts=12.0,
    )
    gparams = dict(gateway_params or {})
    if gateway.upper().replace("-", "_") == "LOCALITY_FIRST":
        # Sticky by default: the gateway only spills once pressure hits 16
        # outstanding tasks per machine — far past saturation — so relief
        # comes from migration, not arrival routing. (With the default
        # rebalancer active the queue never gets that deep, so arrival
        # offloads stay at zero.) Override via gateway_params.
        gparams.setdefault("threshold", 16.0)
    federation = FederationSpec(
        clusters=[
            ClusterSpec(
                name="access",
                machine_counts={"access_cpu": 4},
                weight=1.0,
            ),
            ClusterSpec(
                name="relief",
                machine_counts={"relief_cpu": 4, "relief_gpu": 2},
                weight=0.0,  # migration/offload target only
            ),
        ],
        gateway=gateway,
        gateway_params=gparams,
        topology=topology,
        migration=migration_spec,
    )
    return Scenario(
        eet=eet,
        machine_counts={"access_cpu": 4, "relief_cpu": 4, "relief_gpu": 2},
        scheduler=scheduler,
        queue_capacity=1.0,
        generator={
            "duration": duration,
            "intensity": intensity,
            "specs": [
                {"name": "video_analytics", "share": 1.0, "slack_factor": 4.0},
                {"name": "sensor_fusion", "share": 2.0, "slack_factor": 5.0},
                {"name": "model_update", "share": 0.5, "slack_factor": 6.0},
            ],
        },
        power_profiles={
            "access_cpu": PowerProfile(idle_watts=3.0, busy_watts=9.0),
            "relief_cpu": PowerProfile(idle_watts=40.0, busy_watts=120.0),
            "relief_gpu": PowerProfile(idle_watts=35.0, busy_watts=260.0),
        },
        federation=federation,
        seed=seed,
        name="fed_rebalance",
    )


@register_scenario
def fed_adaptive(
    *,
    scheduler: str = "MM",
    gateway: str = "ADAPTIVE",
    gateway_params: dict | None = None,
    migration: str | dict | MigrationSpec | None = "LONGEST_WAIT",
    migration_interval: float = 3.0,
    high_watermark: float = 2.5,
    low_watermark: float = 1.0,
    intensity: str | float = 1.3,
    duration: float = 400.0,
    seed: int = 61,
    uplink_bandwidth: float = 10.0,
    energy_per_mb: float = 0.3,
) -> Scenario:
    """The learning gateway's home turf: bandit routing + hysteresis relief.

    The same two-site shape as :func:`fed_rebalance` — a slow,
    oversubscribed *access* site, a fast *relief* site behind one narrow,
    energy-metered FIFO uplink — but wired for the adaptive policy layer:
    the default gateway is the UCB bandit (:class:`~repro.scheduling.
    federation.adaptive.AdaptiveGateway`), and the rebalancer runs the
    watermarked hysteresis trigger (shedding starts above
    ``high_watermark``, stops at ``low_watermark``) instead of a single
    fixed threshold. Batch scheduling (MM, tight machine queues) makes the
    analytic gateways' completion estimates blind to the batch-queue
    backlog — exactly the information the bandit recovers from observed
    deadline outcomes, which is why it out-completes EET_AWARE_REMOTE here
    (the golden suite pins that comparison).

    Sweep ``gateway``/``migration`` like any other preset; the tournament
    harness (``e2c-sim tournament``) uses exactly those two knobs.
    """
    task_types = [
        TaskType("video_analytics", 0, data_in=8.0),
        TaskType("sensor_fusion", 1, data_in=0.5),
        TaskType("model_update", 2, data_in=20.0),
    ]
    eet = EETMatrix(
        np.array(
            [
                # access_cpu  relief_cpu  relief_gpu
                [25.0, 8.0, 2.5],    # video analytics
                [6.0, 3.0, 2.0],     # sensor fusion
                [40.0, 12.0, 4.0],   # model update
            ]
        ),
        task_types,
        ["access_cpu", "relief_cpu", "relief_gpu"],
    )
    if migration is None or isinstance(migration, MigrationSpec):
        migration_spec = migration
    elif isinstance(migration, str):
        migration_spec = MigrationSpec(
            policy=migration,
            interval=migration_interval,
            pressure_gap=0.5,
            batch_max=8,
            high_watermark=high_watermark,
            low_watermark=low_watermark,
        )
    else:
        migration_spec = MigrationSpec.from_dict(migration)
    topology = InterClusterTopology()
    topology.set_link(
        "access", "relief", 0.05, uplink_bandwidth,
        contention="fifo", energy_per_mb=energy_per_mb,
        idle_watts=2.0, busy_watts=12.0,
    )
    gparams = dict(gateway_params or {})
    canonical_gateway = gateway.upper().replace("-", "_")
    if canonical_gateway in ("ADAPTIVE", "BANDIT"):
        # UCB explores harder than the epsilon default and wins this
        # scenario decisively; override via gateway_params.
        gparams.setdefault("strategy", "ucb")
        gparams.setdefault("ucb_c", 1.0)
    elif canonical_gateway in ("LOCALITY_FIRST", "LOCALITY"):
        # Same stickiness as fed_rebalance: relief via migration, not
        # arrival routing.
        gparams.setdefault("threshold", 16.0)
    federation = FederationSpec(
        clusters=[
            ClusterSpec(
                name="access",
                machine_counts={"access_cpu": 4},
                weight=1.0,
            ),
            ClusterSpec(
                name="relief",
                machine_counts={"relief_cpu": 4, "relief_gpu": 2},
                weight=0.0,  # migration/offload target only
            ),
        ],
        gateway=gateway,
        gateway_params=gparams,
        topology=topology,
        migration=migration_spec,
    )
    return Scenario(
        eet=eet,
        machine_counts={"access_cpu": 4, "relief_cpu": 4, "relief_gpu": 2},
        scheduler=scheduler,
        queue_capacity=1.0,
        generator={
            "duration": duration,
            "intensity": intensity,
            "specs": [
                {"name": "video_analytics", "share": 1.0, "slack_factor": 4.0},
                {"name": "sensor_fusion", "share": 2.0, "slack_factor": 5.0},
                {"name": "model_update", "share": 0.5, "slack_factor": 6.0},
            ],
        },
        power_profiles={
            "access_cpu": PowerProfile(idle_watts=3.0, busy_watts=9.0),
            "relief_cpu": PowerProfile(idle_watts=40.0, busy_watts=120.0),
            "relief_gpu": PowerProfile(idle_watts=35.0, busy_watts=260.0),
        },
        federation=federation,
        seed=seed,
        name="fed_adaptive",
    )


@register_scenario
def fed_congested(
    *,
    scheduler: str = "MECT",
    gateway: str = "EET_AWARE_REMOTE",
    gateway_params: dict | None = None,
    intensity: str | float = 1.4,
    duration: float = 300.0,
    seed: int = 43,
    uplink_bandwidth: float = 8.0,
    energy_per_mb: float = 0.35,
) -> Scenario:
    """Two edge sites offloading into one cloud over *contended* WAN links.

    The scenario the WAN-as-queueing-resource model exists for: both edge
    sites ship large payloads toward the same cloud, but each uplink is a
    narrow pipe — edge_a's runs FIFO (transfers serialise, latecomers
    wait), edge_b's runs processor sharing (everyone crawls together) — so
    offloading decisions that look free under the overlap model pile up
    real queueing delay here. Every link also carries an energy price
    (``energy_per_mb`` J/MB plus idle/active port power), making the
    edge-vs-cloud ``energy_per_completed_task`` split non-trivial: the
    cloud runs tasks faster and cheaper per joule, but only after paying to
    ship the payload. The default congestion-aware EET_AWARE_REMOTE gateway
    reads the link backlog and keeps traffic home once the pipes fill.
    """
    task_types = [
        TaskType("video_analytics", 0, data_in=8.0),
        TaskType("sensor_fusion", 1, data_in=0.5),
        TaskType("model_update", 2, data_in=20.0),
    ]
    eet = EETMatrix(
        np.array(
            [
                # edge_cpu  cloud_cpu  cloud_gpu
                [25.0, 8.0, 2.5],    # video analytics
                [6.0, 3.0, 2.0],     # sensor fusion
                [40.0, 12.0, 4.0],   # model update
            ]
        ),
        task_types,
        ["edge_cpu", "cloud_cpu", "cloud_gpu"],
    )
    topology = InterClusterTopology()
    topology.set_link(
        "edge_a", "cloud", 0.05, uplink_bandwidth,
        contention="fifo", energy_per_mb=energy_per_mb,
        idle_watts=2.0, busy_watts=12.0,
    )
    topology.set_link(
        "edge_b", "cloud", 0.05, uplink_bandwidth,
        contention="ps", energy_per_mb=energy_per_mb,
        idle_watts=2.0, busy_watts=12.0,
    )
    topology.set_link(
        "edge_a", "edge_b", 0.02, 40.0,
        contention="ps", energy_per_mb=energy_per_mb / 2,
    )
    federation = FederationSpec(
        clusters=[
            ClusterSpec(
                name="edge_a",
                machine_counts={"edge_cpu": 3},
                weight=1.0,
            ),
            ClusterSpec(
                name="edge_b",
                machine_counts={"edge_cpu": 3},
                weight=1.0,
            ),
            ClusterSpec(
                name="cloud",
                machine_counts={"cloud_cpu": 4, "cloud_gpu": 2},
                weight=0.0,  # offloading target only
            ),
        ],
        gateway=gateway,
        gateway_params=dict(gateway_params or {}),
        topology=topology,
    )
    return Scenario(
        eet=eet,
        machine_counts={"edge_cpu": 6, "cloud_cpu": 4, "cloud_gpu": 2},
        scheduler=scheduler,
        generator={
            "duration": duration,
            "intensity": intensity,
            "specs": [
                {"name": "video_analytics", "share": 1.0, "slack_factor": 4.0},
                {"name": "sensor_fusion", "share": 2.0, "slack_factor": 5.0},
                {"name": "model_update", "share": 0.5, "slack_factor": 6.0},
            ],
        },
        power_profiles={
            "edge_cpu": PowerProfile(idle_watts=3.0, busy_watts=9.0),
            "cloud_cpu": PowerProfile(idle_watts=40.0, busy_watts=120.0),
            "cloud_gpu": PowerProfile(idle_watts=35.0, busy_watts=260.0),
        },
        federation=federation,
        seed=seed,
        name="fed_congested",
    )
