"""Scale-tier scenario presets — hundreds of machines, tens of thousands of tasks.

The classroom presets (:mod:`repro.scenarios.presets`) stay at the paper's
four-machine scale; this tier exists so the engine's performance headroom is
exercised by *registered, reproducible workloads* rather than only by the
benchmark harness. Three presets, in increasing order of stress:

* :func:`scale_campus` — a campus cluster: 8 machine types × 12 machines
  (96 machines), Poisson arrivals, ~10k tasks at medium intensity.
* :func:`scale_datacenter` — a datacenter population: 12 machine types × 24
  machines (288 machines), ~30k tasks at medium intensity.
* :func:`scale_heavytail` — 128 machines under heavy-tailed (Pareto-II)
  arrivals: dense flash-crowd bursts separated by long silences, the regime
  where queue depths — and scheduling-pass sizes — explode.

All EETs come from the CVB generator (Ali et al. 2000), so heterogeneity is
controlled by two coefficients of variation instead of hand-written tables.
Factories accept the standard ``scheduler`` / ``intensity`` / ``duration`` /
``seed`` keywords so campaign grids and ``e2c-sim bench`` can sweep them.
"""

from __future__ import annotations

from ..core.config import Scenario
from ..machines.eet_generation import generate_eet_cvb
from .registry import register_scenario

__all__ = [
    "scale_campus",
    "scale_datacenter",
    "scale_heavytail",
    "scale_federation",
]


def _cvb_scenario(
    *,
    name: str,
    n_task_types: int,
    n_machine_types: int,
    machines_per_type: int,
    scheduler: str,
    intensity: str | float,
    duration: float,
    seed: int,
    eet_seed: int,
    mean_task: float,
    specs: list[dict] | None = None,
    queue_capacity: float | None = None,
) -> Scenario:
    eet = generate_eet_cvb(
        n_task_types,
        n_machine_types,
        mean_task=mean_task,
        v_task=0.4,
        v_machine=0.5,
        seed=eet_seed,
    )
    generator: dict = {"duration": duration, "intensity": intensity}
    if specs is not None:
        generator["specs"] = specs
    kwargs: dict = {}
    if queue_capacity is not None:
        kwargs["queue_capacity"] = queue_capacity
    return Scenario(
        eet=eet,
        machine_counts={n: machines_per_type for n in eet.machine_type_names},
        scheduler=scheduler,
        generator=generator,
        seed=seed,
        name=name,
        **kwargs,
    )


@register_scenario
def scale_campus(
    *,
    scheduler: str = "MECT",
    intensity: str | float = "medium",
    duration: float = 1200.0,
    seed: int = 101,
    machines_per_type: int = 12,
) -> Scenario:
    """Campus cluster: 96 machines (8 types × 12), ~10k Poisson tasks."""
    return _cvb_scenario(
        name="scale_campus",
        n_task_types=6,
        n_machine_types=8,
        machines_per_type=machines_per_type,
        scheduler=scheduler,
        intensity=intensity,
        duration=duration,
        seed=seed,
        eet_seed=17,
        mean_task=12.0,
    )


@register_scenario
def scale_datacenter(
    *,
    scheduler: str = "MECT",
    intensity: str | float = "medium",
    duration: float = 1500.0,
    seed: int = 103,
    machines_per_type: int = 24,
) -> Scenario:
    """Datacenter population: 288 machines (12 types × 24), ~30k tasks."""
    return _cvb_scenario(
        name="scale_datacenter",
        n_task_types=8,
        n_machine_types=12,
        machines_per_type=machines_per_type,
        scheduler=scheduler,
        intensity=intensity,
        duration=duration,
        seed=seed,
        eet_seed=19,
        mean_task=15.0,
    )


@register_scenario
def scale_heavytail(
    *,
    scheduler: str = "MECT",
    intensity: str | float = 2.0,
    duration: float = 1500.0,
    seed: int = 107,
    machines_per_type: int = 16,
    shape: float = 1.6,
) -> Scenario:
    """128 machines under heavy-tailed (Pareto-II) flash-crowd arrivals.

    Every task type arrives via a Lomax process with tail index ``shape``
    (1 < shape <= 2 has infinite variance): long quiet stretches, then
    bursts that pile tens of tasks into the batch queue at once. The mean
    gap per type is calibrated so total offered load ≈ ``intensity`` ×
    system capacity, mirroring the Poisson presets' oversubscription knob.
    """
    n_task_types = 6
    n_machine_types = 8
    eet = generate_eet_cvb(
        n_task_types,
        n_machine_types,
        mean_task=12.0,
        v_task=0.4,
        v_machine=0.5,
        seed=23,
    )
    from ..tasks.generator import (
        WorkloadGenerator,
        oversubscription_for_level,
    )

    # Calibrate per-type arrival rates exactly like the Poisson generator,
    # then express each as a Pareto process with the same mean rate.
    ratio = oversubscription_for_level(intensity)
    calibrator = WorkloadGenerator(
        eet,
        machine_counts=[machines_per_type] * n_machine_types,
    )
    rates = calibrator.rates_for_oversubscription(ratio)
    specs = [
        {
            "name": name,
            "arrival": {
                "kind": "pareto",
                "shape": shape,
                # mean gap = scale / (shape - 1)  =>  scale = (shape-1)/rate
                "scale": (shape - 1.0) / rate,
            },
            "slack_factor": 5.0,
        }
        for name, rate in rates.items()
    ]
    return Scenario(
        eet=eet,
        machine_counts={n: machines_per_type for n in eet.machine_type_names},
        scheduler=scheduler,
        generator={"duration": duration, "specs": specs},
        seed=seed,
        name="scale_heavytail",
    )


@register_scenario
def scale_federation(
    *,
    scheduler: str = "MM",
    gateway: str = "RANDOM_SPLIT",
    intensity: str | float = "medium",
    duration: float = 300.0,
    seed: int = 109,
    n_clusters: int = 24,
    machines_per_type: int = 8,
    wan_latency: float = 0.35,
    wan_bandwidth: float = 200.0,
) -> Scenario:
    """A geo-distributed federation: 24 sites, 1152 machines, ~30k tasks.

    The scale tier of the federation layer: ``n_clusters`` identical sites
    (6 CVB machine types × ``machines_per_type`` machines each) behind a
    uniform high-latency WAN, with arrivals split evenly across sites and a
    weighted-random gateway scattering each task to a uniformly chosen
    destination — the classic probabilistic load-sharing discipline at the
    scale where it is actually used.

    The defaults are deliberately parallel-friendly *and* honest: the
    random-split gateway is state-blind (routing reads only weights and the
    federation's seeded stream), the 350 ms link latency is the
    conservative lookahead, so windowed shard-parallel execution
    (``ParallelFederatedSimulator`` / ``--parallel-shards``) batches
    hundreds of events per window, and the Min-Min batch mapper keeps the
    per-arrival work shard-side — the regime where worker processes earn
    their keep. The serial engine runs the identical event stream — both
    paths are golden-comparable.
    """
    from ..federation.spec import ClusterSpec, FederationSpec
    from ..net.topology import InterClusterTopology

    n_task_types = 6
    n_machine_types = 6
    eet = generate_eet_cvb(
        n_task_types,
        n_machine_types,
        mean_task=12.0,
        v_task=0.4,
        v_machine=0.5,
        seed=29,
    )
    names = [f"site{i:02d}" for i in range(n_clusters)]
    federation = FederationSpec(
        clusters=[
            ClusterSpec(
                name=name,
                machine_counts={
                    t: machines_per_type for t in eet.machine_type_names
                },
                weight=1.0,
            )
            for name in names
        ],
        gateway=gateway,
        topology=InterClusterTopology.uniform(
            names, latency=wan_latency, bandwidth=wan_bandwidth
        ),
    )
    return Scenario(
        eet=eet,
        # Workload calibration sees the whole federation's machine pool.
        machine_counts={
            t: machines_per_type * n_clusters for t in eet.machine_type_names
        },
        scheduler=scheduler,
        generator={
            "duration": duration,
            "intensity": intensity,
            "specs": [
                {"name": name, "share": 1.0, "slack_factor": 6.0}
                for name in eet.task_type_names
            ],
        },
        federation=federation,
        seed=seed,
        name="scale_federation",
    )
