"""Hierarchical federation presets — multi-level trees with shared uplinks.

The flat federated presets (:mod:`repro.scenarios.federated`) are cliques of
a few sites. These two presets exercise the tree engine
(:mod:`repro.federation.hierarchy`): placement happens level by level
(which region, then which site, then which cluster) and every WAN crossing
hops child↔parent uplinks shared by whole subtrees.

* :func:`hier_3region` — the regular shape: 3 regions × 3 sites × 2
  clusters (18 leaves, 4 levels counting the root). Region uplinks are
  narrow and FIFO-contended, site uplinks comfortable, so the interesting
  congestion is at the *region* level — exactly where flat presets cannot
  put it.
* :func:`hier_deep` — the irregular shape: four levels with leaves at
  mixed depths (a depth-1 cloud hangs directly off the root next to a
  deep edge hierarchy), asymmetric fan-out, and one deliberately skinny
  deep-edge uplink.

Both run the tree-capable ``TREE_PRESSURE`` gateway by default (flat
gateways are refused by the hierarchy engine) and accept the usual
``scheduler`` / ``gateway`` / ``intensity`` / ``duration`` / ``seed``
overrides for campaign grids.
"""

from __future__ import annotations

import numpy as np

from ..core.config import Scenario
from ..federation.spec import ClusterSpec, FederationSpec, RegionSpec
from ..machines.eet import EETMatrix
from ..machines.power import PowerProfile
from ..net.topology import InterClusterTopology, Link
from ..tasks.task_type import TaskType
from .registry import register_scenario

__all__ = ["hier_3region", "hier_deep"]


@register_scenario
def hier_3region(
    *,
    scheduler: str = "MECT",
    gateway: str = "TREE_PRESSURE",
    gateway_params: dict | None = None,
    intensity: str | float = "medium",
    duration: float = 240.0,
    seed: int = 47,
    region_bandwidth: float = 18.0,
    site_bandwidth: float = 60.0,
) -> Scenario:
    """3 regions × 3 sites × 2 clusters: the regular planet-scale tree.

    Eighteen leaf clusters share two machine types (a big/little pair);
    within a region the three sites differ only in machine mix, so the
    gateway's region choice is driven by rolled-up pressure and uplink
    backlog rather than raw speed. Region uplinks
    (``region_bandwidth`` MB/s, FIFO, energy-metered) are ~3× narrower
    than site uplinks — congestion forms at the top of the tree, where a
    busy region back-pressures all nine clusters beneath it.
    """
    task_types = [
        TaskType("inference", 0, data_in=3.0),
        TaskType("ingest", 1, data_in=9.0),
    ]
    eet = EETMatrix(
        np.array(
            [
                # big   little
                [4.0, 9.0],     # inference
                [11.0, 24.0],   # ingest
            ]
        ),
        task_types,
        ["big", "little"],
    )
    regions = []
    for r in ("ap", "eu", "us"):
        sites = []
        for s, counts in (
            ("core", {"big": 2}),
            ("metro", {"big": 1, "little": 1}),
            ("edge", {"little": 2}),
        ):
            sites.append(
                RegionSpec(
                    name=f"{r}-{s}",
                    uplink=Link(0.012, site_bandwidth, contention="fifo"),
                    children=[
                        ClusterSpec(
                            name=f"{r}-{s}-{c}",
                            machine_counts=dict(counts),
                            weight=1.0,
                        )
                        for c in ("a", "b")
                    ],
                )
            )
        regions.append(
            RegionSpec(
                name=r,
                uplink=Link(
                    0.09,
                    region_bandwidth,
                    contention="fifo",
                    energy_per_mb=0.6,
                ),
                children=sites,
            )
        )
    federation = FederationSpec(
        children=regions,
        gateway=gateway,
        gateway_params=dict(gateway_params or {}),
        # Default uplink for any node without an explicit one (none here,
        # but the knob documents where inherited edges come from).
        topology=InterClusterTopology(
            default=Link(0.02, site_bandwidth, contention="fifo")
        ),
    )
    return Scenario(
        eet=eet,
        machine_counts={"big": 18, "little": 18},
        scheduler=scheduler,
        generator={
            "duration": duration,
            "intensity": intensity,
            "specs": [
                {"name": "inference", "share": 3.0, "slack_factor": 5.0},
                {"name": "ingest", "share": 1.0, "slack_factor": 6.0},
            ],
        },
        power_profiles={
            "big": PowerProfile(idle_watts=18.0, busy_watts=95.0),
            "little": PowerProfile(idle_watts=4.0, busy_watts=14.0),
        },
        federation=federation,
        seed=seed,
        name="hier_3region",
    )


@register_scenario
def hier_deep(
    *,
    scheduler: str = "MECT",
    gateway: str = "TREE_PRESSURE",
    gateway_params: dict | None = None,
    intensity: str | float = "medium",
    duration: float = 300.0,
    seed: int = 53,
    deep_bandwidth: float = 6.0,
) -> Scenario:
    """4-level asymmetric tree with leaves at mixed depths.

    One fast cloud cluster hangs directly off the root (depth 1) next to a
    deep edge hierarchy: a region holding a metro site (two clusters,
    depth 3) and a rural site that nests a far-edge micro-site (two
    clusters at depth 4 behind a skinny ``deep_bandwidth`` MB/s uplink).
    All arrivals originate in the edge subtree; shipping work to the cloud
    crosses two or three shared uplinks, so the gateway trades queueing
    at slow edge machines against a WAN path whose *deepest* segment is
    the bottleneck.
    """
    task_types = [
        TaskType("telemetry", 0, data_in=1.0),
        TaskType("batch", 1, data_in=14.0),
    ]
    eet = EETMatrix(
        np.array(
            [
                # cloud  metro  far
                [2.0, 5.0, 12.0],    # telemetry
                [6.0, 16.0, 45.0],   # batch
            ]
        ),
        task_types,
        ["cloud", "metro", "far"],
    )
    federation = FederationSpec(
        children=[
            ClusterSpec(
                name="cloud-0",
                machine_counts={"cloud": 4},
                weight=0.0,  # offload-only; nothing arrives in the cloud
                uplink=Link(0.05, 40.0, contention="fifo", energy_per_mb=0.4),
            ),
            RegionSpec(
                name="edge",
                uplink=Link(0.07, 16.0, contention="fifo", energy_per_mb=0.8),
                children=[
                    RegionSpec(
                        name="metro",
                        uplink=Link(0.015, 30.0, contention="fifo"),
                        children=[
                            ClusterSpec(
                                name="metro-a",
                                machine_counts={"metro": 2},
                                weight=2.0,
                            ),
                            ClusterSpec(
                                name="metro-b",
                                machine_counts={"metro": 2},
                                weight=2.0,
                            ),
                        ],
                    ),
                    RegionSpec(
                        name="rural",
                        uplink=Link(0.04, 10.0, contention="fifo"),
                        children=[
                            RegionSpec(
                                name="far-edge",
                                uplink=Link(
                                    0.02, deep_bandwidth, contention="fifo"
                                ),
                                children=[
                                    ClusterSpec(
                                        name="far-a",
                                        machine_counts={"far": 1},
                                        weight=1.0,
                                    ),
                                    ClusterSpec(
                                        name="far-b",
                                        machine_counts={"far": 1},
                                        weight=1.0,
                                    ),
                                ],
                            ),
                        ],
                    ),
                ],
            ),
        ],
        gateway=gateway,
        gateway_params=dict(gateway_params or {}),
        topology=InterClusterTopology(
            default=Link(0.02, 25.0, contention="fifo")
        ),
    )
    return Scenario(
        eet=eet,
        machine_counts={"cloud": 4, "metro": 4, "far": 2},
        scheduler=scheduler,
        generator={
            "duration": duration,
            "intensity": intensity,
            "specs": [
                {"name": "telemetry", "share": 4.0, "slack_factor": 5.0},
                {"name": "batch", "share": 1.0, "slack_factor": 7.0},
            ],
        },
        power_profiles={
            "cloud": PowerProfile(idle_watts=45.0, busy_watts=150.0),
            "metro": PowerProfile(idle_watts=10.0, busy_watts=35.0),
            "far": PowerProfile(idle_watts=2.5, busy_watts=8.0),
        },
        federation=federation,
        seed=seed,
        name="hier_deep",
    )
