"""Stock scenario presets — ready-made systems for examples, tests and teaching.

Three scenario families the paper's introduction motivates, each registered
in the scenario registry so campaigns (``repro.experiments``) and the CLI can
reference them by name:

* :func:`satellite_imaging` — "a heterogeneous system processing satellite
  images should support task types for object detection, noise removal, and
  image enhancements" (§3), on a CPU/GPU/FPGA mix.
* :func:`edge_ai` — the IoT/edge-AI system of §1 (object detection, face
  recognition, speech recognition on ARM CPUs, an edge GPU and an ASIC), with
  realistic power profiles for energy studies.
* :func:`classroom_homogeneous` — the four identical machines of the
  assignment's homogeneous part.

All return a :class:`~repro.core.config.Scenario` you can re-parameterise via
``with_scheduler`` / ``with_intensity``.
"""

from __future__ import annotations

import numpy as np

from ..core.config import Scenario
from ..machines.eet import EETMatrix
from ..machines.failures import FailureModel
from ..machines.power import PowerProfile
from ..tasks.task_type import TaskType
from .registry import register_scenario

__all__ = ["satellite_imaging", "edge_ai", "classroom_homogeneous"]


@register_scenario
def satellite_imaging(
    *,
    scheduler: str = "MECT",
    intensity: str | float = "medium",
    duration: float = 600.0,
    seed: int = 7,
    mtbf: float | None = None,
    mttr: float = 30.0,
) -> Scenario:
    """Satellite image-processing pipeline on a CPU/GPU/FPGA cluster.

    EETs encode the usual affinities: object detection is far faster on the
    GPU, noise removal vectorises well on the FPGA, enhancement is mildly
    GPU-friendly. Machine counts: 2 CPUs, 1 GPU, 1 FPGA. Pass ``mtbf`` (and
    optionally ``mttr``) to enable the failure-injection extension —
    exponential crash/repair cycles on every machine.
    """
    task_types = [
        TaskType("object_detection", 0),
        TaskType("noise_removal", 1),
        TaskType("image_enhancement", 2),
    ]
    eet = EETMatrix(
        np.array(
            [
                # CPU    GPU   FPGA
                [40.0, 6.0, 18.0],   # object detection
                [14.0, 9.0, 4.0],    # noise removal
                [10.0, 5.0, 8.0],    # image enhancement
            ]
        ),
        task_types,
        ["CPU", "GPU", "FPGA"],
    )
    return Scenario(
        eet=eet,
        machine_counts={"CPU": 2, "GPU": 1, "FPGA": 1},
        scheduler=scheduler,
        queue_capacity=3,
        generator={
            "duration": duration,
            "intensity": intensity,
            "specs": [
                {"name": "object_detection", "share": 1.0, "slack_factor": 4.0},
                {"name": "noise_removal", "share": 2.0, "slack_factor": 5.0},
                {"name": "image_enhancement", "share": 1.5, "slack_factor": 6.0},
            ],
        },
        power_profiles={
            "CPU": PowerProfile(idle_watts=35.0, busy_watts=95.0),
            "GPU": PowerProfile(idle_watts=30.0, busy_watts=250.0),
            "FPGA": PowerProfile(idle_watts=10.0, busy_watts=40.0),
        },
        failure_model=(
            None if mtbf is None else FailureModel(mtbf=mtbf, mttr=mttr)
        ),
        seed=seed,
        name="satellite_imaging",
    )


@register_scenario
def edge_ai(
    *,
    scheduler: str = "FELARE",
    intensity: str | float = "high",
    duration: float = 400.0,
    seed: int = 11,
    with_network: bool = False,
) -> Scenario:
    """Multi-tenant edge-AI services on ARM CPUs + edge GPU + inference ASIC.

    The §1 motivating system: smart applications (object detection, face
    recognition, speech recognition) served at the edge. The ASIC crushes
    face recognition but cannot run speech at all competitively; per-type
    busy-power overrides model the accelerator's efficiency. Optional star
    network with per-link latency/bandwidth exercises the communication
    extension.
    """
    task_types = [
        TaskType("object_detection", 0, data_in=4.0, memory=900.0),
        TaskType("face_recognition", 1, data_in=1.0, memory=600.0),
        TaskType("speech_recognition", 2, data_in=0.5, memory=400.0),
    ]
    eet = EETMatrix(
        np.array(
            [
                # ARM    eGPU   ASIC
                [30.0, 5.0, 8.0],     # object detection
                [20.0, 4.0, 1.5],     # face recognition
                [12.0, 6.0, 25.0],    # speech recognition (ASIC mismatch)
            ]
        ),
        task_types,
        ["ARM", "eGPU", "ASIC"],
    )
    return Scenario(
        eet=eet,
        machine_counts={"ARM": 2, "eGPU": 1, "ASIC": 1},
        scheduler=scheduler,
        queue_capacity=2,
        generator={
            "duration": duration,
            "intensity": intensity,
            "specs": [
                {"name": "object_detection", "share": 1.0, "slack_factor": 3.0},
                {"name": "face_recognition", "share": 1.0, "slack_factor": 3.0},
                {"name": "speech_recognition", "share": 1.0, "slack_factor": 3.0},
            ],
        },
        power_profiles={
            "ARM": PowerProfile(idle_watts=2.0, busy_watts=6.0),
            "eGPU": PowerProfile(idle_watts=10.0, busy_watts=30.0),
            "ASIC": PowerProfile(
                idle_watts=1.0,
                busy_watts=8.0,
                busy_watts_by_type={"face_recognition": 3.0},
            ),
        },
        memory_capacities={"ARM": 2000.0, "eGPU": 4000.0, "ASIC": 1000.0},
        network=(
            {"ARM": (0.05, 100.0), "eGPU": (0.02, 400.0), "ASIC": (0.02, 400.0)}
            if with_network
            else {}
        ),
        enable_network=with_network,
        seed=seed,
        name="edge_ai",
    )


@register_scenario
def classroom_homogeneous(
    *,
    scheduler: str = "FCFS",
    intensity: str | float = "medium",
    duration: float = 600.0,
    seed: int = 2023,
    n_machines: int = 4,
) -> Scenario:
    """Four identical machines, three task types — the assignment's part 1."""
    eet = EETMatrix.homogeneous(
        task_eets=[12.0, 20.0, 30.0],
        task_type_names=["T1", "T2", "T3"],
        n_machine_types=n_machines,
    )
    return Scenario(
        eet=eet,
        machine_counts={n: 1 for n in eet.machine_type_names},
        scheduler=scheduler,
        generator={"duration": duration, "intensity": intensity},
        seed=seed,
        name="classroom_homogeneous",
    )
