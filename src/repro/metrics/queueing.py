"""Closed-form queueing results for validating the simulator.

A DES engine that claims to teach queueing behaviour should agree with
queueing theory where theory has answers. These are the standard single-queue
formulas used by the validation suite
(``tests/integration/test_queueing_validation.py``):

* M/M/1 — Poisson arrivals (rate λ), exponential service (rate μ):
  mean wait in queue  Wq = λ / (μ (μ − λ)),
  mean number in system L = ρ / (1 − ρ).
* M/D/1 — deterministic service time S (a machine running a single task type
  with an exact EET): Wq = ρ S / (2 (1 − ρ)).
* M/G/1 (Pollaczek–Khinchine) — general service with E[S], E[S²]:
  Wq = λ E[S²] / (2 (1 − ρ)). The two cases above are specialisations.

All require ρ = λ E[S] < 1 (a stable queue).
"""

from __future__ import annotations

from ..core.errors import ConfigurationError

__all__ = [
    "utilization",
    "mg1_mean_wait",
    "md1_mean_wait",
    "mm1_mean_wait",
    "mm1_mean_in_system",
]


def _check_stability(rho: float) -> None:
    if rho >= 1.0:
        raise ConfigurationError(
            f"queue is unstable (ρ = {rho:.3f} >= 1); closed forms diverge"
        )
    if rho < 0:
        raise ConfigurationError(f"negative utilisation ρ = {rho}")


def utilization(arrival_rate: float, mean_service: float) -> float:
    """ρ = λ · E[S]."""
    if arrival_rate <= 0 or mean_service <= 0:
        raise ConfigurationError("rates and service times must be positive")
    return arrival_rate * mean_service


def mg1_mean_wait(
    arrival_rate: float, mean_service: float, second_moment: float
) -> float:
    """Pollaczek–Khinchine mean waiting time in queue for M/G/1."""
    if second_moment < mean_service**2:
        raise ConfigurationError(
            "E[S²] cannot be below E[S]² (variance would be negative)"
        )
    rho = utilization(arrival_rate, mean_service)
    _check_stability(rho)
    return arrival_rate * second_moment / (2.0 * (1.0 - rho))


def md1_mean_wait(arrival_rate: float, service_time: float) -> float:
    """Mean waiting time in queue for M/D/1 (deterministic service)."""
    return mg1_mean_wait(arrival_rate, service_time, service_time**2)


def mm1_mean_wait(arrival_rate: float, mean_service: float) -> float:
    """Mean waiting time in queue for M/M/1 (exponential service)."""
    # E[S²] of Exp(mean m) is 2 m².
    return mg1_mean_wait(arrival_rate, mean_service, 2.0 * mean_service**2)


def mm1_mean_in_system(arrival_rate: float, mean_service: float) -> float:
    """Mean number of tasks in an M/M/1 system: L = ρ / (1 − ρ)."""
    rho = utilization(arrival_rate, mean_service)
    _check_stability(rho)
    return rho / (1.0 - rho)
