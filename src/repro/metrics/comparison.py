"""Cross-policy comparison utilities.

The classroom workflow (and the benchmark harness) constantly answers "which
policy wins on which metric under which conditions". :class:`PolicyComparison`
collects labelled simulation results, exposes a tidy table of any summary
metric, renders it as a bar chart, and ranks policies — with paired
replication support (every policy sees the same workloads, so differences are
differences in policy, not in luck).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from ..core.errors import ConfigurationError
from .stats import confidence_interval, summarize

if TYPE_CHECKING:  # pragma: no cover
    from ..core.config import Scenario
    from ..core.simulator import SimulationResult
    from ..viz.barchart import BarChart
    from .collector import SummaryMetrics

__all__ = ["PolicyComparison", "compare_policies"]


def _summary_of(result):
    """Accept a full SimulationResult or a bare SummaryMetrics.

    Campaign workers ship only summaries back across process boundaries;
    interactive code adds full results. Both feed the same comparison.
    """
    return getattr(result, "summary", result)


@dataclass
class PolicyComparison:
    """Labelled result sets, one list of replications per policy."""

    results: dict[str, list["SimulationResult | SummaryMetrics"]] = field(
        default_factory=dict
    )

    def add(
        self, label: str, result: "SimulationResult | SummaryMetrics"
    ) -> None:
        self.results.setdefault(label, []).append(result)

    @property
    def labels(self) -> list[str]:
        return list(self.results)

    def _require(self, label: str) -> list["SimulationResult"]:
        if label not in self.results:
            raise ConfigurationError(
                f"no results for {label!r}; have {self.labels}"
            )
        return self.results[label]

    def metric_values(self, label: str, metric: str) -> list[float]:
        """Per-replication values of a SummaryMetrics attribute."""
        values = []
        for result in self._require(label):
            summary = _summary_of(result)
            if not hasattr(summary, metric):
                raise ConfigurationError(
                    f"summary has no metric {metric!r}"
                )
            values.append(float(getattr(summary, metric)))
        return values

    def mean(self, label: str, metric: str) -> float:
        return summarize(self.metric_values(label, metric)).mean

    def interval(self, label: str, metric: str) -> tuple[float, float]:
        """95% Student-t CI of the metric's mean."""
        return confidence_interval(self.metric_values(label, metric))

    def ranking(
        self, metric: str, *, descending: bool = True
    ) -> list[tuple[str, float]]:
        """Policies sorted by mean metric (descending = higher is better)."""
        rows = [(label, self.mean(label, metric)) for label in self.labels]
        return sorted(rows, key=lambda r: r[1], reverse=descending)

    def winner(self, metric: str, *, descending: bool = True) -> str:
        if not self.results:
            raise ConfigurationError("comparison holds no results")
        return self.ranking(metric, descending=descending)[0][0]

    def table(self, metrics: Sequence[str]) -> list[dict]:
        """Tidy rows: one per (policy, metric) with mean and CI bounds."""
        rows = []
        for label in self.labels:
            for metric in metrics:
                lo, hi = self.interval(label, metric)
                rows.append(
                    {
                        "policy": label,
                        "metric": metric,
                        "mean": self.mean(label, metric),
                        "ci_low": lo,
                        "ci_high": hi,
                        "n": len(self._require(label)),
                    }
                )
        return rows

    def chart(
        self, metric: str, *, title: str | None = None, scale: float = 1.0,
        unit: str = "",
    ) -> "BarChart":
        # Imported here: viz depends on core which depends on metrics; a
        # module-level import would close the cycle.
        from ..viz.barchart import BarChart

        chart = BarChart(
            title or f"policy comparison — {metric}", unit=unit
        )
        for label, value in self.ranking(metric):
            chart.add(label, scale * value)
        return chart


def compare_policies(
    scenario: "Scenario",
    policies: Sequence[str],
    *,
    replications: int = 3,
    policy_params: dict[str, dict] | None = None,
) -> PolicyComparison:
    """Run *scenario* under each policy with paired replications.

    Replication *i* of every policy uses the same derived workload seed, so
    comparisons are paired (common random numbers).
    """
    if replications < 1:
        raise ConfigurationError("need at least one replication")
    policy_params = policy_params or {}
    comparison = PolicyComparison()
    for policy in policies:
        variant = scenario.with_scheduler(
            policy, **policy_params.get(policy, {})
        )
        for rep in range(replications):
            comparison.add(policy, variant.run(replication=rep))
    return comparison
