"""Statistics helpers used by reports, comparisons and the survey analysis.

Small, dependency-light functions: summary statistics, Student-t confidence
intervals (for replicated experiment series) and Jain's fairness index (used
to quantify FELARE's cross-task-type fairness).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "SummaryStats",
    "summarize",
    "confidence_interval",
    "jain_fairness",
]


@dataclass(frozen=True)
class SummaryStats:
    """Five-number-ish summary of a sample."""

    n: int
    mean: float
    std: float
    minimum: float
    median: float
    maximum: float

    def as_dict(self) -> dict[str, float]:
        return {
            "n": self.n,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "median": self.median,
            "max": self.maximum,
        }


def summarize(values: Sequence[float]) -> SummaryStats:
    """Summary statistics of a non-empty sample (ddof=1 std; 0 when n=1)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
    return SummaryStats(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=std,
        minimum=float(arr.min()),
        median=float(np.median(arr)),
        maximum=float(arr.max()),
    )


# Two-sided Student-t 97.5% quantiles for small df; ~1.96 beyond the table.
_T_975 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447, 7: 2.365,
    8: 2.306, 9: 2.262, 10: 2.228, 11: 2.201, 12: 2.179, 13: 2.160,
    14: 2.145, 15: 2.131, 16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093,
    20: 2.086, 25: 2.060, 30: 2.042, 40: 2.021, 60: 2.000, 120: 1.980,
}


def _t_quantile(df: int) -> float:
    if df <= 0:
        raise ValueError("confidence interval needs at least 2 samples")
    keys = sorted(_T_975)
    for k in keys:
        if df <= k:
            return _T_975[k]
    return 1.96


def confidence_interval(
    values: Sequence[float], level: float = 0.95
) -> tuple[float, float]:
    """Two-sided Student-t CI of the mean (95% only; table-based, no scipy).

    Returns (low, high); degenerate (mean, mean) for a single sample.
    """
    if not math.isclose(level, 0.95):
        raise ValueError("only the 95% level is supported")
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot build a CI from an empty sample")
    mean = float(arr.mean())
    if arr.size == 1:
        return (mean, mean)
    sem = float(arr.std(ddof=1)) / math.sqrt(arr.size)
    half = _t_quantile(arr.size - 1) * sem
    return (mean - half, mean + half)


def jain_fairness(values: Sequence[float]) -> float:
    """Jain's fairness index: (Σx)² / (n·Σx²) ∈ (0, 1]; 1 = perfectly fair.

    All-zero inputs count as perfectly fair (nothing to be unfair about).
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("fairness of an empty sample is undefined")
    if np.any(arr < 0):
        raise ValueError("Jain's index requires non-negative values")
    denom = arr.size * float((arr**2).sum())
    if denom == 0:
        return 1.0
    return float(arr.sum()) ** 2 / denom
