"""The report subsystem — Full, Task, Machine and Summary reports (§3).

"Upon completion of a simulation within E2C, the user may view a report, and
optionally, save the report as a CSV file. There is an option for a Full
Report, Task Report, Machine Report, and Summary Report."

Every report is a :class:`Report`: ordered column names + row dicts, with
``to_csv`` / ``to_text`` / ``to_dicts`` exporters. :class:`ReportBundle`
mirrors the GUI's report menu over a finished simulation result.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Sequence, TextIO

from ..core.errors import ReportError

__all__ = ["Report", "ReportBundle"]


@dataclass
class Report:
    """A named tabular report."""

    name: str
    columns: list[str]
    rows: list[dict]

    def __post_init__(self) -> None:
        if not self.columns:
            raise ReportError(f"report {self.name!r} has no columns")
        for i, row in enumerate(self.rows):
            missing = [c for c in self.columns if c not in row]
            if missing:
                raise ReportError(
                    f"report {self.name!r} row {i} missing columns {missing}"
                )

    def __len__(self) -> int:
        return len(self.rows)

    def to_dicts(self) -> list[dict]:
        """Rows restricted (and ordered) to the report's columns."""
        return [{c: row[c] for c in self.columns} for row in self.rows]

    def to_csv(self, target: str | Path | TextIO | None = None) -> str:
        """CSV text; optionally written to a path/stream."""
        buffer = io.StringIO()
        writer = csv.DictWriter(
            buffer, fieldnames=self.columns, extrasaction="ignore",
            lineterminator="\n",
        )
        writer.writeheader()
        for row in self.rows:
            writer.writerow({c: _fmt(row[c]) for c in self.columns})
        text = buffer.getvalue()
        if target is not None:
            if isinstance(target, (str, Path)):
                Path(target).write_text(text, encoding="utf-8")
            else:
                target.write(text)
        return text

    def to_text(self, max_col_width: int = 24) -> str:
        """Fixed-width console rendering."""
        widths = []
        for c in self.columns:
            body = max((len(_fmt(r[c])) for r in self.rows), default=0)
            widths.append(min(max(len(c), body), max_col_width))
        header = "  ".join(c[:w].ljust(w) for c, w in zip(self.columns, widths))
        rule = "  ".join("-" * w for w in widths)
        lines = [f"== {self.name} ==", header, rule]
        for row in self.rows:
            lines.append(
                "  ".join(
                    _fmt(row[c])[:w].ljust(w) for c, w in zip(self.columns, widths)
                )
            )
        return "\n".join(lines)


_TASK_COLUMNS = [
    "task_id", "task_type", "arrival_time", "deadline", "status", "machine",
    "start_time", "completion_time", "missed_time", "cancelled_time",
    "wait_time", "response_time", "on_time",
]

_FULL_COLUMNS = [
    "task_id", "task_type", "arrival_time", "deadline", "status", "machine",
    "machine_type", "assigned_time", "start_time", "completion_time",
    "missed_time", "cancelled_time", "drop_stage", "execution_time",
    "wait_time", "response_time", "energy", "on_time",
]

_MACHINE_COLUMNS = [
    "machine_id", "machine", "machine_type", "completed", "missed",
    "busy_time", "idle_time", "utilization", "idle_energy", "busy_energy",
    "total_energy",
]


class ReportBundle:
    """The four E2C reports computed from collector outputs.

    Parameters
    ----------
    task_records / machine_records / summary:
        Outputs of :class:`~repro.metrics.collector.MetricsCollector` and
        :meth:`~repro.metrics.collector.MetricsCollector.summary`.
    """

    def __init__(
        self,
        task_records: Sequence[Mapping],
        machine_records: Sequence[Mapping],
        summary: Mapping,
    ) -> None:
        self._tasks = [dict(r) for r in task_records]
        self._machines = [dict(r) for r in machine_records]
        self._summary = dict(summary)
        machine_type_of = {
            m["machine"]: m["machine_type"] for m in self._machines
        }
        for row in self._tasks:
            row.setdefault(
                "machine_type", machine_type_of.get(row.get("machine", ""), "")
            )

    # -- the four report kinds ---------------------------------------------------

    def task_report(self) -> Report:
        """Task-centric view (per-task timing and outcome)."""
        return Report("Task Report", list(_TASK_COLUMNS), self._tasks)

    def machine_report(self) -> Report:
        """Machine-centric view (utilization, counters, energy)."""
        return Report("Machine Report", list(_MACHINE_COLUMNS), self._machines)

    def summary_report(self) -> Report:
        """Key/value aggregate of the whole run."""
        rows = [
            {"metric": k, "value": v} for k, v in self._summary.items()
        ]
        return Report("Summary Report", ["metric", "value"], rows)

    def full_report(self) -> Report:
        """Everything about every task, joined with its machine's type."""
        return Report("Full Report", list(_FULL_COLUMNS), self._tasks)

    def by_name(self, name: str) -> Report:
        """Report lookup matching the GUI menu labels (case-insensitive)."""
        key = name.strip().lower().replace(" report", "")
        table = {
            "task": self.task_report,
            "machine": self.machine_report,
            "summary": self.summary_report,
            "full": self.full_report,
        }
        if key not in table:
            raise ReportError(
                f"unknown report {name!r}; options: Full, Task, Machine, Summary"
            )
        return table[key]()

    def save_all(self, directory: str | Path, prefix: str = "") -> list[Path]:
        """Write all four reports as CSVs into *directory*; returns the paths."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        paths = []
        for label, factory in (
            ("full", self.full_report),
            ("task", self.task_report),
            ("machine", self.machine_report),
            ("summary", self.summary_report),
        ):
            path = directory / f"{prefix}{label}_report.csv"
            factory().to_csv(path)
            paths.append(path)
        return paths


def _fmt(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)
