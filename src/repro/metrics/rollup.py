"""Cross-cluster metric rollups for federated simulations.

A federated run produces one :class:`~repro.metrics.collector.MetricsCollector`
per cluster shard. This module folds them into the global view: an aggregate
:class:`~repro.metrics.collector.SummaryMetrics` over every task and machine
in the federation (computed by the exact single-pass aggregation a
single-cluster run uses, so a 1-cluster federation matches its standalone
twin bit-for-bit), a merged energy breakdown, and the offload accounting
derived from the gateway's routing matrix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator, Mapping, Sequence

from ..tasks.task import TaskStatus
from .collector import MetricsCollector, SummaryMetrics
from .energy import EnergyBreakdown, energy_breakdown

if TYPE_CHECKING:  # pragma: no cover
    from ..machines.machine import Machine
    from ..net.topology import InterClusterTopology
    from ..tasks.task import Task

__all__ = [
    "global_summary",
    "global_energy",
    "routing_table",
    "OffloadEnergySplit",
    "offload_energy_split",
    "MigrationStats",
    "migration_stats",
    "TreeNodeStats",
    "TreeRollup",
]


def global_summary(
    collectors: Sequence[MetricsCollector],
    machines: Sequence["Machine"],
    *,
    end_time: float,
) -> SummaryMetrics:
    """Aggregate SummaryMetrics over every shard's tasks and machines."""
    merged = MetricsCollector()
    for collector in collectors:
        merged.merge_from(collector)
    # MetricsCollector.summary only iterates its cluster argument, so the
    # federation's flat machine list substitutes for a Cluster.
    return merged.summary(machines, end_time=end_time)  # type: ignore[arg-type]


def global_energy(machines: Sequence["Machine"]) -> EnergyBreakdown:
    """Energy decomposition across every machine of the federation."""
    return energy_breakdown(machines)  # type: ignore[arg-type]


def routing_table(
    names: Sequence[str], matrix: Sequence[Sequence[int]]
) -> dict[str, dict[str, int]]:
    """Name-keyed view of the gateway's origin x destination counters."""
    return {
        src: {dst: int(matrix[i][j]) for j, dst in enumerate(names)}
        for i, src in enumerate(names)
    }


@dataclass(frozen=True)
class OffloadEnergySplit:
    """The edge-vs-cloud energy trade-off of one federated run.

    Completed tasks are split by whether the gateway kept them at their
    origin cluster (*local*) or shipped them across the WAN (*offloaded*).
    Task energy is the machine busy energy attributed to each task's
    execution; offloaded tasks additionally carry the J/MB payload cost of
    their WAN crossing. ``energy_per_local_task`` vs
    ``energy_per_offloaded_task`` is the number an offloading study
    optimises: when the offloaded figure (execution on the fast remote
    machines *plus* the transfer) beats the local one, shipping work out
    saves energy per unit of work — the ELARE/FELARE question, federated.
    """

    local_completed: int
    offloaded_completed: int
    local_task_energy: float        # J: execution energy of local tasks
    offloaded_task_energy: float    # J: execution energy of offloaded tasks
    wan_transfer_energy: float      # J: payload cost of their WAN crossings

    @property
    def energy_per_local_task(self) -> float:
        """Mean execution joules per locally-completed task."""
        if not self.local_completed:
            return 0.0
        return self.local_task_energy / self.local_completed

    @property
    def energy_per_offloaded_task(self) -> float:
        """Mean execution + WAN joules per offloaded completed task."""
        if not self.offloaded_completed:
            return 0.0
        return (
            self.offloaded_task_energy + self.wan_transfer_energy
        ) / self.offloaded_completed

    def as_dict(self) -> dict[str, float]:
        """Flat numeric form for campaign tables and reports."""
        return {
            "local_completed": float(self.local_completed),
            "offloaded_completed": float(self.offloaded_completed),
            "local_task_energy": self.local_task_energy,
            "offloaded_task_energy": self.offloaded_task_energy,
            "wan_transfer_energy": self.wan_transfer_energy,
            "energy_per_local_task": self.energy_per_local_task,
            "energy_per_offloaded_task": self.energy_per_offloaded_task,
        }


@dataclass(frozen=True)
class MigrationStats:
    """Conservation + energy account of mid-queue migrations in one run.

    Every evicted task is *attempted*; it then either reaches its
    destination's batch queue (*delivered*) or its deadline fires while it
    is still in the WAN — queued for the link, serialising, or propagating
    (*cancelled_in_flight*). ``attempted == delivered +
    cancelled_in_flight`` holds at the end of every finished run: a
    migrating task cannot be lost between clusters.

    ``completed`` counts migrated tasks that eventually COMPLETED (at any
    cluster); ``migrated_task_energy`` is their execution energy and
    ``migration_wan_energy`` the payload joules of their migration hops —
    together the migrated half of the energy-per-completed-task question:
    did moving the work pay for the trip?
    """

    attempted: int = 0
    delivered: int = 0
    cancelled_in_flight: int = 0
    completed: int = 0
    migrated_task_energy: float = 0.0
    migration_wan_energy: float = 0.0

    @property
    def delivery_rate(self) -> float:
        """Fraction of evicted tasks that survived the WAN crossing."""
        return self.delivered / self.attempted if self.attempted else 0.0

    @property
    def completion_rate(self) -> float:
        """Fraction of evicted tasks that eventually completed."""
        return self.completed / self.attempted if self.attempted else 0.0

    @property
    def energy_per_migrated_task(self) -> float:
        """Mean execution + migration-WAN joules per completed migrated task."""
        if not self.completed:
            return 0.0
        return (
            self.migrated_task_energy + self.migration_wan_energy
        ) / self.completed

    def as_dict(self) -> dict[str, float]:
        """Flat numeric form for campaign tables and reports."""
        return {
            "migrations_attempted": float(self.attempted),
            "migrations_delivered": float(self.delivered),
            "migrations_cancelled_in_flight": float(self.cancelled_in_flight),
            "migrated_completed": float(self.completed),
            "migrated_task_energy": self.migrated_task_energy,
            "migration_wan_energy": self.migration_wan_energy,
            "migration_delivery_rate": self.delivery_rate,
            "migration_completion_rate": self.completion_rate,
            "energy_per_migrated_task": self.energy_per_migrated_task,
        }


def migration_stats(
    tasks: Sequence["Task"],
    *,
    attempted: int,
    delivered: int,
    cancelled_in_flight: int,
    wan_energy_by_task: Mapping[int, float],
) -> MigrationStats:
    """Fold per-task outcomes into the run's :class:`MigrationStats`.

    ``wan_energy_by_task`` maps task id → payload joules charged for that
    task's migration hops (accumulated by the rebalancer as each migration
    finishes serialising); only completed migrated tasks contribute to the
    energy split, mirroring :func:`offload_energy_split`.
    """
    completed = 0
    exec_e = wan_e = 0.0
    for task in tasks:
        if task.migrations and task.status is TaskStatus.COMPLETED:
            completed += 1
            exec_e += task.energy or 0.0
            wan_e += wan_energy_by_task.get(task.id, 0.0)
    return MigrationStats(
        attempted=attempted,
        delivered=delivered,
        cancelled_in_flight=cancelled_in_flight,
        completed=completed,
        migrated_task_energy=exec_e,
        migration_wan_energy=wan_e,
    )


def offload_energy_split(
    tasks: Sequence["Task"],
    names: Sequence[str],
    topology: "InterClusterTopology",
    *,
    energy_fn: Callable[[int, int, float], float] | None = None,
) -> OffloadEnergySplit:
    """Split completed-task energy into local vs offloaded accounts.

    The WAN share of an offloaded task is exact: a completed task's payload
    crossed its origin→destination link in full, so its cost is that link's
    ``energy_per_mb`` times the task's input size — no per-transfer state
    needed. ``energy_fn(origin_index, destination_index, megabytes)``
    overrides that per-crossing cost for topologies where origin and
    destination are not directly linked (hierarchical federations charge
    every uplink hop along the tree path); ``None`` keeps the direct-link
    lookup.
    """
    local_n = offloaded_n = 0
    local_e = offloaded_e = wan_e = 0.0
    for task in tasks:
        if task.status is not TaskStatus.COMPLETED:
            continue
        origin, cluster = task.origin_cluster, task.cluster
        energy = task.energy or 0.0
        if origin is None or cluster is None or origin == cluster:
            local_n += 1
            local_e += energy
        else:
            offloaded_n += 1
            offloaded_e += energy
            if energy_fn is not None:
                wan_e += energy_fn(origin, cluster, task.task_type.data_in)
            else:
                link = topology.link_between(names[origin], names[cluster])
                wan_e += link.transfer_energy(task.task_type.data_in)
    return OffloadEnergySplit(
        local_completed=local_n,
        offloaded_completed=offloaded_n,
        local_task_energy=local_e,
        offloaded_task_energy=offloaded_e,
        wan_transfer_energy=wan_e,
    )


@dataclass(frozen=True)
class TreeNodeStats:
    """Rolled-up metrics of one node of a hierarchical federation.

    A *leaf* node's stats are the per-shard numbers the run produced; an
    *interior* node's stats are the exact elementwise sum over every leaf
    beneath it. ``path`` is the node's position in the tree, root-most
    segment first; the root's path is empty and prints as ``*``.
    """

    path: tuple[str, ...]
    stats: dict[str, float] = field(default_factory=dict)
    n_leaves: int = 1

    @property
    def wire(self) -> str:
        """Wire form of the node's path (``/``-joined; ``*`` at the root)."""
        return "/".join(self.path) if self.path else "*"

    @property
    def depth(self) -> int:
        """Levels below the federation root (0 for the root itself)."""
        return len(self.path)

    @property
    def name(self) -> str:
        """Last path segment (``*`` at the root)."""
        return self.path[-1] if self.path else "*"


class TreeRollup:
    """Per-level aggregation of leaf metrics over a federation tree.

    Built from the leaves alone: each leaf contributes its path (root-most
    segment first) and a flat name→number stats mapping, and every interior
    node — each proper prefix of a leaf path, plus the root — receives the
    elementwise sum of the leaves beneath it. Numeric identities follow by
    construction: the root totals equal the flat sum over all leaves, and
    any conservation law that holds per leaf holds at every interior node.

    Kept free of federation imports so the metrics layer stays a leaf
    dependency (the hierarchy engine imports *this* module, not vice versa).
    """

    def __init__(self, nodes: Mapping[tuple[str, ...], TreeNodeStats]) -> None:
        self._nodes = dict(nodes)
        self._order = sorted(self._nodes)

    @classmethod
    def from_leaves(
        cls,
        leaf_paths: Sequence[Sequence[str]],
        leaf_stats: Sequence[Mapping[str, float]],
    ) -> "TreeRollup":
        """Fold per-leaf stats upward through every path prefix.

        ``leaf_paths[i]`` locates leaf *i* (root-most segment first) and
        ``leaf_stats[i]`` holds its numbers. Interior nodes are derived —
        any proper prefix shared by the paths — so callers never describe
        the tree twice.
        """
        if len(leaf_paths) != len(leaf_stats):
            raise ValueError(
                f"got {len(leaf_paths)} leaf paths but "
                f"{len(leaf_stats)} stat mappings"
            )
        sums: dict[tuple[str, ...], dict[str, float]] = {}
        counts: dict[tuple[str, ...], int] = {}
        leaf_keys = set()
        for raw_path, stats in zip(leaf_paths, leaf_stats):
            path = tuple(raw_path)
            if not path:
                raise ValueError("leaf paths must be non-empty")
            if path in leaf_keys:
                raise ValueError(f"duplicate leaf path: {'/'.join(path)}")
            leaf_keys.add(path)
            for depth in range(len(path) + 1):
                prefix = path[:depth]
                acc = sums.setdefault(prefix, {})
                counts[prefix] = counts.get(prefix, 0) + 1
                for key, value in stats.items():
                    acc[key] = acc.get(key, 0.0) + float(value)
        for path in leaf_keys:
            if any(
                other != path and other[: len(path)] == path
                for other in leaf_keys
            ):
                raise ValueError(
                    f"leaf path {'/'.join(path)} is a prefix of another "
                    "leaf (a node cannot be both leaf and interior)"
                )
        return cls(
            {
                path: TreeNodeStats(
                    path=path, stats=acc, n_leaves=counts[path]
                )
                for path, acc in sums.items()
            }
        )

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[TreeNodeStats]:
        for path in self._order:
            yield self._nodes[path]

    @property
    def root(self) -> TreeNodeStats:
        """The federation-wide totals (path ``()``, wire ``*``)."""
        return self._nodes[()]

    @property
    def leaves(self) -> list[TreeNodeStats]:
        """Leaf nodes in path order."""
        return [n for n in self if n.n_leaves == 1 and n.path]

    def at(self, wire: str) -> TreeNodeStats:
        """Node by wire path (``region/site/cluster``; ``*`` = root)."""
        path = () if wire == "*" else tuple(wire.split("/"))
        try:
            return self._nodes[path]
        except KeyError:
            known = ", ".join(n.wire for n in self)
            raise KeyError(
                f"no federation tree node {wire!r}; known: {known}"
            ) from None

    def children_of(self, node: TreeNodeStats) -> list[TreeNodeStats]:
        """Direct children of ``node``, in path order."""
        depth = len(node.path) + 1
        return [
            n
            for n in self
            if len(n.path) == depth and n.path[:-1] == node.path
        ]

    def as_dict(self) -> dict[str, dict[str, float]]:
        """Wire-path-keyed JSON form (stable key order)."""
        return {n.wire: dict(sorted(n.stats.items())) for n in self}

    def to_text(self, *, columns: Sequence[str] | None = None) -> str:
        """Indented per-level table of the rollup.

        ``columns`` picks which stat keys to print (default: every key of
        the root, sorted); each node row is indented by its depth.
        """
        cols = (
            list(columns)
            if columns is not None
            else sorted(self.root.stats)
        )
        label_width = max(
            (2 * n.depth + len(n.name) for n in self), default=4
        )
        label_width = max(label_width, len("node"))
        widths = [max(len(c), 10) for c in cols]
        lines = [
            "  ".join(
                ["node".ljust(label_width)]
                + [c.rjust(w) for c, w in zip(cols, widths)]
            )
        ]
        for node in self:
            label = ("  " * node.depth + node.name).ljust(label_width)
            cells = []
            for col, w in zip(cols, widths):
                value = node.stats.get(col, 0.0)
                if float(value).is_integer() and abs(value) < 1e15:
                    cells.append(f"{int(value)}".rjust(w))
                else:
                    cells.append(f"{value:.3f}".rjust(w))
            lines.append("  ".join([label] + cells))
        return "\n".join(lines)
