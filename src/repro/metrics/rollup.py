"""Cross-cluster metric rollups for federated simulations.

A federated run produces one :class:`~repro.metrics.collector.MetricsCollector`
per cluster shard. This module folds them into the global view: an aggregate
:class:`~repro.metrics.collector.SummaryMetrics` over every task and machine
in the federation (computed by the exact single-pass aggregation a
single-cluster run uses, so a 1-cluster federation matches its standalone
twin bit-for-bit), a merged energy breakdown, and the offload accounting
derived from the gateway's routing matrix.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from .collector import MetricsCollector, SummaryMetrics
from .energy import EnergyBreakdown, energy_breakdown

if TYPE_CHECKING:  # pragma: no cover
    from ..machines.machine import Machine

__all__ = [
    "global_summary",
    "global_energy",
    "routing_table",
]


def global_summary(
    collectors: Sequence[MetricsCollector],
    machines: Sequence["Machine"],
    *,
    end_time: float,
) -> SummaryMetrics:
    """Aggregate SummaryMetrics over every shard's tasks and machines."""
    merged = MetricsCollector()
    for collector in collectors:
        merged.merge_from(collector)
    # MetricsCollector.summary only iterates its cluster argument, so the
    # federation's flat machine list substitutes for a Cluster.
    return merged.summary(machines, end_time=end_time)  # type: ignore[arg-type]


def global_energy(machines: Sequence["Machine"]) -> EnergyBreakdown:
    """Energy decomposition across every machine of the federation."""
    return energy_breakdown(machines)  # type: ignore[arg-type]


def routing_table(
    names: Sequence[str], matrix: Sequence[Sequence[int]]
) -> dict[str, dict[str, int]]:
    """Name-keyed view of the gateway's origin x destination counters."""
    return {
        src: {dst: int(matrix[i][j]) for j, dst in enumerate(names)}
        for i, src in enumerate(names)
    }
