"""Cross-cluster metric rollups for federated simulations.

A federated run produces one :class:`~repro.metrics.collector.MetricsCollector`
per cluster shard. This module folds them into the global view: an aggregate
:class:`~repro.metrics.collector.SummaryMetrics` over every task and machine
in the federation (computed by the exact single-pass aggregation a
single-cluster run uses, so a 1-cluster federation matches its standalone
twin bit-for-bit), a merged energy breakdown, and the offload accounting
derived from the gateway's routing matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

from ..tasks.task import TaskStatus
from .collector import MetricsCollector, SummaryMetrics
from .energy import EnergyBreakdown, energy_breakdown

if TYPE_CHECKING:  # pragma: no cover
    from ..machines.machine import Machine
    from ..net.topology import InterClusterTopology
    from ..tasks.task import Task

__all__ = [
    "global_summary",
    "global_energy",
    "routing_table",
    "OffloadEnergySplit",
    "offload_energy_split",
    "MigrationStats",
    "migration_stats",
]


def global_summary(
    collectors: Sequence[MetricsCollector],
    machines: Sequence["Machine"],
    *,
    end_time: float,
) -> SummaryMetrics:
    """Aggregate SummaryMetrics over every shard's tasks and machines."""
    merged = MetricsCollector()
    for collector in collectors:
        merged.merge_from(collector)
    # MetricsCollector.summary only iterates its cluster argument, so the
    # federation's flat machine list substitutes for a Cluster.
    return merged.summary(machines, end_time=end_time)  # type: ignore[arg-type]


def global_energy(machines: Sequence["Machine"]) -> EnergyBreakdown:
    """Energy decomposition across every machine of the federation."""
    return energy_breakdown(machines)  # type: ignore[arg-type]


def routing_table(
    names: Sequence[str], matrix: Sequence[Sequence[int]]
) -> dict[str, dict[str, int]]:
    """Name-keyed view of the gateway's origin x destination counters."""
    return {
        src: {dst: int(matrix[i][j]) for j, dst in enumerate(names)}
        for i, src in enumerate(names)
    }


@dataclass(frozen=True)
class OffloadEnergySplit:
    """The edge-vs-cloud energy trade-off of one federated run.

    Completed tasks are split by whether the gateway kept them at their
    origin cluster (*local*) or shipped them across the WAN (*offloaded*).
    Task energy is the machine busy energy attributed to each task's
    execution; offloaded tasks additionally carry the J/MB payload cost of
    their WAN crossing. ``energy_per_local_task`` vs
    ``energy_per_offloaded_task`` is the number an offloading study
    optimises: when the offloaded figure (execution on the fast remote
    machines *plus* the transfer) beats the local one, shipping work out
    saves energy per unit of work — the ELARE/FELARE question, federated.
    """

    local_completed: int
    offloaded_completed: int
    local_task_energy: float        # J: execution energy of local tasks
    offloaded_task_energy: float    # J: execution energy of offloaded tasks
    wan_transfer_energy: float      # J: payload cost of their WAN crossings

    @property
    def energy_per_local_task(self) -> float:
        """Mean execution joules per locally-completed task."""
        if not self.local_completed:
            return 0.0
        return self.local_task_energy / self.local_completed

    @property
    def energy_per_offloaded_task(self) -> float:
        """Mean execution + WAN joules per offloaded completed task."""
        if not self.offloaded_completed:
            return 0.0
        return (
            self.offloaded_task_energy + self.wan_transfer_energy
        ) / self.offloaded_completed

    def as_dict(self) -> dict[str, float]:
        """Flat numeric form for campaign tables and reports."""
        return {
            "local_completed": float(self.local_completed),
            "offloaded_completed": float(self.offloaded_completed),
            "local_task_energy": self.local_task_energy,
            "offloaded_task_energy": self.offloaded_task_energy,
            "wan_transfer_energy": self.wan_transfer_energy,
            "energy_per_local_task": self.energy_per_local_task,
            "energy_per_offloaded_task": self.energy_per_offloaded_task,
        }


@dataclass(frozen=True)
class MigrationStats:
    """Conservation + energy account of mid-queue migrations in one run.

    Every evicted task is *attempted*; it then either reaches its
    destination's batch queue (*delivered*) or its deadline fires while it
    is still in the WAN — queued for the link, serialising, or propagating
    (*cancelled_in_flight*). ``attempted == delivered +
    cancelled_in_flight`` holds at the end of every finished run: a
    migrating task cannot be lost between clusters.

    ``completed`` counts migrated tasks that eventually COMPLETED (at any
    cluster); ``migrated_task_energy`` is their execution energy and
    ``migration_wan_energy`` the payload joules of their migration hops —
    together the migrated half of the energy-per-completed-task question:
    did moving the work pay for the trip?
    """

    attempted: int = 0
    delivered: int = 0
    cancelled_in_flight: int = 0
    completed: int = 0
    migrated_task_energy: float = 0.0
    migration_wan_energy: float = 0.0

    @property
    def delivery_rate(self) -> float:
        """Fraction of evicted tasks that survived the WAN crossing."""
        return self.delivered / self.attempted if self.attempted else 0.0

    @property
    def completion_rate(self) -> float:
        """Fraction of evicted tasks that eventually completed."""
        return self.completed / self.attempted if self.attempted else 0.0

    @property
    def energy_per_migrated_task(self) -> float:
        """Mean execution + migration-WAN joules per completed migrated task."""
        if not self.completed:
            return 0.0
        return (
            self.migrated_task_energy + self.migration_wan_energy
        ) / self.completed

    def as_dict(self) -> dict[str, float]:
        """Flat numeric form for campaign tables and reports."""
        return {
            "migrations_attempted": float(self.attempted),
            "migrations_delivered": float(self.delivered),
            "migrations_cancelled_in_flight": float(self.cancelled_in_flight),
            "migrated_completed": float(self.completed),
            "migrated_task_energy": self.migrated_task_energy,
            "migration_wan_energy": self.migration_wan_energy,
            "migration_delivery_rate": self.delivery_rate,
            "migration_completion_rate": self.completion_rate,
            "energy_per_migrated_task": self.energy_per_migrated_task,
        }


def migration_stats(
    tasks: Sequence["Task"],
    *,
    attempted: int,
    delivered: int,
    cancelled_in_flight: int,
    wan_energy_by_task: Mapping[int, float],
) -> MigrationStats:
    """Fold per-task outcomes into the run's :class:`MigrationStats`.

    ``wan_energy_by_task`` maps task id → payload joules charged for that
    task's migration hops (accumulated by the rebalancer as each migration
    finishes serialising); only completed migrated tasks contribute to the
    energy split, mirroring :func:`offload_energy_split`.
    """
    completed = 0
    exec_e = wan_e = 0.0
    for task in tasks:
        if task.migrations and task.status is TaskStatus.COMPLETED:
            completed += 1
            exec_e += task.energy or 0.0
            wan_e += wan_energy_by_task.get(task.id, 0.0)
    return MigrationStats(
        attempted=attempted,
        delivered=delivered,
        cancelled_in_flight=cancelled_in_flight,
        completed=completed,
        migrated_task_energy=exec_e,
        migration_wan_energy=wan_e,
    )


def offload_energy_split(
    tasks: Sequence["Task"],
    names: Sequence[str],
    topology: "InterClusterTopology",
) -> OffloadEnergySplit:
    """Split completed-task energy into local vs offloaded accounts.

    The WAN share of an offloaded task is exact: a completed task's payload
    crossed its origin→destination link in full, so its cost is that link's
    ``energy_per_mb`` times the task's input size — no per-transfer state
    needed.
    """
    local_n = offloaded_n = 0
    local_e = offloaded_e = wan_e = 0.0
    for task in tasks:
        if task.status is not TaskStatus.COMPLETED:
            continue
        origin, cluster = task.origin_cluster, task.cluster
        energy = task.energy or 0.0
        if origin is None or cluster is None or origin == cluster:
            local_n += 1
            local_e += energy
        else:
            offloaded_n += 1
            offloaded_e += energy
            link = topology.link_between(names[origin], names[cluster])
            wan_e += link.transfer_energy(task.task_type.data_in)
    return OffloadEnergySplit(
        local_completed=local_n,
        offloaded_completed=offloaded_n,
        local_task_energy=local_e,
        offloaded_task_energy=offloaded_e,
        wan_transfer_energy=wan_e,
    )
