"""Metrics collection: the raw material of every report.

The simulator feeds the collector with lifecycle notifications; at the end of
a run the collector produces columnar task records, machine records and the
summary — the data behind the paper's Full/Task/Machine/Summary reports and
behind the completion-percentage bar charts of Figures 5–7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from operator import itemgetter
from typing import TYPE_CHECKING, Callable

from ..core.errors import ReportError
from ..tasks.task import Task, TaskStatus
from .stats import jain_fairness

if TYPE_CHECKING:  # pragma: no cover
    from ..machines.cluster import Cluster

__all__ = ["MetricsCollector", "SummaryMetrics"]


@dataclass(frozen=True)
class SummaryMetrics:
    """Aggregate outcome of one simulation run (the Summary report body)."""

    total_tasks: int
    completed: int
    cancelled: int
    missed: int
    completion_rate: float
    cancellation_rate: float
    miss_rate: float
    on_time: int
    on_time_rate: float
    makespan: float
    total_energy: float
    idle_energy: float
    busy_energy: float
    energy_per_completed_task: float
    mean_wait_time: float
    mean_response_time: float
    throughput: float
    mean_utilization: float
    completion_rate_by_type: dict[str, float] = field(default_factory=dict)
    fairness_index: float = 1.0

    def as_dict(self) -> dict:
        out = {
            k: v
            for k, v in self.__dict__.items()
            if k != "completion_rate_by_type"
        }
        for name, rate in sorted(self.completion_rate_by_type.items()):
            out[f"completion_rate[{name}]"] = rate
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "SummaryMetrics":
        """Inverse of :meth:`as_dict` — exact reconstruction.

        The campaign service stores summaries in its result cache as the
        flat ``as_dict`` form (JSON keeps float ``repr`` precision), so a
        cache round-trip must reproduce the original dataclass field for
        field: ``SummaryMetrics.from_dict(m.as_dict()) == m``.
        """
        by_type: dict[str, float] = {}
        fields: dict = {}
        for key, value in data.items():
            if key.startswith("completion_rate[") and key.endswith("]"):
                by_type[key[len("completion_rate["):-1]] = value
            else:
                fields[key] = value
        return cls(completion_rate_by_type=by_type, **fields)


class MetricsCollector:
    """Accumulates task outcomes and snapshots machine counters.

    Ingestion is append-only: each terminal task contributes one compact
    column row (scalars only) plus O(1) outcome-counter bumps. Aggregation —
    means, makespan, per-type rates, fairness — happens once, at
    :meth:`summary` time, in a single pass over the columnar buffer. Live
    consumers (the renderer's outcome boxes) read the counters instead of
    re-scanning every recorded task per frame.
    """

    def __init__(self) -> None:
        self._tasks: list[Task] = []
        self._seen: set[int] = set()
        # Columnar buffer: (id, status, wait, response, completion, on_time,
        # type name) per terminal task, in record order.
        self._rows: list[
            tuple[int, TaskStatus, float | None, float | None, float | None, bool, str]
        ] = []
        # Live outcome counters (the GUI's completed/cancelled/missed boxes).
        self._completed = 0
        self._cancelled = 0
        self._missed = 0
        self._on_time = 0
        #: Optional observer fired after each terminal task is recorded.
        #: Every terminal path of every engine funnels through
        #: :meth:`record_terminal`, so this single hook sees completions,
        #: deadline misses and in-WAN cancellations alike — the federated
        #: simulator uses it to pay the adaptive gateway's reward signal.
        self.on_terminal: Callable[[Task], None] | None = None

    # -- ingestion ---------------------------------------------------------------

    def record_terminal(self, task: Task) -> None:
        """Register a task that reached a terminal state."""
        status = task.status
        if not status.is_terminal:
            raise ReportError(
                f"task {task.id} recorded before reaching a terminal state "
                f"({task.status.name})"
            )
        if task.id in self._seen:
            raise ReportError(f"task {task.id} recorded twice")
        self._seen.add(task.id)
        self._tasks.append(task)
        # Derived quantities inlined from the Task properties (wait_time,
        # response_time, on_time): this runs once per terminal event.
        arrival = task.arrival_time
        start = task.start_time
        completion = task.completion_time
        on_time = (
            status is TaskStatus.COMPLETED
            and completion is not None
            and completion <= task.deadline
        )
        self._rows.append(
            (
                task.id,
                status,
                None if start is None else start - arrival,
                None if completion is None else completion - arrival,
                completion,
                on_time,
                task.task_type.name,
            )
        )
        if status is TaskStatus.COMPLETED:
            self._completed += 1
        elif status is TaskStatus.CANCELLED:
            self._cancelled += 1
        else:
            self._missed += 1
        if on_time:
            self._on_time += 1
        if self.on_terminal is not None:
            self.on_terminal(task)

    def merge_from(self, other: "MetricsCollector") -> None:
        """Fold another collector's recorded tasks into this one.

        The federation rollup path: per-cluster collectors stay untouched
        (per-cluster summaries remain exact) and a scratch collector absorbs
        them all to aggregate the global summary. Task ids must be disjoint —
        a task recorded by two shards is a conservation bug.
        """
        duplicate = self._seen & other._seen
        if duplicate:
            raise ReportError(
                f"tasks {sorted(duplicate)[:5]} recorded by multiple collectors"
            )
        self._tasks.extend(other._tasks)
        self._seen.update(other._seen)
        self._rows.extend(other._rows)
        self._completed += other._completed
        self._cancelled += other._cancelled
        self._missed += other._missed
        self._on_time += other._on_time

    @property
    def recorded(self) -> int:
        return len(self._tasks)

    def counts(self) -> dict[str, int]:
        """Live outcome counters — O(1), no task scan."""
        return {
            "completed": self._completed,
            "cancelled": self._cancelled,
            "missed": self._missed,
        }

    def tasks(self) -> list[Task]:
        """All recorded tasks, by id (stable across runs with equal seeds)."""
        return sorted(self._tasks, key=lambda t: t.id)

    # -- record tables -------------------------------------------------------------

    def task_records(self) -> list[dict]:
        """One dict per task — the Task report rows."""
        rows = []
        for t in self.tasks():
            rows.append(
                {
                    "task_id": t.id,
                    "task_type": t.task_type.name,
                    "arrival_time": t.arrival_time,
                    "deadline": t.deadline,
                    "status": t.status.value,
                    "machine": t.machine.name if t.machine is not None else "",
                    "assigned_time": _opt(t.assigned_time),
                    "start_time": _opt(t.start_time),
                    "completion_time": _opt(t.completion_time),
                    "missed_time": _opt(t.missed_time),
                    "cancelled_time": _opt(t.cancelled_time),
                    "drop_stage": t.drop_stage.value if t.drop_stage else "",
                    "execution_time": _opt(t.execution_time),
                    "wait_time": _opt(t.wait_time),
                    "response_time": _opt(t.response_time),
                    "energy": _opt(t.energy),
                    "on_time": t.on_time,
                }
            )
        return rows

    def machine_records(self, cluster: "Cluster") -> list[dict]:
        """One dict per machine — the Machine report rows."""
        rows = []
        for m in cluster:
            meter = m.energy
            rows.append(
                {
                    "machine_id": m.id,
                    "machine": m.name,
                    "machine_type": m.machine_type.name,
                    "completed": m.completed_count,
                    "missed": m.missed_count,
                    "busy_time": meter.busy_time,
                    "idle_time": meter.idle_time,
                    "utilization": meter.utilization(),
                    "idle_energy": meter.idle_energy,
                    "busy_energy": meter.busy_energy,
                    "total_energy": meter.total_energy,
                }
            )
        return rows

    # -- summary ----------------------------------------------------------------------

    def summary(self, cluster: "Cluster", *, end_time: float) -> SummaryMetrics:
        """Aggregate the run. ``end_time`` is the simulation clock at finish.

        One pass over the columnar buffer, in task-id order — the same
        element order (and therefore bit-identical float sums) as the
        previous multi-scan implementation.
        """
        rows = sorted(self._rows, key=itemgetter(0))
        total = len(rows)
        completed = self._completed
        cancelled = self._cancelled
        missed = self._missed
        on_time = self._on_time

        wait_sum = 0.0
        wait_n = 0
        resp_sum = 0.0
        resp_n = 0
        makespan = 0.0
        by_type_total: dict[str, int] = {}
        by_type_done: dict[str, int] = {}
        for _id, status, wait, response, completion, _on_time, name in rows:
            if wait is not None:
                wait_sum += wait
                wait_n += 1
            if response is not None:
                resp_sum += response
                resp_n += 1
            if completion is not None and completion > makespan:
                makespan = completion
            by_type_total[name] = by_type_total.get(name, 0) + 1
            if status is TaskStatus.COMPLETED:
                by_type_done[name] = by_type_done.get(name, 0) + 1

        idle_energy = sum(m.energy.idle_energy for m in cluster)
        busy_energy = sum(m.energy.busy_energy for m in cluster)
        total_energy = idle_energy + busy_energy

        rate_by_type = {
            name: by_type_done.get(name, 0) / count
            for name, count in by_type_total.items()
        }
        fairness = (
            jain_fairness(list(rate_by_type.values())) if rate_by_type else 1.0
        )

        utils = [m.energy.utilization() for m in cluster]
        return SummaryMetrics(
            total_tasks=total,
            completed=completed,
            cancelled=cancelled,
            missed=missed,
            completion_rate=completed / total if total else 0.0,
            cancellation_rate=cancelled / total if total else 0.0,
            miss_rate=missed / total if total else 0.0,
            on_time=on_time,
            on_time_rate=on_time / total if total else 0.0,
            makespan=makespan,
            total_energy=total_energy,
            idle_energy=idle_energy,
            busy_energy=busy_energy,
            energy_per_completed_task=(
                total_energy / completed if completed else 0.0
            ),
            mean_wait_time=wait_sum / wait_n if wait_n else 0.0,
            mean_response_time=resp_sum / resp_n if resp_n else 0.0,
            throughput=completed / end_time if end_time > 0 else 0.0,
            mean_utilization=sum(utils) / len(utils) if utils else 0.0,
            completion_rate_by_type=rate_by_type,
            fairness_index=fairness,
        )

    def reset(self) -> None:
        self._tasks.clear()
        self._seen.clear()
        self._rows.clear()
        self._completed = self._cancelled = self._missed = self._on_time = 0


def _opt(value):
    """None-to-empty-string for CSV friendliness."""
    return "" if value is None else value
