"""Metrics collection: the raw material of every report.

The simulator feeds the collector with lifecycle notifications; at the end of
a run the collector produces columnar task records, machine records and the
summary — the data behind the paper's Full/Task/Machine/Summary reports and
behind the completion-percentage bar charts of Figures 5–7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..core.errors import ReportError
from ..tasks.task import DropStage, Task, TaskStatus
from .stats import jain_fairness

if TYPE_CHECKING:  # pragma: no cover
    from ..machines.cluster import Cluster

__all__ = ["MetricsCollector", "SummaryMetrics"]


@dataclass(frozen=True)
class SummaryMetrics:
    """Aggregate outcome of one simulation run (the Summary report body)."""

    total_tasks: int
    completed: int
    cancelled: int
    missed: int
    completion_rate: float
    cancellation_rate: float
    miss_rate: float
    on_time: int
    on_time_rate: float
    makespan: float
    total_energy: float
    idle_energy: float
    busy_energy: float
    energy_per_completed_task: float
    mean_wait_time: float
    mean_response_time: float
    throughput: float
    mean_utilization: float
    completion_rate_by_type: dict[str, float] = field(default_factory=dict)
    fairness_index: float = 1.0

    def as_dict(self) -> dict:
        out = {
            k: v
            for k, v in self.__dict__.items()
            if k != "completion_rate_by_type"
        }
        for name, rate in sorted(self.completion_rate_by_type.items()):
            out[f"completion_rate[{name}]"] = rate
        return out


class MetricsCollector:
    """Accumulates task outcomes and snapshots machine counters."""

    def __init__(self) -> None:
        self._tasks: list[Task] = []
        self._seen: set[int] = set()

    # -- ingestion ---------------------------------------------------------------

    def record_terminal(self, task: Task) -> None:
        """Register a task that reached a terminal state."""
        if not task.status.is_terminal:
            raise ReportError(
                f"task {task.id} recorded before reaching a terminal state "
                f"({task.status.name})"
            )
        if task.id in self._seen:
            raise ReportError(f"task {task.id} recorded twice")
        self._seen.add(task.id)
        self._tasks.append(task)

    @property
    def recorded(self) -> int:
        return len(self._tasks)

    def tasks(self) -> list[Task]:
        """All recorded tasks, by id (stable across runs with equal seeds)."""
        return sorted(self._tasks, key=lambda t: t.id)

    # -- record tables -------------------------------------------------------------

    def task_records(self) -> list[dict]:
        """One dict per task — the Task report rows."""
        rows = []
        for t in self.tasks():
            rows.append(
                {
                    "task_id": t.id,
                    "task_type": t.task_type.name,
                    "arrival_time": t.arrival_time,
                    "deadline": t.deadline,
                    "status": t.status.value,
                    "machine": t.machine.name if t.machine is not None else "",
                    "assigned_time": _opt(t.assigned_time),
                    "start_time": _opt(t.start_time),
                    "completion_time": _opt(t.completion_time),
                    "missed_time": _opt(t.missed_time),
                    "cancelled_time": _opt(t.cancelled_time),
                    "drop_stage": t.drop_stage.value if t.drop_stage else "",
                    "execution_time": _opt(t.execution_time),
                    "wait_time": _opt(t.wait_time),
                    "response_time": _opt(t.response_time),
                    "energy": _opt(t.energy),
                    "on_time": t.on_time,
                }
            )
        return rows

    def machine_records(self, cluster: "Cluster") -> list[dict]:
        """One dict per machine — the Machine report rows."""
        rows = []
        for m in cluster:
            meter = m.energy
            rows.append(
                {
                    "machine_id": m.id,
                    "machine": m.name,
                    "machine_type": m.machine_type.name,
                    "completed": m.completed_count,
                    "missed": m.missed_count,
                    "busy_time": meter.busy_time,
                    "idle_time": meter.idle_time,
                    "utilization": meter.utilization(),
                    "idle_energy": meter.idle_energy,
                    "busy_energy": meter.busy_energy,
                    "total_energy": meter.total_energy,
                }
            )
        return rows

    # -- summary ----------------------------------------------------------------------

    def summary(self, cluster: "Cluster", *, end_time: float) -> SummaryMetrics:
        """Aggregate the run. ``end_time`` is the simulation clock at finish."""
        tasks = self.tasks()
        total = len(tasks)
        completed = sum(1 for t in tasks if t.status is TaskStatus.COMPLETED)
        cancelled = sum(1 for t in tasks if t.status is TaskStatus.CANCELLED)
        missed = sum(1 for t in tasks if t.status is TaskStatus.MISSED)
        on_time = sum(1 for t in tasks if t.on_time)

        waits = [t.wait_time for t in tasks if t.wait_time is not None]
        responses = [t.response_time for t in tasks if t.response_time is not None]
        completions = [
            t.completion_time for t in tasks if t.completion_time is not None
        ]
        makespan = max(completions) if completions else 0.0

        idle_energy = sum(m.energy.idle_energy for m in cluster)
        busy_energy = sum(m.energy.busy_energy for m in cluster)
        total_energy = idle_energy + busy_energy

        by_type_total: dict[str, int] = {}
        by_type_done: dict[str, int] = {}
        for t in tasks:
            name = t.task_type.name
            by_type_total[name] = by_type_total.get(name, 0) + 1
            if t.status is TaskStatus.COMPLETED:
                by_type_done[name] = by_type_done.get(name, 0) + 1
        rate_by_type = {
            name: by_type_done.get(name, 0) / count
            for name, count in by_type_total.items()
        }
        fairness = (
            jain_fairness(list(rate_by_type.values())) if rate_by_type else 1.0
        )

        utils = [m.energy.utilization() for m in cluster]
        return SummaryMetrics(
            total_tasks=total,
            completed=completed,
            cancelled=cancelled,
            missed=missed,
            completion_rate=completed / total if total else 0.0,
            cancellation_rate=cancelled / total if total else 0.0,
            miss_rate=missed / total if total else 0.0,
            on_time=on_time,
            on_time_rate=on_time / total if total else 0.0,
            makespan=makespan,
            total_energy=total_energy,
            idle_energy=idle_energy,
            busy_energy=busy_energy,
            energy_per_completed_task=(
                total_energy / completed if completed else 0.0
            ),
            mean_wait_time=sum(waits) / len(waits) if waits else 0.0,
            mean_response_time=(
                sum(responses) / len(responses) if responses else 0.0
            ),
            throughput=completed / end_time if end_time > 0 else 0.0,
            mean_utilization=sum(utils) / len(utils) if utils else 0.0,
            completion_rate_by_type=rate_by_type,
            fairness_index=fairness,
        )

    def reset(self) -> None:
        self._tasks.clear()
        self._seen.clear()


def _opt(value):
    """None-to-empty-string for CSV friendliness."""
    return "" if value is None else value
