"""Lazy report-row sources for simulation results.

Building the Task/Machine report rows — one 17-key dict per task, one per
machine — used to happen eagerly inside ``_build_result``, costing a
measurable slice of small benchmark tiers even when nobody read the rows.
A :class:`RecordsSource` instead captures the (collector, cluster) pairs a
finished run produced and materialises the rows on first access; the result
dataclasses expose them through ``functools.cached_property``, so consumers
see the exact same list objects they always did, just built on demand.

Pickling materialises the rows (``__reduce__``), so a result shipped across
a process boundary carries plain row lists rather than the collector/cluster
object graph.
"""

from __future__ import annotations

from operator import itemgetter
from typing import TYPE_CHECKING, Any, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from ..machines.cluster import Cluster
    from .collector import MetricsCollector

__all__ = ["RecordsSource"]


class RecordsSource:
    """On-demand builder of the Task/Machine report rows of one run.

    ``parts`` is a sequence of ``(cluster_label, collector, cluster)``
    triples — one for a single-cluster run (label ``None``: rows carry no
    ``"cluster"`` column), one per shard for a federated run (rows are
    tagged with the label and task rows are sorted by task id, exactly as
    the eager federation rollup did).
    """

    __slots__ = ("_parts",)

    def __init__(
        self,
        parts: Iterable[tuple[str | None, "MetricsCollector", "Cluster"]],
    ) -> None:
        self._parts = list(parts)

    def task_rows(self) -> list[dict[str, Any]]:
        parts = self._parts
        if len(parts) == 1 and parts[0][0] is None:
            return parts[0][1].task_records()
        rows: list[dict[str, Any]] = []
        for label, collector, _cluster in parts:
            for row in collector.task_records():
                row["cluster"] = label
                rows.append(row)
        rows.sort(key=itemgetter("task_id"))
        return rows

    def machine_rows(self) -> list[dict[str, Any]]:
        parts = self._parts
        if len(parts) == 1 and parts[0][0] is None:
            return parts[0][1].machine_records(parts[0][2])
        rows: list[dict[str, Any]] = []
        for label, collector, cluster in parts:
            for row in collector.machine_records(cluster):
                row["cluster"] = label
                rows.append(row)
        return rows

    def __reduce__(self):
        return (_materialized, (self.task_rows(), self.machine_rows()))


class _MaterializedRecords:
    """A :class:`RecordsSource` stand-in holding pre-built rows (pickling)."""

    __slots__ = ("_task_rows", "_machine_rows")

    def __init__(
        self,
        task_rows: list[dict[str, Any]],
        machine_rows: list[dict[str, Any]],
    ) -> None:
        self._task_rows = task_rows
        self._machine_rows = machine_rows

    def task_rows(self) -> list[dict[str, Any]]:
        return self._task_rows

    def machine_rows(self) -> list[dict[str, Any]]:
        return self._machine_rows

    def __reduce__(self):
        return (_materialized, (self._task_rows, self._machine_rows))


def _materialized(
    task_rows: list[dict[str, Any]], machine_rows: list[dict[str, Any]]
) -> _MaterializedRecords:
    return _MaterializedRecords(task_rows, machine_rows)
