"""Event trace log — every individual action of a simulation, as data.

The GUI's Increment button exists so users can "analyze each specific action
of the simulation" (§3). :class:`EventLog` is the programmatic equivalent: an
observer that records one row per processed event (timestamp, kind, task,
machine, and the live queue/outcome counters), exportable as CSV and
queryable for timelines and diagnostics.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, TextIO

from ..core.events import Event, EventType

if TYPE_CHECKING:  # pragma: no cover
    from ..core.simulator import Simulator

__all__ = ["EventLog", "EventRecord"]


@dataclass(frozen=True)
class EventRecord:
    """One processed simulation event."""

    seq: int
    time: float
    event_type: str
    task_id: int | None
    task_type: str
    machine: str
    batch_queue_length: int
    completed: int
    cancelled: int
    missed: int


_COLUMNS = [
    "seq", "time", "event_type", "task_id", "task_type", "machine",
    "batch_queue_length", "completed", "cancelled", "missed",
]


class EventLog:
    """Observer collecting an :class:`EventRecord` per event.

    Attach at simulator construction::

        log = EventLog()
        sim = Simulator(..., observers=[log])
        sim.run()
        log.to_csv("trace.csv")
    """

    def __init__(self, *, max_records: int | None = None) -> None:
        self.records: list[EventRecord] = []
        self.max_records = max_records
        self._seq = 0

    # -- observer protocol --------------------------------------------------------

    def __call__(self, sim: "Simulator", event: Event) -> None:
        self._seq += 1
        if self.max_records is not None and len(self.records) >= self.max_records:
            return
        task_id: int | None = None
        task_type = ""
        machine = ""
        payload = event.payload
        if event.type in (EventType.TASK_ARRIVAL, EventType.TASK_DEADLINE):
            task_id, task_type = payload.id, payload.task_type.name
            if payload.machine is not None:
                machine = payload.machine.name
        elif event.type in (
            EventType.TASK_COMPLETION, EventType.NETWORK_DELIVERY
        ):
            m, task = payload
            task_id, task_type, machine = task.id, task.task_type.name, m.name
        elif event.type in (
            EventType.MACHINE_FAILURE, EventType.MACHINE_REPAIR
        ):
            machine = payload.name
        counts = sim.counts()
        self.records.append(
            EventRecord(
                seq=self._seq,
                time=event.time,
                event_type=event.type.value,
                task_id=task_id,
                task_type=task_type,
                machine=machine,
                batch_queue_length=len(sim.batch_queue),
                completed=counts["completed"],
                cancelled=counts["cancelled"],
                missed=counts["missed"],
            )
        )

    # -- queries -------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def of_type(self, event_type: EventType | str) -> list[EventRecord]:
        key = (
            event_type.value
            if isinstance(event_type, EventType)
            else event_type
        )
        return [r for r in self.records if r.event_type == key]

    def for_task(self, task_id: int) -> list[EventRecord]:
        """The life story of one task, in event order."""
        return [r for r in self.records if r.task_id == task_id]

    def peak_backlog(self) -> int:
        """Largest batch-queue length observed."""
        return max((r.batch_queue_length for r in self.records), default=0)

    # -- export ----------------------------------------------------------------------

    def to_csv(self, target: str | Path | TextIO | None = None) -> str:
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(_COLUMNS)
        for r in self.records:
            writer.writerow(
                [
                    r.seq,
                    f"{r.time:.9g}",
                    r.event_type,
                    "" if r.task_id is None else r.task_id,
                    r.task_type,
                    r.machine,
                    r.batch_queue_length,
                    r.completed,
                    r.cancelled,
                    r.missed,
                ]
            )
        text = buffer.getvalue()
        if target is not None:
            if isinstance(target, (str, Path)):
                Path(target).write_text(text, encoding="utf-8")
            else:
                target.write(text)
        return text

    def to_text(self, limit: int = 40) -> str:
        """Human-readable trace (first *limit* rows)."""
        lines = [
            f"{'t':>10}  {'event':<18} {'task':>5} {'type':<8} {'machine':<12} "
            f"{'queue':>5}"
        ]
        for r in self.records[:limit]:
            lines.append(
                f"{r.time:10.3f}  {r.event_type:<18} "
                f"{'' if r.task_id is None else r.task_id:>5} "
                f"{r.task_type:<8} {r.machine:<12} {r.batch_queue_length:>5}"
            )
        if len(self.records) > limit:
            lines.append(f"... ({len(self.records) - limit} more)")
        return "\n".join(lines)
