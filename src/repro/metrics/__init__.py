"""Metrics, reports, energy accounting and statistics helpers."""

from .collector import MetricsCollector, SummaryMetrics
from .comparison import PolicyComparison, compare_policies
from .energy import EnergyBreakdown, energy_breakdown
from .event_log import EventLog, EventRecord
from .queueing import (
    md1_mean_wait,
    mg1_mean_wait,
    mm1_mean_in_system,
    mm1_mean_wait,
    utilization,
)
from .reports import Report, ReportBundle
from .rollup import global_energy, global_summary, routing_table
from .stats import SummaryStats, confidence_interval, jain_fairness, summarize

__all__ = [
    "global_summary",
    "global_energy",
    "routing_table",
    "MetricsCollector",
    "SummaryMetrics",
    "Report",
    "ReportBundle",
    "EnergyBreakdown",
    "energy_breakdown",
    "SummaryStats",
    "summarize",
    "confidence_interval",
    "jain_fairness",
    "PolicyComparison",
    "compare_policies",
    "EventLog",
    "EventRecord",
    "utilization",
    "mg1_mean_wait",
    "md1_mean_wait",
    "mm1_mean_wait",
    "mm1_mean_in_system",
]
