"""Energy accounting across a cluster.

Aggregates the per-machine :class:`~repro.machines.power.EnergyMeter` readings
into the quantities the paper's energy studies use: total/idle/busy energy,
per-machine-type breakdowns and efficiency metrics (energy per completed
task), feeding the E-X3 ablation and the energy columns of the reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..machines.cluster import Cluster

__all__ = ["EnergyBreakdown", "energy_breakdown"]


@dataclass(frozen=True)
class EnergyBreakdown:
    """Cluster-level energy decomposition (Joules)."""

    total: float
    idle: float
    busy: float
    by_machine: dict[str, float]
    by_machine_type: dict[str, float]

    @property
    def idle_fraction(self) -> float:
        """Share of energy burnt while idle (the waste a scheduler can cut)."""
        return self.idle / self.total if self.total > 0 else 0.0

    def as_dict(self) -> dict:
        out = {
            "total_energy": self.total,
            "idle_energy": self.idle,
            "busy_energy": self.busy,
            "idle_fraction": self.idle_fraction,
        }
        for name, value in sorted(self.by_machine_type.items()):
            out[f"energy[{name}]"] = value
        return out


def energy_breakdown(cluster: "Cluster") -> EnergyBreakdown:
    """Compute the energy decomposition of a (finished) cluster."""
    idle = 0.0
    busy = 0.0
    by_machine: dict[str, float] = {}
    by_type: dict[str, float] = {}
    for machine in cluster:
        meter = machine.energy
        idle += meter.idle_energy
        busy += meter.busy_energy
        by_machine[machine.name] = meter.total_energy
        type_name = machine.machine_type.name
        by_type[type_name] = by_type.get(type_name, 0.0) + meter.total_energy
    return EnergyBreakdown(
        total=idle + busy,
        idle=idle,
        busy=busy,
        by_machine=by_machine,
        by_machine_type=by_type,
    )
