"""Memory / multi-tenancy extension."""

from .allocation import fits_in_memory, memory_in_use, memory_pressure

__all__ = ["fits_in_memory", "memory_in_use", "memory_pressure"]
