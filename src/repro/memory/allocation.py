"""Memory admission model (multi-tenancy extension, DESIGN.md S18).

The paper cites its own Edge-MultiAI follow-up [22] which "extended E2C to
simulate the memory allocation policies of multi-tenant applications". The
admission model here: a machine type may declare a memory capacity (MB); a
task may be admitted to a machine's queue only if its type's resident
footprint fits beside the footprints of the queued + running tasks. Tasks
refused for memory stay in the batch queue and are retried on later
scheduling passes (the "wait" policy), mirroring how a memory-saturated edge
node defers new tenants.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from ..tasks.task import Task

if TYPE_CHECKING:  # pragma: no cover
    from ..machines.machine import Machine

__all__ = ["memory_in_use", "fits_in_memory", "memory_pressure"]


def memory_in_use(machine: "Machine") -> float:
    """MB held by the machine's queued + running tasks."""
    used = sum(t.task_type.memory for t in machine.queue)
    if machine.running is not None:
        used += machine.running.task_type.memory
    return used


def fits_in_memory(machine: "Machine", task: Task) -> bool:
    """True iff *task*'s footprint fits under the machine's capacity.

    Machines without a declared capacity (0) are unconstrained.
    """
    capacity = machine.machine_type.memory_capacity
    if capacity <= 0:
        return True
    return memory_in_use(machine) + task.task_type.memory <= capacity


def memory_pressure(machines: Iterable["Machine"]) -> dict[str, float]:
    """Per-machine occupancy fraction (0 for unconstrained machines)."""
    out: dict[str, float] = {}
    for machine in machines:
        capacity = machine.machine_type.memory_capacity
        out[machine.name] = (
            memory_in_use(machine) / capacity if capacity > 0 else 0.0
        )
    return out
