"""E2C-Repro: a discrete-event simulator for heterogeneous computing systems.

A from-scratch reproduction of *"E2C: A Visual Simulator to Reinforce
Education of Heterogeneous Computing Systems"* (Mokhtari et al., IPDPSW 2023,
arXiv:2303.10901): the simulation engine, the EET heterogeneity model, the
workload generator, every scheduling policy the paper names (immediate: FCFS,
MECT, MEET; batch: MM, MMU, MSD, ELARE, FELARE) plus the classic baselines,
the energy model, the report subsystem, a terminal visual front-end, and the
education layer (assignments, quizzes, surveys) behind the paper's
evaluation.

Quickstart::

    from repro import Scenario, generate_eet_cvb

    eet = generate_eet_cvb(3, 4, seed=7)
    scenario = Scenario(
        eet=eet,
        machine_counts={n: 1 for n in eet.machine_type_names},
        scheduler="MECT",
        generator={"duration": 200.0, "intensity": "medium"},
        seed=42,
    )
    result = scenario.run()
    print(result.summary.completion_rate)
    print(result.reports.summary_report().to_text())
"""

from .core import (
    ConfigurationError,
    E2CError,
    EETError,
    Event,
    EventQueue,
    EventType,
    IncompatibleWorkloadError,
    Scenario,
    SchedulingError,
    SimulationClock,
    SimulationController,
    SimulationResult,
    SimulationStateError,
    Simulator,
    UnknownScenarioError,
    UnknownSchedulerError,
    WorkloadError,
)
from .experiments import (
    CampaignResult,
    CampaignRunner,
    CampaignSpec,
    ScenarioRef,
    run_campaign,
)
from .federation import (
    ClusterSpec,
    FederatedSimulationResult,
    FederatedSimulator,
    FederationSpec,
)
from .machines import (
    UNBOUNDED,
    Cluster,
    EETMatrix,
    FailureModel,
    Machine,
    MachineType,
    PowerProfile,
    generate_eet_cvb,
    generate_eet_range_based,
)
from .metrics import (
    MetricsCollector,
    PolicyComparison,
    Report,
    ReportBundle,
    SummaryMetrics,
    compare_policies,
    confidence_interval,
    energy_breakdown,
    jain_fairness,
    summarize,
)
from .scenarios import (
    available_scenarios,
    build_scenario,
    register_scenario,
)
from .scheduling import (
    Assignment,
    BatchScheduler,
    ImmediateScheduler,
    Scheduler,
    SchedulingContext,
    SchedulingMode,
    available_schedulers,
    create_scheduler,
    register_scheduler,
)
from .tasks import (
    INTENSITY_LEVELS,
    PoissonProcess,
    Task,
    TaskStatus,
    TaskType,
    TaskTypeSpec,
    Workload,
    WorkloadGenerator,
    read_workload_csv,
    write_workload_csv,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # engine
    "Simulator",
    "SimulationResult",
    "SimulationController",
    "Scenario",
    "SimulationClock",
    "EventQueue",
    "Event",
    "EventType",
    # federation
    "FederationSpec",
    "ClusterSpec",
    "FederatedSimulator",
    "FederatedSimulationResult",
    # machines
    "EETMatrix",
    "generate_eet_cvb",
    "generate_eet_range_based",
    "Cluster",
    "Machine",
    "MachineType",
    "PowerProfile",
    "UNBOUNDED",
    # tasks
    "Task",
    "TaskStatus",
    "TaskType",
    "Workload",
    "WorkloadGenerator",
    "TaskTypeSpec",
    "PoissonProcess",
    "INTENSITY_LEVELS",
    "read_workload_csv",
    "write_workload_csv",
    # scheduling
    "Scheduler",
    "ImmediateScheduler",
    "BatchScheduler",
    "SchedulingMode",
    "SchedulingContext",
    "Assignment",
    "register_scheduler",
    "create_scheduler",
    "available_schedulers",
    # metrics
    "MetricsCollector",
    "SummaryMetrics",
    "Report",
    "ReportBundle",
    "summarize",
    "confidence_interval",
    "jain_fairness",
    "energy_breakdown",
    "PolicyComparison",
    "compare_policies",
    # scenarios
    "register_scenario",
    "build_scenario",
    "available_scenarios",
    # experiments
    "CampaignSpec",
    "ScenarioRef",
    "CampaignRunner",
    "CampaignResult",
    "run_campaign",
    # extensions
    "FailureModel",
    # errors
    "E2CError",
    "ConfigurationError",
    "WorkloadError",
    "EETError",
    "IncompatibleWorkloadError",
    "SchedulingError",
    "UnknownSchedulerError",
    "UnknownScenarioError",
    "SimulationStateError",
]
