"""Interactive simulation controller — the GUI control bar, headless.

The E2C GUI exposes Play (run / pause toggle), an Increment button ("perform
the next individual step"), Reset ("begin a new simulation, also allowing you
to load a new EET and/or workload"), and a speed dial (§3). This controller
provides exactly those semantics over any :class:`~repro.core.simulator.Simulator`:

* :meth:`play` — advance continuously; with a positive ``speed`` the
  controller sleeps so one simulated second takes ``1/speed`` wall seconds
  (the speed dial); with ``speed=0`` it free-runs.
* :meth:`pause` / the ``paused`` flag — cooperative: ``play`` returns at the
  next event boundary.
* :meth:`increment` — one event (the Increment button).
* :meth:`reset` — build a fresh simulator from the factory, optionally with a
  new workload, mirroring the Reset button's "load a new EET and/or workload".

A ``frame_callback(simulator, event)`` hook fires after every processed event;
the ASCII animation (:mod:`repro.viz.animation`) plugs in there.
"""

from __future__ import annotations

import time as _time
from typing import Callable

from .errors import ConfigurationError, SimulationStateError
from .events import Event
from .simulator import SimulationResult, Simulator

__all__ = ["SimulationController"]

FrameCallback = Callable[[Simulator, Event], None]


class SimulationController:
    """Play/pause/step/reset façade over a rebuildable simulator."""

    def __init__(
        self,
        factory: Callable[[], Simulator],
        *,
        speed: float = 0.0,
        frame_callback: FrameCallback | None = None,
        sleeper: Callable[[float], None] = _time.sleep,
    ) -> None:
        """
        Parameters
        ----------
        factory:
            Zero-argument callable returning a *fresh* simulator; called at
            construction and by :meth:`reset`.
        speed:
            Simulated seconds per wall second; 0 disables pacing entirely.
        frame_callback:
            Invoked after each processed event (animation hook).
        sleeper:
            Injection point for tests (defaults to ``time.sleep``).
        """
        if speed < 0:
            raise ConfigurationError(f"speed must be >= 0, got {speed}")
        self._factory = factory
        self.speed = speed
        self.frame_callback = frame_callback
        self._sleep = sleeper
        self.paused = False
        self.simulator = factory()

    # -- control buttons -----------------------------------------------------------

    def increment(self) -> Event | None:
        """Process one event (the Increment button); None when finished."""
        event = self.simulator.step()
        if event is not None and self.frame_callback is not None:
            self.frame_callback(self.simulator, event)
        return event

    def play(self, *, max_events: int | None = None) -> bool:
        """Run until finished, paused, or *max_events* processed.

        Returns True if the simulation finished. Pressing "Play" during a run
        corresponds to setting :attr:`paused` (e.g. from the frame callback)
        — the loop stops at the next event boundary.
        """
        self.paused = False
        processed = 0
        while not self.simulator.is_finished and not self.paused:
            if max_events is not None and processed >= max_events:
                break
            before = self.simulator.now
            event = self.increment()
            if event is None:
                break
            processed += 1
            if self.speed > 0:
                sim_dt = event.time - before
                if sim_dt > 0:
                    self._sleep(sim_dt / self.speed)
        return self.simulator.is_finished

    def pause(self) -> None:
        """Request the current :meth:`play` loop to stop (cooperative)."""
        self.paused = True

    def set_speed(self, speed: float) -> None:
        """The speed dial: simulated seconds per wall second (0 = free run)."""
        if speed < 0:
            raise ConfigurationError(f"speed must be >= 0, got {speed}")
        self.speed = speed

    def reset(
        self, factory: Callable[[], Simulator] | None = None
    ) -> Simulator:
        """Discard the current run and build a fresh simulator.

        Passing a new *factory* mirrors loading a new EET/workload from the
        Reset dialog; otherwise the original scenario replays (identical
        seed ⇒ identical trace).
        """
        if factory is not None:
            self._factory = factory
        self.paused = False
        self.simulator = self._factory()
        return self.simulator

    # -- conveniences -----------------------------------------------------------------

    def run_to_completion(self) -> SimulationResult:
        """Play with pacing disabled and return the result."""
        speed, self.speed = self.speed, 0.0
        try:
            finished = self.play()
        finally:
            self.speed = speed
        if not finished:
            raise SimulationStateError("run_to_completion was paused mid-run")
        return self.simulator.result()

    @property
    def now(self) -> float:
        return self.simulator.now

    @property
    def is_finished(self) -> bool:
        return self.simulator.is_finished
