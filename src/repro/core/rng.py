"""Seeded random-number utilities.

Every stochastic component (workload generation, EET synthesis, execution-time
noise, cohort models) draws from a :class:`numpy.random.Generator` created
here, so a scenario seed fully determines the simulation trace. Independent
substreams are derived with ``spawn`` to keep components decoupled: adding a
draw to one component never perturbs another.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["make_rng", "spawn", "derive_seed"]


def make_rng(seed: int | None | np.random.Generator = None) -> np.random.Generator:
    """Return a NumPy Generator from a seed, None, or an existing Generator."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive *n* statistically independent child generators from *rng*."""
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]


def derive_seed(seed: int | None, *labels: int | str) -> int | None:
    """Deterministically derive a sub-seed from *seed* and a label path.

    Used where a component needs a plain integer seed (e.g. to persist in a
    report header) rather than a Generator. Returns None if *seed* is None.
    """
    if seed is None:
        return None
    mix = np.random.SeedSequence(
        [seed] + [_label_to_int(label) for label in labels]
    )
    return int(mix.generate_state(1, dtype=np.uint32)[0])


def _label_to_int(label: int | str) -> int:
    if isinstance(label, int):
        return label
    # Stable, platform-independent string hash (Python's hash() is salted).
    acc = 0
    for ch in str(label):
        acc = (acc * 131 + ord(ch)) % (2**31 - 1)
    return acc


def choice_index(
    rng: np.random.Generator, weights: Sequence[float]
) -> int:
    """Draw an index proportionally to *weights* (need not be normalised)."""
    w = np.asarray(weights, dtype=float)
    if w.ndim != 1 or w.size == 0:
        raise ValueError("weights must be a non-empty 1-D sequence")
    if np.any(w < 0) or not np.isfinite(w).all():
        raise ValueError("weights must be finite and non-negative")
    total = w.sum()
    if total <= 0:
        raise ValueError("weights must not sum to zero")
    return int(rng.choice(w.size, p=w / total))
