"""Exception hierarchy for the E2C reproduction.

All library errors derive from :class:`E2CError` so callers can catch a single
base class. Sub-classes are grouped by subsystem: configuration, workload/EET
compatibility, scheduling, and simulation-state misuse (e.g. stepping a
finished simulation).
"""

from __future__ import annotations

__all__ = [
    "E2CError",
    "ConfigurationError",
    "WorkloadError",
    "EETError",
    "IncompatibleWorkloadError",
    "SchedulingError",
    "UnknownSchedulerError",
    "UnknownGatewayError",
    "UnknownEvictionPolicyError",
    "UnknownScenarioError",
    "SimulationStateError",
    "ReportError",
    "ServiceError",
    "UnknownJobError",
]


class E2CError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(E2CError):
    """A scenario or component was configured with invalid parameters."""


class WorkloadError(E2CError):
    """A workload trace is malformed (bad columns, negative times, ...)."""


class EETError(E2CError):
    """An EET matrix is malformed (non-positive entries, bad shape, ...)."""


class IncompatibleWorkloadError(WorkloadError):
    """The workload references task types that the EET matrix does not define.

    Mirrors the paper's requirement (Fig. 2): "EET and Workload files must be
    compatible ... there can be no task type within the workload that is not
    defined within the EET".
    """


class SchedulingError(E2CError):
    """A scheduling policy produced an invalid decision."""


class UnknownSchedulerError(SchedulingError, KeyError):
    """Requested scheduler name is not present in the registry."""


class UnknownGatewayError(SchedulingError, KeyError):
    """Requested gateway (inter-cluster offloading) policy is not registered."""


class UnknownEvictionPolicyError(SchedulingError, KeyError):
    """Requested migration eviction policy is not present in the registry."""


class UnknownScenarioError(ConfigurationError, KeyError):
    """Requested scenario preset name is not present in the registry."""


class SimulationStateError(E2CError):
    """An operation was attempted in an invalid simulator state."""


class ReportError(E2CError):
    """Report generation or export failed."""


class ServiceError(E2CError):
    """The campaign service was asked something it cannot do.

    Raised by :mod:`repro.service` for protocol misuse: submitting a spec the
    service cannot interpret, asking for the result of a job that has not
    finished, or operating a closed service.
    """


class UnknownJobError(ServiceError, KeyError):
    """Requested job id is not known to the service."""
