"""Generic by-name plug-in registry.

The scheduler registry (:mod:`repro.scheduling.registry`) and the gateway
registry (:mod:`repro.scheduling.federation.registry`) grew as twins:
decorator registration, alias handling, case-insensitive lookup, and the
"unknown name" / "bad parameters" error surfaces were ~100 duplicated
lines. :class:`NameRegistry` is the one implementation both instantiate,
parameterised by the registered base class (the type parameter), the name
canonicaliser, and the lookup error type — so a fix to alias collision or
error wording lands in every registry at once.

The scenario registry (:mod:`repro.scenarios.registry`) registers *factory
functions*, not classes, and keeps its own implementation.
"""

from __future__ import annotations

from typing import Any, Callable, Generic, Iterable, TypeVar

from .errors import ConfigurationError

__all__ = ["NameRegistry"]

T = TypeVar("T")


def _default_canonicalise(name: str) -> str:
    return name.upper()


class NameRegistry(Generic[T]):
    """Mapping from canonical names (and aliases) to registered classes.

    Parameters
    ----------
    kind:
        Short noun used in registration error messages ("scheduler",
        "gateway").
    not_found_error:
        Exception type raised by :meth:`resolve` for unknown names (e.g.
        :class:`~repro.core.errors.UnknownSchedulerError`).
    canonicalise:
        Name normaliser applied to registered names, aliases and lookups
        (default: uppercase; the gateway registry also folds ``-`` to
        ``_``).
    kind_full:
        Longer noun for lookup/instantiation error messages ("gateway
        policy"); defaults to ``kind``.
    """

    def __init__(
        self,
        *,
        kind: str,
        not_found_error: type[Exception],
        canonicalise: Callable[[str], str] | None = None,
        kind_full: str | None = None,
    ) -> None:
        self._kind = kind
        self._kind_full = kind_full if kind_full is not None else kind
        self._not_found_error = not_found_error
        self._canonicalise = (
            canonicalise if canonicalise is not None else _default_canonicalise
        )
        self._registry: dict[str, type[T]] = {}
        self._aliases: dict[str, str] = {}

    # -- registration ------------------------------------------------------------------

    def register(
        self,
        cls: type[T] | None = None,
        *,
        aliases: Iterable[str] = (),
    ) -> Any:
        """Class decorator adding a class (by its ``name`` attribute).

        Usable bare (``@register``) or parameterised
        (``@register(aliases=("X",))``); idempotent for the same class.
        """

        def apply(klass: type[T]) -> type[T]:
            name = str(getattr(klass, "name", ""))
            if not name:
                raise ConfigurationError(
                    f"{klass.__name__} must define a non-empty 'name'"
                )
            key = self._canonicalise(name)
            existing = self._registry.get(key)
            if existing is not None and existing is not klass:
                raise ConfigurationError(
                    f"{self._kind} name {name!r} already registered to "
                    f"{existing.__name__}"
                )
            self._registry[key] = klass
            for alias in aliases:
                alias_key = self._canonicalise(alias)
                if alias_key in self._registry:
                    raise ConfigurationError(
                        f"alias {alias!r} collides with a registered "
                        f"{self._kind} name"
                    )
                owner = self._aliases.get(alias_key)
                if owner is not None and owner != key:
                    raise ConfigurationError(
                        f"alias {alias!r} already points to {owner}"
                    )
                self._aliases[alias_key] = key
            return klass

        if cls is not None:  # bare decorator form
            return apply(cls)
        return apply

    # -- lookup ------------------------------------------------------------------------

    def resolve(self, name: str) -> type[T]:
        """Class registered under *name* or one of its aliases."""
        key = self._canonicalise(name)
        key = self._aliases.get(key, key)
        try:
            return self._registry[key]
        except KeyError:
            raise self._not_found_error(
                f"unknown {self._kind_full} {name!r}; "
                f"available: {self.names()}"
            ) from None

    def create(self, name: str, **kwargs: Any) -> T:
        """Instantiate by registry name with constructor kwargs."""
        klass = self.resolve(name)
        try:
            return klass(**kwargs)
        except TypeError as exc:
            raise ConfigurationError(
                f"bad parameters for {self._kind_full} {name!r}: {exc}"
            ) from exc

    def names(
        self, predicate: Callable[[type[T]], bool] | None = None
    ) -> list[str]:
        """Sorted canonical names, optionally filtered by *predicate*."""
        return sorted(
            name
            for name, klass in self._registry.items()
            if predicate is None or predicate(klass)
        )
