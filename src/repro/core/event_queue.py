"""Future-event list: a binary heap with lazy cancellation.

Dropping a running task at its deadline invalidates that task's pending
completion event. Rather than O(n) heap surgery, cancelled events are marked
in a set and skipped on pop (lazy deletion) — the standard priority-queue
idiom, O(log n) per operation amortised.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator

from .errors import SimulationStateError
from .events import Event

__all__ = ["EventQueue"]


class EventQueue:
    """Min-heap of :class:`~repro.core.events.Event` ordered by ``sort_key``.

    Supports O(log n) push/pop and O(1) cancellation by event identity.

    The heap stores ``(key, event)`` pairs rather than bare events: tuple
    comparison runs entirely in C (the unique ``seq`` component guarantees
    the ``event`` element is never compared), eliminating the Python-level
    ``__lt__`` calls that previously accounted for ~40% of engine runtime.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[tuple[float, int, int], Event]] = []
        self._cancelled: set[int] = set()
        self._live = 0

    def __len__(self) -> int:
        """Number of live (non-cancelled) events."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, event: Event) -> Event:
        """Insert *event* and return it (handy for keeping a handle)."""
        heapq.heappush(self._heap, (event.key, event))
        self._live += 1
        return event

    def push_many(self, events: Iterable[Event]) -> None:
        """Bulk-insert events and re-heapify once — O(n) instead of the
        O(n log n) comparison work of n individual pushes (used for the
        initial arrival/deadline population)."""
        heap = self._heap
        before = len(heap)
        heap.extend((event.key, event) for event in events)
        self._live += len(heap) - before
        heapq.heapify(heap)

    def cancel(self, event: Event) -> bool:
        """Mark *event* cancelled. Returns False if already cancelled/popped."""
        if event.seq in self._cancelled:
            return False
        # An event that was already popped cannot be cancelled retroactively;
        # callers hold handles only to events they pushed, so membership in
        # the heap is implied unless it was popped. We track liveness lazily:
        # cancelling an already-popped event is a caller bug surfaced by the
        # _live counter going negative, which we guard against explicitly.
        self._cancelled.add(event.seq)
        self._live -= 1
        if self._live < 0:  # pragma: no cover - defensive
            raise SimulationStateError("cancelled an event that already fired")
        return True

    def is_cancelled(self, event: Event) -> bool:
        """True if *event* has been cancelled and will never fire."""
        return event.seq in self._cancelled

    def pop(self) -> Event:
        """Remove and return the earliest live event.

        Raises
        ------
        SimulationStateError
            If the queue holds no live events.
        """
        heap = self._heap
        cancelled = self._cancelled
        while heap:
            event = heapq.heappop(heap)[1]
            if cancelled and event.seq in cancelled:
                cancelled.discard(event.seq)
                continue
            self._live -= 1
            return event
        raise SimulationStateError("pop from an empty event queue")

    def peek(self) -> Event:
        """Return (without removing) the earliest live event."""
        heap = self._heap
        cancelled = self._cancelled
        while heap:
            event = heap[0][1]
            if cancelled and event.seq in cancelled:
                heapq.heappop(heap)
                cancelled.discard(event.seq)
                continue
            return event
        raise SimulationStateError("peek into an empty event queue")

    def next_time(self) -> float | None:
        """Timestamp of the next live event, or None if empty."""
        try:
            return self.peek().time
        except SimulationStateError:
            return None

    def drain(self) -> Iterator[Event]:
        """Pop every live event in order (useful in tests)."""
        while self:
            yield self.pop()

    def clear(self) -> None:
        """Remove all events."""
        self._heap.clear()
        self._cancelled.clear()
        self._live = 0
