"""Event taxonomy for the discrete-event simulation kernel.

The future-event list orders events by ``(time, priority, seq)``. Priorities
encode the paper's tie-break semantics at equal timestamps:

* a task completing exactly at its deadline counts as *on time*, therefore
  ``TASK_COMPLETION`` sorts before ``TASK_DEADLINE``;
* arrivals are processed after completions (a machine freed at *t* is visible
  to the scheduling pass triggered by an arrival at *t*) but before deadline
  sweeps, so a task arriving exactly at another task's deadline does not see
  stale queue state;
* control events (end-of-simulation markers, user hooks) come last.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = ["EventType", "Event", "EVENT_PRIORITY"]


class EventType(enum.Enum):
    """Kinds of events the simulator processes."""

    TASK_COMPLETION = "task_completion"
    MACHINE_REPAIR = "machine_repair"
    NETWORK_DELIVERY = "network_delivery"
    TASK_ARRIVAL = "task_arrival"
    TASK_DEADLINE = "task_deadline"
    MACHINE_FAILURE = "machine_failure"
    CONTROL = "control"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EventType.{self.name}"


#: Total order of event kinds at equal timestamps (lower fires first).
#: Repairs precede arrivals (an arrival at the repair instant sees the
#: machine up); failures follow deadlines (a task completing or expiring at
#: the failure instant resolves before the machine dies).
EVENT_PRIORITY: dict[EventType, int] = {
    EventType.TASK_COMPLETION: 0,
    EventType.MACHINE_REPAIR: 1,
    EventType.NETWORK_DELIVERY: 2,
    EventType.TASK_ARRIVAL: 3,
    EventType.TASK_DEADLINE: 4,
    EventType.MACHINE_FAILURE: 5,
    EventType.CONTROL: 6,
}

_seq_counter = itertools.count()


@dataclass(frozen=True, slots=True)
class Event:
    """A single simulation event.

    Attributes
    ----------
    time:
        Simulation timestamp at which the event fires.
    type:
        The :class:`EventType` of this event.
    payload:
        Event-specific data (a task, a machine, ...). Never inspected by the
        queue itself.
    seq:
        Monotonic tie-break counter; guarantees FIFO stability among events
        with identical ``(time, priority)``.
    """

    time: float
    type: EventType
    payload: Any = None
    seq: int = field(default_factory=lambda: next(_seq_counter))

    @property
    def priority(self) -> int:
        """Priority rank of this event's type (lower fires first)."""
        return EVENT_PRIORITY[self.type]

    def sort_key(self) -> tuple[float, int, int]:
        """Key under which the future-event list orders this event."""
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key() < other.sort_key()
