"""Event taxonomy for the discrete-event simulation kernel.

The future-event list orders events by ``(time, priority, seq)``. Priorities
encode the paper's tie-break semantics at equal timestamps:

* a task completing exactly at its deadline counts as *on time*, therefore
  ``TASK_COMPLETION`` sorts before ``TASK_DEADLINE``;
* arrivals are processed after completions (a machine freed at *t* is visible
  to the scheduling pass triggered by an arrival at *t*) but before deadline
  sweeps, so a task arriving exactly at another task's deadline does not see
  stale queue state;
* control events (end-of-simulation markers, user hooks) come last.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any

__all__ = ["EventType", "Event", "EVENT_PRIORITY"]


class EventType(enum.Enum):
    """Kinds of events the simulator processes."""

    TASK_COMPLETION = "task_completion"
    MACHINE_REPAIR = "machine_repair"
    NETWORK_DELIVERY = "network_delivery"
    LINK_TRANSFER = "link_transfer"
    TASK_ARRIVAL = "task_arrival"
    TASK_MIGRATION = "task_migration"
    TASK_DEADLINE = "task_deadline"
    MACHINE_FAILURE = "machine_failure"
    CROSS_TRAFFIC = "cross_traffic"
    CONTROL = "control"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EventType.{self.name}"


#: Total order of event kinds at equal timestamps (lower fires first).
#: Repairs precede arrivals (an arrival at the repair instant sees the
#: machine up); WAN link transfers precede arrivals (a task routed onto a
#: link at the instant a serialization finishes sees the link free);
#: migrations follow arrivals (a rebalance pass at an arrival instant sees
#: the freshly-queued task; a migrated task delivered alongside a local
#: arrival queues behind it) but precede deadlines (a task migrated and
#: expiring at the same instant is swept at its destination, not lost);
#: failures follow deadlines (a task completing or expiring at the failure
#: instant resolves before the machine dies); WAN cross-traffic capacity
#: changes fire after everything that was scheduled under the outgoing
#: rate (a serialisation finishing exactly at an epoch boundary completes
#: under the rate it was integrated with) but before CONTROL markers.
EVENT_PRIORITY: dict[EventType, int] = {
    EventType.TASK_COMPLETION: 0,
    EventType.MACHINE_REPAIR: 1,
    EventType.NETWORK_DELIVERY: 2,
    EventType.LINK_TRANSFER: 3,
    EventType.TASK_ARRIVAL: 4,
    EventType.TASK_MIGRATION: 5,
    EventType.TASK_DEADLINE: 6,
    EventType.MACHINE_FAILURE: 7,
    EventType.CROSS_TRAFFIC: 8,
    EventType.CONTROL: 9,
}

# Mirror the priority table onto the members: Event.__init__ runs for every
# scheduled event, and the plain attribute read beats the enum-keyed dict
# lookup (enum hashing goes through the member name).
for _event_type, _rank in EVENT_PRIORITY.items():
    _event_type._priority = _rank

_seq_counter = itertools.count()

_set = object.__setattr__  # bypasses the frozen __setattr__ during __init__


class Event:
    """A single simulation event.

    Hand-written immutable slots class (not a dataclass): the engine creates
    two events per task up front plus one per execution, so construction and
    comparison are hot. The ``(time, priority, seq)`` ordering key is
    precomputed once here; the future-event list compares hundreds of
    thousands of keys per run, and deriving the tuple per comparison
    (attribute + enum-dict lookups) previously dominated the engine profile.

    Attributes
    ----------
    time:
        Simulation timestamp at which the event fires.
    type:
        The :class:`EventType` of this event.
    payload:
        Event-specific data (a task, a machine, ...). Never inspected by the
        queue itself.
    seq:
        Monotonic tie-break counter; guarantees FIFO stability among events
        with identical ``(time, priority)``.
    key:
        The precomputed ``(time, priority, seq)`` ordering key.
    cluster:
        Routing address in a federated simulation (see
        :mod:`repro.federation`). A plain ``int`` is the owning cluster
        shard — the federation loop routes the event straight to that
        shard's handlers. A *cluster path* (non-empty ``tuple`` of node
        ids, root-most first) addresses an event still descending a
        hierarchical federation: the remaining hops toward its destination
        leaf (:mod:`repro.federation.hierarchy`). A single-element path is
        always stamped in its ``int`` form, so flat federations — depth-1
        paths — carry byte-identical events to pre-hierarchy builds.
        ``None`` for single-cluster simulations and for federation-level
        events (gateway arrivals, global deadlines). Not part of the
        ordering key.
    """

    __slots__ = ("time", "type", "payload", "seq", "key", "cluster")

    time: float
    type: EventType
    payload: Any
    seq: int
    key: tuple[float, int, int]
    cluster: int | tuple[int, ...] | None

    def __init__(
        self,
        time: float,
        type: EventType,
        payload: Any = None,
        seq: int | None = None,
        cluster: int | tuple[int, ...] | None = None,
    ) -> None:
        if seq is None:
            seq = next(_seq_counter)
        _set(self, "time", time)
        _set(self, "type", type)
        _set(self, "payload", payload)
        _set(self, "seq", seq)
        _set(self, "key", (time, type._priority, seq))
        _set(self, "cluster", cluster)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError(f"Event is immutable; cannot set {name!r}")

    def __reduce__(self):
        # The frozen __setattr__ breaks default pickling/deepcopying;
        # reconstruct through __init__ with the original seq instead.
        return (
            Event,
            (self.time, self.type, self.payload, self.seq, self.cluster),
        )

    def __delattr__(self, name: str) -> None:
        raise AttributeError(f"Event is immutable; cannot delete {name!r}")

    @property
    def priority(self) -> int:
        """Priority rank of this event's type (lower fires first)."""
        return self.key[1]

    def sort_key(self) -> tuple[float, int, int]:
        """Key under which the future-event list orders this event."""
        return self.key

    def __lt__(self, other: "Event") -> bool:
        return self.key < other.key

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Event(time={self.time!r}, type={self.type!r}, "
            f"payload={self.payload!r}, seq={self.seq!r})"
        )
