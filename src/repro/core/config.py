"""Scenario configuration: declarative description of a whole experiment.

A :class:`Scenario` bundles everything the GUI collects before "Play": the
EET matrix, the machine population (with power profiles), the scheduler and
its parameters, the machine-queue capacity, and the workload (an explicit
trace or a generator recipe). Scenarios serialise to/from JSON so experiments
are reproducible artifacts, and they are the unit the CLI (`e2c-sim run`)
consumes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping

import numpy as np

from ..machines.cluster import Cluster
from ..machines.eet import EETMatrix
from ..machines.execution import execution_model_from_spec
from ..machines.failures import FailureModel
from ..machines.machine_queue import UNBOUNDED
from ..machines.power import PowerProfile
from ..scheduling.base import Scheduler, SchedulingMode
from ..scheduling.overhead import SchedulingOverhead
from ..scheduling.registry import create_scheduler
from ..tasks.generator import TaskTypeSpec, WorkloadGenerator
from ..tasks.task_type import TaskType
from ..tasks.trace_io import TraceSpec, read_workload_csv
from ..tasks.workload import Workload
from .errors import ConfigurationError
from .jsonio import load_json_source
from .rng import derive_seed
from .simulator import SimulationResult, Simulator

if TYPE_CHECKING:  # pragma: no cover
    from ..federation.result import FederatedSimulationResult
    from ..federation.simulator import FederatedSimulator
    from ..federation.spec import FederationSpec

__all__ = ["Scenario"]


@dataclass
class Scenario:
    """A fully-specified, reproducible simulation experiment.

    Attributes
    ----------
    eet:
        The EET matrix (task types × machine types).
    machine_counts:
        Machines per machine type, e.g. ``{"CPU": 2, "GPU": 1}``.
    scheduler:
        Registry name of the policy (e.g. "MECT", "MM").
    scheduler_params:
        Keyword arguments for the policy constructor.
    queue_capacity:
        Machine-queue capacity for batch mode (UNBOUNDED default; immediate
        mode always forces UNBOUNDED).
    workload:
        Explicit task trace; exactly one of ``workload``, ``generator``,
        ``trace`` must be set.
    generator:
        Recipe dict: ``{"duration": 400, "intensity": "high",
        "specs": [...], "n_tasks": optional}``.
    trace:
        A :class:`~repro.tasks.trace_io.TraceSpec` (or its dict form)
        importing a cluster-trace CSV at build time.
    power_profiles:
        Per machine type; defaults to zero-power profiles.
    seed:
        Master seed; workload generation and execution noise derive from it.
    drop_on_deadline:
        Paper semantics (cancel/drop on deadline) when True; when False tasks
        run to completion and lateness is recorded instead.
    execution_model:
        Spec dict for runtime noise (None ⇒ deterministic).
    enable_network:
        Activate the communication extension (uses each machine type's
        latency/bandwidth and the task types' data sizes).
    memory_capacities / network:
        Per-machine-type extension parameters.
    """

    eet: EETMatrix
    machine_counts: Mapping[str, int]
    scheduler: str
    scheduler_params: dict = field(default_factory=dict)
    queue_capacity: float = UNBOUNDED
    workload: Workload | None = None
    generator: dict | None = None
    trace: TraceSpec | None = None
    power_profiles: dict[str, PowerProfile] = field(default_factory=dict)
    seed: int | None = None
    drop_on_deadline: bool = True
    execution_model: dict | None = None
    enable_network: bool = False
    memory_capacities: dict[str, float] = field(default_factory=dict)
    network: dict[str, tuple[float, float]] = field(default_factory=dict)
    failure_model: FailureModel | None = None
    scheduling_overhead: dict | None = None
    federation: "FederationSpec | None" = None
    name: str = "scenario"

    def __post_init__(self) -> None:
        if self.trace is not None and not isinstance(self.trace, TraceSpec):
            self.trace = TraceSpec.from_dict(self.trace)
        sources = sum(
            x is not None for x in (self.workload, self.generator, self.trace)
        )
        if sources != 1:
            raise ConfigurationError(
                "exactly one of 'workload', 'generator' or 'trace' must be "
                f"provided, got {sources}"
            )
        unknown = set(self.machine_counts) - set(self.eet.machine_type_names)
        if unknown:
            raise ConfigurationError(
                f"machine_counts reference unknown machine types {sorted(unknown)}"
            )
        if self.workload is not None:
            self.workload.validate_against_eet(self.eet)
        if self.federation is not None:
            totals = self.federation.total_machine_counts()
            declared = {
                name: int(count)
                for name, count in dict(self.machine_counts).items()
                if int(count) > 0
            }
            partitioned = {n: c for n, c in totals.items() if c > 0}
            if declared != partitioned:
                raise ConfigurationError(
                    f"federation clusters partition {partitioned}, but the "
                    f"scenario declares machine_counts {declared}; the "
                    "cluster counts must sum to the scenario's totals"
                )

    # -- builders --------------------------------------------------------------------

    def build_cluster(self) -> Cluster:
        return Cluster.build(
            self.eet,
            dict(self.machine_counts),
            power_profiles=self.power_profiles,
            queue_capacity=self.queue_capacity,
            memory_capacities=self.memory_capacities,
            network=self.network,
        )

    def build_workload(self, *, replication: int = 0) -> Workload:
        """Materialise the task trace.

        ``replication`` offsets the derived seed so replicated runs of the
        same scenario draw independent workloads while staying reproducible.

        Generation is a pure function of (EET, machine counts, recipe, seed,
        replication), so repeated builds of the same scenario — replications,
        benchmark rounds, campaign cells — memoise the generated trace and
        hand out pristine copies instead of re-sampling the arrival
        processes each time.
        """
        if self.workload is not None:
            return self.workload.fresh_copy()
        if self.trace is not None:
            cache_key = (
                replication,
                self.seed,
                id(self.eet),
                repr(self.trace),
            )
            cached = getattr(self, "_workload_cache", None)
            if cached is not None and cached[0] == cache_key:
                return cached[1].fresh_copy()
            workload = self.trace.build_workload(
                self.eet, seed=self.seed, replication=replication
            )
            workload.validate_against_eet(self.eet)
            self._workload_cache = (cache_key, workload)
            return workload.fresh_copy()
        assert self.generator is not None
        cache_key = (
            replication,
            self.seed,
            id(self.eet),
            repr(dict(self.machine_counts)),
            repr(self.generator),
        )
        cached = getattr(self, "_workload_cache", None)
        if cached is not None and cached[0] == cache_key:
            return cached[1].fresh_copy()
        recipe = dict(self.generator)
        specs = [
            TaskTypeSpec.from_dict(s) if isinstance(s, Mapping) else s
            for s in recipe.get("specs", [])
        ] or None
        gen = WorkloadGenerator(
            self.eet,
            specs,
            machine_counts=[
                self.machine_counts.get(n, 0)
                for n in self.eet.machine_type_names
            ],
        )
        seed = derive_seed(self.seed, "workload", replication)
        if "n_tasks" in recipe:
            workload = gen.generate_count(
                recipe["n_tasks"],
                intensity=recipe.get("intensity", "medium"),
                seed=seed,
            )
        elif "duration" not in recipe:
            raise ConfigurationError(
                "generator recipe needs 'duration' or 'n_tasks'"
            )
        else:
            workload = gen.generate(
                recipe["duration"],
                intensity=recipe.get("intensity", "medium"),
                seed=seed,
            )
        self._workload_cache = (cache_key, workload)
        return workload.fresh_copy()

    def build_scheduler(self) -> Scheduler:
        return create_scheduler(self.scheduler, **self.scheduler_params)

    def build_simulator(
        self, *, replication: int = 0, parallel_workers: int | None = None
    ) -> "Simulator | FederatedSimulator":
        if self.federation is not None:
            return self._build_federated_simulator(
                replication=replication, parallel_workers=parallel_workers
            )
        if parallel_workers is not None:
            raise ConfigurationError(
                "parallel_workers applies only to federated scenarios"
            )
        scheduler = self.build_scheduler()
        queue_capacity = (
            UNBOUNDED
            if scheduler.mode is SchedulingMode.IMMEDIATE
            else self.queue_capacity
        )
        return Simulator(
            cluster=self.build_cluster(),
            workload=self.build_workload(replication=replication),
            scheduler=scheduler,
            seed=derive_seed(self.seed, "simulation", replication),
            drop_on_deadline=self.drop_on_deadline,
            execution_model=execution_model_from_spec(self.execution_model),
            queue_capacity=queue_capacity,
            enable_network=self.enable_network,
            failure_model=self.failure_model,
            scheduling_overhead=SchedulingOverhead.from_spec(
                self.scheduling_overhead
            ),
        )

    def _build_federated_simulator(
        self, *, replication: int = 0, parallel_workers: int | None = None
    ) -> "FederatedSimulator":
        """Assemble the multi-cluster kernel for a federation-bearing scenario."""
        from ..federation.simulator import FederatedSimulator

        assert self.federation is not None
        if parallel_workers is not None:
            from ..federation.parallel import ParallelFederatedSimulator

            return ParallelFederatedSimulator(  # type: ignore[return-value]
                self.federation,
                self.eet,
                self.build_workload(replication=replication),
                workers=parallel_workers,
                seed=derive_seed(self.seed, "simulation", replication),
                drop_on_deadline=self.drop_on_deadline,
                execution_model=execution_model_from_spec(self.execution_model),
                queue_capacity=self.queue_capacity,
                enable_network=self.enable_network,
                failure_model=self.failure_model,
                scheduling_overhead=SchedulingOverhead.from_spec(
                    self.scheduling_overhead
                ),
                power_profiles=self.power_profiles,
                memory_capacities=self.memory_capacities,
                network=self.network,
                default_scheduler=self.scheduler,
                default_scheduler_params=self.scheduler_params,
            )
        if self.federation.children is not None:
            # Hierarchical federations route over tree uplinks; the serial
            # path-routing engine is the only one that supports them (the
            # parallel engine refuses above with its own explanation).
            from ..federation.hierarchy import HierarchicalFederatedSimulator

            engine: type[FederatedSimulator] = HierarchicalFederatedSimulator
        else:
            engine = FederatedSimulator
        return engine(
            spec=self.federation,
            eet=self.eet,
            workload=self.build_workload(replication=replication),
            seed=derive_seed(self.seed, "simulation", replication),
            drop_on_deadline=self.drop_on_deadline,
            execution_model=execution_model_from_spec(self.execution_model),
            queue_capacity=self.queue_capacity,
            enable_network=self.enable_network,
            failure_model=self.failure_model,
            scheduling_overhead=SchedulingOverhead.from_spec(
                self.scheduling_overhead
            ),
            power_profiles=self.power_profiles,
            memory_capacities=self.memory_capacities,
            network=self.network,
            default_scheduler=self.scheduler,
            default_scheduler_params=self.scheduler_params,
        )

    def run(
        self, *, replication: int = 0
    ) -> "SimulationResult | FederatedSimulationResult":
        """Build and run once; the one-liner most experiments need."""
        return self.build_simulator(replication=replication).run()

    def run_replications(self, n: int) -> list[SimulationResult]:
        """Run *n* independent replications (seeds derived from the master)."""
        if n <= 0:
            raise ConfigurationError(f"need at least 1 replication, got {n}")
        return [self.run(replication=i) for i in range(n)]

    # -- JSON round-trip ----------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        if self.workload is not None:
            task_rows = []
            for t in self.workload:
                row: dict[str, Any] = {
                    "task_id": t.id,
                    "task_type": t.task_type.name,
                    "arrival_time": t.arrival_time,
                    "deadline": t.deadline,
                }
                if t.extras:
                    row["extras"] = {k: v for k, v in t.extras}
                task_rows.append(row)
            workload_spec: Any = {"tasks": task_rows}
        else:
            workload_spec = None
        return {
            "name": self.name,
            "eet": {
                "task_types": [
                    {
                        "name": t.name,
                        "relative_deadline": t.relative_deadline,
                        "data_in": t.data_in,
                        "data_out": t.data_out,
                        "memory": t.memory,
                    }
                    for t in self.eet.task_types
                ],
                "machine_types": self.eet.machine_type_names,
                "values": self.eet.values.tolist(),
            },
            "machine_counts": dict(self.machine_counts),
            "scheduler": self.scheduler,
            "scheduler_params": dict(self.scheduler_params),
            "queue_capacity": (
                None if self.queue_capacity == UNBOUNDED else self.queue_capacity
            ),
            "workload": workload_spec,
            "generator": self.generator,
            "trace": None if self.trace is None else self.trace.to_dict(),
            "power_profiles": {
                name: {
                    "idle_watts": p.idle_watts,
                    "busy_watts": p.busy_watts,
                    "busy_watts_by_type": dict(p.busy_watts_by_type),
                }
                for name, p in self.power_profiles.items()
            },
            "seed": self.seed,
            "drop_on_deadline": self.drop_on_deadline,
            "execution_model": self.execution_model,
            "enable_network": self.enable_network,
            "memory_capacities": dict(self.memory_capacities),
            "network": {k: list(v) for k, v in self.network.items()},
            "scheduling_overhead": self.scheduling_overhead,
            "federation": (
                None if self.federation is None else self.federation.to_dict()
            ),
            "failure_model": (
                None
                if self.failure_model is None
                else {
                    "mtbf": self.failure_model.mtbf,
                    "mttr": self.failure_model.mttr,
                    "per_machine_type": {
                        k: list(v)
                        for k, v in self.failure_model.per_machine_type.items()
                    },
                }
            ),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"scenario must be a JSON object, got {type(data).__name__}"
            )
        eet_spec = data["eet"]
        task_types = [
            TaskType(
                name=t["name"],
                index=i,
                relative_deadline=t.get("relative_deadline"),
                data_in=t.get("data_in", 0.0),
                data_out=t.get("data_out", 0.0),
                memory=t.get("memory", 0.0),
            )
            for i, t in enumerate(eet_spec["task_types"])
        ]
        eet = EETMatrix(
            np.array(eet_spec["values"], dtype=float),
            task_types,
            eet_spec["machine_types"],
        )
        workload = None
        if data.get("workload") is not None:
            from ..tasks.trace_io import workload_from_rows

            workload = workload_from_rows(
                data["workload"]["tasks"], task_types=task_types
            )
        power = {
            name: PowerProfile(
                idle_watts=p.get("idle_watts", 0.0),
                busy_watts=p.get("busy_watts", 0.0),
                busy_watts_by_type=p.get("busy_watts_by_type", {}),
            )
            for name, p in data.get("power_profiles", {}).items()
        }
        capacity = data.get("queue_capacity")
        federation = None
        if data.get("federation") is not None:
            from ..federation.spec import FederationSpec

            federation = FederationSpec.from_dict(data["federation"])
        return cls(
            eet=eet,
            machine_counts=data["machine_counts"],
            scheduler=data["scheduler"],
            scheduler_params=data.get("scheduler_params", {}),
            queue_capacity=UNBOUNDED if capacity is None else capacity,
            workload=workload,
            generator=data.get("generator"),
            trace=data.get("trace"),
            power_profiles=power,
            seed=data.get("seed"),
            drop_on_deadline=data.get("drop_on_deadline", True),
            execution_model=data.get("execution_model"),
            enable_network=data.get("enable_network", False),
            memory_capacities=data.get("memory_capacities", {}),
            network={
                k: (v[0], v[1]) for k, v in data.get("network", {}).items()
            },
            scheduling_overhead=data.get("scheduling_overhead"),
            federation=federation,
            failure_model=(
                None
                if data.get("failure_model") is None
                else FailureModel(
                    mtbf=data["failure_model"]["mtbf"],
                    mttr=data["failure_model"]["mttr"],
                    per_machine_type={
                        k: (v[0], v[1])
                        for k, v in data["failure_model"]
                        .get("per_machine_type", {})
                        .items()
                    },
                )
            ),
            name=data.get("name", "scenario"),
        )

    def to_json(self, path: str | Path | None = None, *, indent: int = 2) -> str:
        text = json.dumps(self.to_dict(), indent=indent)
        if path is not None:
            Path(path).write_text(text, encoding="utf-8")
        return text

    @classmethod
    def from_json(cls, source: str | Path) -> "Scenario":
        """Load from a JSON file path or a JSON string."""
        return cls.from_dict(load_json_source(source, what="scenario"))

    def fingerprint(self) -> str:
        """Canonical content hash of this scenario (the service cache key).

        Two scenarios share a fingerprint exactly when the deterministic
        engine would produce identical results for them — display ``name``
        excluded, everything else (EET, machines, policy, workload recipe,
        seed, federation) included. See :mod:`repro.service.hashing`.
        """
        from ..service.hashing import scenario_hash

        return scenario_hash(self)

    # -- conveniences ------------------------------------------------------------------------

    @classmethod
    def from_csv_files(
        cls,
        eet_csv: str | Path,
        workload_csv: str | Path,
        scheduler: str,
        **kwargs,
    ) -> "Scenario":
        """The Fig-2 workflow: load EET and workload CSVs, pick a policy."""
        eet = EETMatrix.read_csv(eet_csv)
        workload = read_workload_csv(
            workload_csv,
            task_types=eet.task_types,
            default_relative_deadline=kwargs.pop(
                "default_relative_deadline", None
            ),
        )
        return cls(
            eet=eet,
            machine_counts=kwargs.pop(
                "machine_counts",
                {n: 1 for n in eet.machine_type_names},
            ),
            scheduler=scheduler,
            workload=workload,
            **kwargs,
        )

    def with_scheduler(self, scheduler: str, **params) -> "Scenario":
        """Copy of this scenario under a different policy (comparison sweeps)."""
        from dataclasses import replace

        return replace(
            self, scheduler=scheduler, scheduler_params=params,
            name=f"{self.name}:{scheduler}",
        )

    def with_gateway(self, gateway: str, **params) -> "Scenario":
        """Copy of this federated scenario under a different offloading policy."""
        from dataclasses import replace

        if self.federation is None:
            raise ConfigurationError(
                "with_gateway requires a federated scenario "
                "(the 'federation' field is not set)"
            )
        federation = replace(
            self.federation, gateway=gateway, gateway_params=params
        )
        return replace(
            self, federation=federation, name=f"{self.name}~{gateway}"
        )

    def with_migration(self, policy: str | None, **options) -> "Scenario":
        """Copy of this federated scenario with mid-queue migration set.

        ``policy`` is a registered eviction-policy name (``LONGEST_WAIT``,
        ``DEADLINE_SLACK``, ``EET_GAIN``, ...); ``options`` are
        :class:`~repro.federation.spec.MigrationSpec` fields (``interval``,
        ``pressure_gap``, ``batch_max``, ``min_queue``, ``policy_params``).
        Pass ``policy=None`` to disable migration on a preset that enables
        it by default.
        """
        from dataclasses import replace

        from ..federation.spec import MigrationSpec

        if self.federation is None:
            raise ConfigurationError(
                "with_migration requires a federated scenario "
                "(the 'federation' field is not set)"
            )
        if policy is None:
            if options:
                raise ConfigurationError(
                    "with_migration(None) disables migration and accepts "
                    f"no options, got {sorted(options)}"
                )
            spec = None
            suffix = "-migration"
        else:
            spec = MigrationSpec(policy=policy, **options)
            suffix = f"+{spec.policy}"
        federation = replace(self.federation, migration=spec)
        return replace(
            self, federation=federation, name=f"{self.name}{suffix}"
        )

    def with_intensity(self, intensity: str | float) -> "Scenario":
        """Copy with a different generator intensity (low/medium/high sweeps)."""
        if self.generator is None:
            raise ConfigurationError(
                "with_intensity requires a generator-based scenario"
            )
        from dataclasses import replace

        recipe = dict(self.generator)
        recipe["intensity"] = intensity
        return replace(self, generator=recipe, name=f"{self.name}@{intensity}")
