"""Simulation clock.

A thin, monotonic wrapper around "current simulation time". Keeping it as an
object (rather than a bare float on the simulator) lets machines, metrics and
renderers share one authoritative time source, mirroring the "Current Time"
display of the E2C GUI.
"""

from __future__ import annotations

from .errors import SimulationStateError

__all__ = ["SimulationClock"]


class SimulationClock:
    """Monotonic simulation clock measured in simulated seconds."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise SimulationStateError(f"clock cannot start at negative time {start}")
        self._start = float(start)
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def start(self) -> float:
        """Time at which the clock (re)started."""
        return self._start

    @property
    def elapsed(self) -> float:
        """Simulated time elapsed since the start."""
        return self._now - self._start

    def advance_to(self, time: float) -> float:
        """Move the clock forward to *time* (never backwards).

        Raises
        ------
        SimulationStateError
            If *time* precedes the current time (events must be causal).
        """
        if time < self._now:
            raise SimulationStateError(
                f"clock cannot move backwards: now={self._now}, requested={time}"
            )
        self._now = float(time)
        return self._now

    def reset(self, start: float | None = None) -> None:
        """Rewind the clock, optionally to a new start time."""
        if start is not None:
            if start < 0:
                raise SimulationStateError(
                    f"clock cannot restart at negative time {start}"
                )
            self._start = float(start)
        self._now = self._start

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimulationClock(now={self._now:.6g})"
