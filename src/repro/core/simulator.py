"""The E2C simulation engine (Fig. 1).

Orchestrates the full pipeline: workload → batch queue → scheduler → machine
queues → machines, with cancelled/dropped bookkeeping, energy metering, and
the four reports at the end.

Event handling per step:

* ``TASK_ARRIVAL`` — the task enters the batch queue; a scheduling pass runs.
* ``TASK_COMPLETION`` — the machine finishes its running task (on time by
  construction: the completion event is cancelled if the deadline fires
  first); the machine starts its next queued task; a scheduling pass runs
  (batch mode sees the freed queue slot).
* ``TASK_DEADLINE`` — fate depends on where the task is: batch queue ⇒
  CANCELLED; machine queue ⇒ MISSED (queued); executing ⇒ MISSED (running;
  the pending completion event is cancelled and the machine moves on).
* ``NETWORK_DELIVERY`` — (communication extension) the task's payload has
  reached its machine; the machine may start it now.

A scheduling pass sweeps expired tasks out of the batch queue, snapshots the
remaining pending tasks, invokes the policy, and applies its assignments —
including starting idle machines and scheduling their completion events.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from functools import cached_property
from typing import Callable, Sequence

import numpy as np

from ..machines.cluster import Cluster
from ..machines.execution import DeterministicExecution, ExecutionTimeModel
from ..machines.failures import FailureModel
from ..machines.machine import Machine
from ..machines.machine_queue import UNBOUNDED
from ..metrics.collector import MetricsCollector, SummaryMetrics
from ..metrics.energy import EnergyBreakdown, energy_breakdown
from ..metrics.records import RecordsSource
from ..metrics.reports import ReportBundle
from ..queues.batch_queue import BatchQueue
from ..scheduling.base import Assignment, Scheduler, SchedulingMode
from ..scheduling.context import LiveTypeStats, SchedulingContext
from ..tasks.task import DropStage, Task, TaskStatus
from ..tasks.workload import Workload
from .clock import SimulationClock
from .errors import ConfigurationError, SchedulingError, SimulationStateError
from .event_queue import EventQueue
from .events import Event, EventType
from .rng import make_rng

__all__ = ["Simulator", "SimulationResult"]

Observer = Callable[["Simulator", Event], None]

# Event-type members bound once at module scope: member access on an Enum
# class goes through a descriptor (~10x a plain global load on CPython 3.11),
# and the dispatch loop reads several members per event.
_ARRIVAL = EventType.TASK_ARRIVAL
_COMPLETION = EventType.TASK_COMPLETION
_DEADLINE = EventType.TASK_DEADLINE
_DELIVERY = EventType.NETWORK_DELIVERY
_FAILURE = EventType.MACHINE_FAILURE
_REPAIR = EventType.MACHINE_REPAIR
_CONTROL = EventType.CONTROL
_CREATED = TaskStatus.CREATED
_IN_BATCH_QUEUE = TaskStatus.IN_BATCH_QUEUE
_ASSIGNED = TaskStatus.ASSIGNED
_RUNNING = TaskStatus.RUNNING


@dataclass(frozen=True)
class SimulationResult:
    """Everything a finished run produced.

    ``task_records`` / ``machine_records`` are built lazily from ``records``
    on first access (and cached): most consumers — benchmarks, campaign
    sweeps, regression gates — only read the summary, and the per-task row
    dicts are the single most expensive part of result assembly.
    """

    summary: SummaryMetrics
    energy: EnergyBreakdown
    end_time: float
    scheduler_name: str
    events_processed: int
    records: RecordsSource = field(repr=False, compare=False)

    @cached_property
    def task_records(self) -> list[dict]:
        """One dict per task — the Task report rows (lazy, cached)."""
        return self.records.task_rows()

    @cached_property
    def machine_records(self) -> list[dict]:
        """One dict per machine — the Machine report rows (lazy, cached)."""
        return self.records.machine_rows()

    @property
    def reports(self) -> ReportBundle:
        """The four E2C reports (Full / Task / Machine / Summary)."""
        return ReportBundle(
            self.task_records, self.machine_records, self.summary.as_dict()
        )

    @property
    def completion_rate(self) -> float:
        return self.summary.completion_rate


class Simulator:
    """Discrete-event simulator for one scenario run."""

    #: Cluster-shard id stamped onto every event this engine schedules.
    #: ``None`` for a standalone (single-cluster) simulation; a federated
    #: shard (:class:`repro.federation.shard.ClusterShard`) overrides it so
    #: the federation loop can route popped events back to their shard.
    _shard_id: int | None = None

    def __init__(
        self,
        cluster: Cluster,
        workload: Workload,
        scheduler: Scheduler,
        *,
        seed: int | None | np.random.Generator = None,
        drop_on_deadline: bool = True,
        execution_model: ExecutionTimeModel | None = None,
        queue_capacity: float | None = None,
        enable_network: bool = False,
        failure_model: FailureModel | None = None,
        scheduling_overhead: "SchedulingOverhead | None" = None,
        observers: Sequence[Observer] = (),
    ) -> None:
        workload.validate_against_eet(cluster.eet)
        self.cluster = cluster
        self.workload = workload
        self.scheduler = scheduler
        self.drop_on_deadline = drop_on_deadline
        self.execution_model = execution_model or DeterministicExecution()
        # Deterministic runtimes (the default) need no sampling call per start.
        self._deterministic_execution = (
            type(self.execution_model) is DeterministicExecution
        )
        self.enable_network = enable_network
        self.failure_model = failure_model
        from ..scheduling.overhead import SchedulingOverhead

        self.scheduling_overhead = (
            scheduling_overhead
            if scheduling_overhead is not None
            else SchedulingOverhead()
        )
        self.observers = list(observers)
        self.rng = make_rng(seed)

        if queue_capacity is not None:
            if (
                scheduler.mode is SchedulingMode.IMMEDIATE
                and queue_capacity != UNBOUNDED
            ):
                raise ConfigurationError(
                    "immediate policies require unbounded machine queues "
                    "(Fig. 3: 'limited to infinite for immediate policies')"
                )
            cluster.set_queue_capacity(queue_capacity)
        elif scheduler.mode is SchedulingMode.IMMEDIATE:
            cluster.set_queue_capacity(UNBOUNDED)

        self.clock = SimulationClock()
        self.events = EventQueue()
        self.batch_queue = BatchQueue()
        self.collector = MetricsCollector()
        self.type_stats = LiveTypeStats()
        self.scheduler.reset()

        self._events_processed = 0
        self._finished = False
        self._result: SimulationResult | None = None
        self._arrived = 0  # arrival events processed (O(1) remaining_arrivals)
        self._overhead_free = self.scheduling_overhead.is_free
        # Immediate policies with zero decision overhead and no network can
        # map an arriving task on the spot whenever the batch queue is empty,
        # skipping the queue push / sweep / snapshot / Assignment machinery —
        # the dominant arrival shape for every immediate preset.
        self._immediate_fast = (
            scheduler.mode is SchedulingMode.IMMEDIATE
            and self._overhead_free
            and not enable_network
        )
        # One context object reused across passes (policies treat it as a
        # read-only view; only now/pending vary between passes).
        self._ctx = SchedulingContext(
            now=0.0,
            pending=(),
            cluster=self.cluster,
            type_stats=self.type_stats,
            rng=self.rng,
        )

        initial: list[Event] = []
        inf = float("inf")
        for task in workload:
            initial.append(
                Event(task.arrival_time, EventType.TASK_ARRIVAL, task)
            )
            if self.drop_on_deadline and task.deadline != inf:
                initial.append(
                    Event(task.deadline, EventType.TASK_DEADLINE, task)
                )
        self.events.push_many(initial)
        if self.failure_model is not None and len(workload) > 0:
            for machine in self.cluster:
                self._schedule_failure(machine)

    # -- public control surface ---------------------------------------------------

    @property
    def now(self) -> float:
        return self.clock._now  # single attribute hop; .now is a property

    @property
    def is_finished(self) -> bool:
        return self._finished

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def next_event_time(self) -> float | None:
        return self.events.next_time()

    def step(self) -> Event | None:
        """Process exactly one event (the GUI's Increment button).

        Returns the processed event, or None when the simulation is over.
        """
        if self._finished:
            return None
        if not self.events:
            self._finish()
            return None
        event = self.events.pop()
        self.clock.advance_to(event.time)
        self._dispatch(event)
        self._events_processed += 1
        if self.observers:
            for observer in self.observers:
                observer(self, event)
        if not self.events:
            self._finish()
        return event

    def run(self, until: float | None = None) -> SimulationResult:
        """Run to completion (or to simulated time *until*) and return results."""
        if until is None:
            if self.observers:
                while not self._finished:
                    self.step()
            else:
                # Hot path: the step() body inlined with the event-queue pop
                # unrolled — direct heap access saves a call layer per event,
                # and the heap's ordering guarantee stands in for the clock's
                # monotonicity check. Semantics identical to step().
                events = self.events
                heap = events._heap
                cancelled = events._cancelled
                clock = self.clock
                dispatch = self._dispatch
                heappop = heapq.heappop
                processed = 0
                while heap:
                    event = heappop(heap)[1]
                    if cancelled and event.seq in cancelled:
                        cancelled.discard(event.seq)
                        continue
                    events._live -= 1
                    clock._now = event.time
                    dispatch(event)
                    processed += 1
                self._events_processed += processed
                if not self._finished:
                    self._finish()
            assert self._result is not None
            return self._result
        while not self._finished:
            next_time = self.events.next_time()
            if next_time is None:
                break
            if next_time > until:
                self.clock.advance_to(until)
                break
            self.step()
        return self._build_result()

    def result(self) -> SimulationResult:
        """Result of a finished run."""
        if self._result is None:
            raise SimulationStateError(
                "simulation has not finished; call run() first"
            )
        return self._result

    # -- event dispatch ----------------------------------------------------------------

    def _dispatch(self, event: Event) -> None:
        etype = event.type
        if etype is _ARRIVAL:
            self._on_arrival(event.payload)
        elif etype is _COMPLETION:
            self._on_completion(event.payload)
        elif etype is _DEADLINE:
            self._on_deadline(event.payload)
        elif etype is _DELIVERY:
            self._on_delivery(event.payload)
        elif etype is _FAILURE:
            self._on_failure(event.payload)
        elif etype is _REPAIR:
            self._on_repair(event.payload)
        elif etype is _CONTROL:  # pragma: no cover - hook
            pass
        else:  # pragma: no cover - defensive
            raise SimulationStateError(f"unhandled event type {event.type}")

    def _on_arrival(self, task: Task) -> None:
        self._arrived += 1
        if self._immediate_fast and self.batch_queue.is_empty:
            # Same decisions, records, and RNG consumption as the general
            # path below — merely without materialising the single-task
            # batch pass (push, sweep, snapshot, Assignment, remove).
            now = self.clock._now
            if self.drop_on_deadline and task.deadline <= now:
                task.cancel(now)
                self.collector.record_terminal(task)
                self.type_stats.record(task.task_type.name, False)
                return
            ctx = self._ctx
            ctx.now = now
            ctx.pending = (task,)
            machine = self.scheduler.choose_machine(task, ctx)
            if machine is None:  # pragma: no cover - defensive
                raise SchedulingError(
                    f"{self.scheduler.name}: immediate policy returned no "
                    f"machine for task {task.id}"
                )
            if machine.can_accept(task):
                machine.enqueue(task, now)
                self._try_start(machine)
            else:
                # Admission refused: buffer it exactly as the general path
                # would have left it, awaiting the next scheduling pass.
                self.batch_queue.push(task)
            return
        self.batch_queue.push(task)
        self._scheduling_pass()

    def _on_completion(self, payload: tuple[Machine, Task]) -> None:
        machine, task = payload
        if machine.running is not task:  # pragma: no cover - defensive
            raise SimulationStateError(
                f"completion event for task {task.id} but machine "
                f"{machine.name} is running "
                f"{machine.running.id if machine.running else None}"
            )
        finished = machine.finish_running(self.now)
        self.collector.record_terminal(finished)
        self.type_stats.record(finished.task_type.name, finished.on_time)
        self._try_start(machine)
        self._scheduling_pass()

    def _on_deadline(self, task: Task) -> None:
        if task.status.is_terminal:
            return  # completed exactly at (or before) the deadline
        now = self.now
        if task.status in (_CREATED, _IN_BATCH_QUEUE):
            self.batch_queue.remove(task)
            task.cancel(now)
            self.collector.record_terminal(task)
            self.type_stats.record(task.task_type.name, False)
            return
        machine = task.machine
        if machine is None:  # pragma: no cover - defensive
            raise SimulationStateError(
                f"task {task.id} is {task.status.name} but has no machine"
            )
        if task.status is _ASSIGNED:
            in_transit = (
                task.available_at is not None and task.available_at > now
            )
            if not machine.drop_queued(task):  # pragma: no cover - defensive
                raise SimulationStateError(
                    f"task {task.id} not found in machine {machine.name} queue"
                )
            task.miss(
                now,
                DropStage.IN_TRANSIT if in_transit else DropStage.MACHINE_QUEUE,
            )
        elif task.status is _RUNNING:
            if machine.completion_event is not None:
                self.events.cancel(machine.completion_event)
            machine.drop_running(self.now)
            task.miss(now, DropStage.EXECUTING)
            self._try_start(machine)
        else:  # pragma: no cover - defensive
            raise SimulationStateError(
                f"deadline fired for task {task.id} in state {task.status.name}"
            )
        self.collector.record_terminal(task)
        self.type_stats.record(task.task_type.name, False)
        self._scheduling_pass()

    def _on_delivery(self, payload: tuple[Machine, Task]) -> None:
        machine, task = payload
        if task.status is _ASSIGNED:
            self._try_start(machine)

    # -- failure injection ---------------------------------------------------------

    def _schedule_failure(self, machine: Machine) -> None:
        assert self.failure_model is not None
        uptime = self.failure_model.sample_uptime(machine, self.rng)
        self.events.push(
            Event(
                self.now + uptime,
                EventType.MACHINE_FAILURE,
                machine,
                cluster=self._shard_id,
            )
        )

    def _all_tasks_terminal(self) -> bool:
        return self.collector.recorded >= len(self.workload)

    def _on_failure(self, machine: Machine) -> None:
        assert self.failure_model is not None
        if not machine.up:  # pragma: no cover - defensive
            return
        if machine.completion_event is not None:
            self.events.cancel(machine.completion_event)
        evicted = machine.fail(self.now)
        for task in evicted:
            task.requeue(self.now)
            self.batch_queue.readmit(task)
        downtime = self.failure_model.sample_downtime(machine, self.rng)
        self.events.push(
            Event(
                self.now + downtime,
                EventType.MACHINE_REPAIR,
                machine,
                cluster=self._shard_id,
            )
        )
        # Evicted tasks may be remappable onto surviving machines right now.
        self._scheduling_pass()

    def _on_repair(self, machine: Machine) -> None:
        assert self.failure_model is not None
        machine.repair(self.now)
        # Keep the failure process alive only while there is work left; this
        # bounds the event stream so simulations terminate.
        if not self._all_tasks_terminal():
            self._schedule_failure(machine)
        self._scheduling_pass()

    # -- scheduling ---------------------------------------------------------------------

    def _scheduling_pass(self) -> None:
        if self.batch_queue.is_empty:
            return  # nothing to sweep, nothing to map
        now = self.now
        if self.drop_on_deadline:
            for task in self.batch_queue.sweep_expired(now):
                self.collector.record_terminal(task)
                self.type_stats.record(task.task_type.name, False)
        pending = self.batch_queue.snapshot()
        if not pending:
            return
        ctx = self._ctx
        ctx.now = now
        ctx.pending = pending
        assignments = self.scheduler.schedule(ctx)
        if self._overhead_free:
            decision_delay = 0.0
        else:
            decision_delay = self.scheduling_overhead.pass_delay(
                len(pending), len(self.cluster)
            )
        self._apply(assignments, decision_delay=decision_delay)

    def _apply(
        self,
        assignments: Sequence[Assignment],
        *,
        decision_delay: float = 0.0,
    ) -> None:
        now = self.now
        network = self.enable_network
        for assignment in assignments:
            task, machine = assignment.task, assignment.machine
            if task.status is not _IN_BATCH_QUEUE:
                raise SchedulingError(
                    f"{self.scheduler.name}: assignment for task {task.id} "
                    f"in state {task.status.name}"
                )
            if not machine.can_accept(task):
                # Bounded queue or memory admission refused the mapping; the
                # task stays in the batch queue for the next pass.
                continue
            if not self.batch_queue.remove(task):  # pragma: no cover - defensive
                raise SchedulingError(
                    f"{self.scheduler.name}: task {task.id} not in batch queue"
                )
            if network:
                delay = self._transfer_delay(task, machine) + decision_delay
            else:
                delay = decision_delay
            if delay > 0:
                task.available_at = now + delay
            machine.enqueue(task, now)
            if delay > 0:
                self.events.push(
                    Event(
                        now + delay,
                        EventType.NETWORK_DELIVERY,
                        (machine, task),
                        cluster=self._shard_id,
                    )
                )
            self._try_start(machine)

    def _transfer_delay(self, task: Task, machine: Machine) -> float:
        if not self.enable_network:
            return 0.0
        from ..net.transfer import transfer_delay

        return transfer_delay(task.task_type, machine.machine_type)

    def _try_start(self, machine: Machine) -> None:
        """Start the machine's next task if possible; schedule its completion."""
        if machine.running is not None or not machine.queue:
            return  # busy or nothing queued: the common _apply case
        head = machine.queue.peek()
        runtime = None
        if head is not None:
            expected = machine.eet_for(head)
            if self._deterministic_execution:
                runtime = expected
            else:
                runtime = self.execution_model.sample(head, expected, self.rng)
        started = machine.start_next(self.now, runtime)
        if started is not None:
            event = self.events.push(
                Event(
                    machine.run_finishes_at,
                    EventType.TASK_COMPLETION,
                    (machine, started),
                    cluster=self._shard_id,
                )
            )
            machine.completion_event = event

    # -- termination -----------------------------------------------------------------------

    def _finish(self) -> None:
        if self._finished:
            return
        self._finished = True
        for machine in self.cluster:
            machine.finalize_energy(self.now)
        self._result = self._build_result()
        expected = len(self.workload)
        if self.drop_on_deadline and self.collector.recorded != expected:
            raise SimulationStateError(
                f"conservation violated: {self.collector.recorded} terminal "
                f"tasks out of {expected}"
            )

    def _build_result(self) -> SimulationResult:
        summary = self.collector.summary(self.cluster, end_time=self.now)
        return SimulationResult(
            summary=summary,
            energy=energy_breakdown(self.cluster),
            end_time=self.now,
            scheduler_name=self.scheduler.name,
            events_processed=self._events_processed,
            records=RecordsSource([(None, self.collector, self.cluster)]),
        )

    # -- renderer-facing state ------------------------------------------------------------

    def counts(self) -> dict[str, int]:
        """Live outcome counters (the cancelled/missed boxes of the GUI).

        O(1): reads the collector's incrementally-maintained counters
        instead of scanning every recorded task per rendered frame.
        """
        return self.collector.counts()

    def remaining_arrivals(self) -> int:
        """Workload tasks that have not arrived yet (O(1))."""
        return len(self.workload) - self._arrived
