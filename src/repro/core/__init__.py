"""Discrete-event simulation kernel and engine."""

from .clock import SimulationClock
from .config import Scenario
from .controller import SimulationController
from .errors import (
    ConfigurationError,
    E2CError,
    EETError,
    IncompatibleWorkloadError,
    ReportError,
    SchedulingError,
    SimulationStateError,
    UnknownScenarioError,
    UnknownSchedulerError,
    WorkloadError,
)
from .event_queue import EventQueue
from .events import Event, EventType
from .rng import derive_seed, make_rng, spawn
from .simulator import SimulationResult, Simulator

__all__ = [
    "SimulationClock",
    "EventQueue",
    "Event",
    "EventType",
    "Simulator",
    "SimulationResult",
    "SimulationController",
    "Scenario",
    "make_rng",
    "spawn",
    "derive_seed",
    "E2CError",
    "ConfigurationError",
    "WorkloadError",
    "EETError",
    "IncompatibleWorkloadError",
    "SchedulingError",
    "UnknownSchedulerError",
    "UnknownScenarioError",
    "SimulationStateError",
    "ReportError",
]
