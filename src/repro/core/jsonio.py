"""Shared JSON-source loading for declarative artifacts.

Scenario files and campaign specs both accept "a JSON file path or a JSON
string" in their ``from_json`` constructors. This helper owns that sniffing
plus the error wrapping, so a missing file or malformed JSON surfaces as a
:class:`~repro.core.errors.ConfigurationError` (a clean CLI ``error:`` line)
rather than a raw traceback, uniformly for every artifact kind.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from .errors import ConfigurationError

__all__ = ["load_json_source"]


def load_json_source(
    source: str | Path | Mapping[str, Any], *, what: str = "document"
) -> Any:
    """Parse *source* — a JSON file path, a literal JSON string, or a mapping.

    A string that does not start with ``{`` is treated as a path; an
    already-parsed mapping passes through unchanged (so service callers can
    hand over dicts and strings through one door). *what* names the artifact
    in error messages ("scenario", "campaign spec", "submission").
    """
    if isinstance(source, Mapping):
        return source
    if isinstance(source, Path) or (
        isinstance(source, str) and not source.lstrip().startswith("{")
    ):
        try:
            text = Path(source).read_text(encoding="utf-8")
        except OSError as exc:
            raise ConfigurationError(
                f"cannot read {what} {source!s}: {exc}"
            ) from exc
    else:
        text = source
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"{what} is not valid JSON: {exc}") from exc
