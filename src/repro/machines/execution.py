"""Execution-time models: how realised runtimes relate to the EET.

The EET matrix holds *expected* execution times. By default the simulator
realises exactly the expectation (deterministic model — what the original E2C
does). For robustness studies the runtime can be made stochastic while keeping
the EET as its mean:

* :class:`DeterministicExecution` — runtime = EET.
* :class:`LognormalExecution` — runtime = EET × LogNormal(μ, σ) with the
  multiplier normalised to mean 1 (μ = −σ²/2).
* :class:`GammaExecution` — runtime ~ Gamma with mean EET and a chosen
  coefficient of variation.
"""

from __future__ import annotations

import abc

import numpy as np

from ..core.errors import ConfigurationError
from ..tasks.task import Task

__all__ = [
    "ExecutionTimeModel",
    "DeterministicExecution",
    "LognormalExecution",
    "GammaExecution",
    "execution_model_from_spec",
]


class ExecutionTimeModel(abc.ABC):
    """Maps (task, expected EET) to a realised runtime."""

    kind: str = ""

    @abc.abstractmethod
    def sample(
        self, task: Task, eet: float, rng: np.random.Generator
    ) -> float:
        """Realised runtime (> 0) for a task whose expected time is *eet*."""

    def spec(self) -> dict:
        out = {"kind": self.kind}
        out.update({k: v for k, v in vars(self).items() if not k.startswith("_")})
        return out


class DeterministicExecution(ExecutionTimeModel):
    """Runtime equals the EET exactly (original E2C behaviour)."""

    kind = "deterministic"

    def sample(self, task: Task, eet: float, rng: np.random.Generator) -> float:
        return eet


class LognormalExecution(ExecutionTimeModel):
    """Runtime = EET × LogNormal multiplier with unit mean."""

    kind = "lognormal"

    def __init__(self, sigma: float = 0.25) -> None:
        if sigma < 0:
            raise ConfigurationError(f"sigma must be >= 0, got {sigma}")
        self.sigma = float(sigma)

    def sample(self, task: Task, eet: float, rng: np.random.Generator) -> float:
        if self.sigma == 0:
            return eet
        mu = -0.5 * self.sigma**2  # E[LogNormal(mu, sigma)] == 1
        return float(eet * rng.lognormal(mu, self.sigma))


class GammaExecution(ExecutionTimeModel):
    """Runtime ~ Gamma(mean = EET, CoV = cov)."""

    kind = "gamma"

    def __init__(self, cov: float = 0.25) -> None:
        if cov < 0:
            raise ConfigurationError(f"cov must be >= 0, got {cov}")
        self.cov = float(cov)

    def sample(self, task: Task, eet: float, rng: np.random.Generator) -> float:
        if self.cov == 0:
            return eet
        shape = 1.0 / self.cov**2
        scale = eet * self.cov**2
        value = float(rng.gamma(shape, scale))
        return max(value, 1e-12)


_MODELS = {
    "deterministic": DeterministicExecution,
    "lognormal": LognormalExecution,
    "gamma": GammaExecution,
}


def execution_model_from_spec(spec: dict | None) -> ExecutionTimeModel:
    """Build an execution model from a JSON-style spec (None ⇒ deterministic)."""
    if spec is None:
        return DeterministicExecution()
    kind = spec.get("kind", "deterministic").lower()
    if kind not in _MODELS:
        raise ConfigurationError(
            f"unknown execution model {kind!r}; available: {sorted(_MODELS)}"
        )
    kwargs = {k: v for k, v in spec.items() if k != "kind"}
    try:
        return _MODELS[kind](**kwargs)
    except TypeError as exc:
        raise ConfigurationError(f"bad execution model spec {spec}: {exc}") from exc
