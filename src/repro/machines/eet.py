"""Expected Execution Time (EET) matrix — the paper's heterogeneity model.

"The heterogeneity of the system is modeled by a matrix, called the Expected
Execution Time (EET) matrix [Ali et al. 2000] ... This matrix defines the
expected execution time of each task type on each machine." (§3)

Rows are task types, columns are *machine types* (multiple physical machines
may share a column). Entries are strictly positive seconds. CSV format
(Fig. 2): header row = machine type names, first column = task type names:

```
task_type,CPU,GPU,FPGA
T1,10.0,2.0,4.0
T2,8.0,9.0,3.0
```
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Sequence, TextIO

import numpy as np

from ..core.errors import EETError
from ..tasks.task_type import TaskType

__all__ = ["EETMatrix"]


class EETMatrix:
    """Immutable (task type × machine type) expected-execution-time table."""

    def __init__(
        self,
        values: np.ndarray | Sequence[Sequence[float]],
        task_types: Sequence[TaskType] | Sequence[str],
        machine_type_names: Sequence[str],
    ) -> None:
        matrix = np.array(values, dtype=float)
        if matrix.ndim != 2:
            raise EETError(f"EET matrix must be 2-D, got shape {matrix.shape}")
        if matrix.size == 0:
            raise EETError("EET matrix must be non-empty")
        if not np.isfinite(matrix).all():
            raise EETError("EET matrix entries must be finite")
        if (matrix <= 0).any():
            raise EETError("EET matrix entries must be strictly positive")

        if task_types and isinstance(task_types[0], str):
            task_types = [
                TaskType(name=n, index=i) for i, n in enumerate(task_types)
            ]
        task_types = list(task_types)  # type: ignore[arg-type]
        if len(task_types) != matrix.shape[0]:
            raise EETError(
                f"EET rows ({matrix.shape[0]}) != task types ({len(task_types)})"
            )
        for i, t in enumerate(task_types):
            if t.index != i:
                raise EETError(
                    f"task type {t.name!r} has index {t.index}, expected row {i}"
                )
        names = [t.name for t in task_types]
        if len(set(names)) != len(names):
            raise EETError(f"duplicate task type names {names}")

        machine_type_names = [str(n) for n in machine_type_names]
        if len(machine_type_names) != matrix.shape[1]:
            raise EETError(
                f"EET columns ({matrix.shape[1]}) != machine type names "
                f"({len(machine_type_names)})"
            )
        if len(set(machine_type_names)) != len(machine_type_names):
            raise EETError(f"duplicate machine type names {machine_type_names}")

        self._matrix = matrix
        self._matrix.setflags(write=False)
        self._task_types: list[TaskType] = task_types
        self._machine_names = machine_type_names
        self._row_of = {t.name: t.index for t in task_types}
        self._col_of = {n: j for j, n in enumerate(machine_type_names)}

    # -- basic accessors ---------------------------------------------------------

    @property
    def values(self) -> np.ndarray:
        """Read-only (n_task_types, n_machine_types) array."""
        return self._matrix

    @property
    def task_types(self) -> list[TaskType]:
        return list(self._task_types)

    @property
    def task_type_names(self) -> list[str]:
        return [t.name for t in self._task_types]

    @property
    def machine_type_names(self) -> list[str]:
        return list(self._machine_names)

    @property
    def n_task_types(self) -> int:
        return self._matrix.shape[0]

    @property
    def n_machine_types(self) -> int:
        return self._matrix.shape[1]

    def has_task_type(self, name: str) -> bool:
        return name in self._row_of

    def has_machine_type(self, name: str) -> bool:
        return name in self._col_of

    def task_type(self, name: str) -> TaskType:
        try:
            return self._task_types[self._row_of[name]]
        except KeyError:
            raise EETError(
                f"unknown task type {name!r}; defined: {self.task_type_names}"
            ) from None

    def lookup(self, task_type: TaskType | str, machine_type: str) -> float:
        """EET of one task type on one machine type, in seconds."""
        row = self._row_index(task_type)
        try:
            col = self._col_of[machine_type]
        except KeyError:
            raise EETError(
                f"unknown machine type {machine_type!r}; "
                f"defined: {self._machine_names}"
            ) from None
        return float(self._matrix[row, col])

    def row(self, task_type: TaskType | str) -> np.ndarray:
        """EETs of one task type across all machine types (read-only view)."""
        return self._matrix[self._row_index(task_type)]

    def column(self, machine_type: str) -> np.ndarray:
        """EETs of all task types on one machine type (read-only view)."""
        try:
            return self._matrix[:, self._col_of[machine_type]]
        except KeyError:
            raise EETError(f"unknown machine type {machine_type!r}") from None

    def _row_index(self, task_type: TaskType | str) -> int:
        name = task_type if isinstance(task_type, str) else task_type.name
        try:
            return self._row_of[name]
        except KeyError:
            raise EETError(
                f"unknown task type {name!r}; defined: {self.task_type_names}"
            ) from None

    # -- heterogeneity diagnostics -------------------------------------------------

    def is_homogeneous(self, rel_tol: float = 1e-9) -> bool:
        """True iff every task type runs equally fast on every machine type."""
        return bool(
            np.allclose(self._matrix, self._matrix[:, [0]], rtol=rel_tol, atol=0.0)
        )

    def is_consistent(self) -> bool:
        """Consistent heterogeneity: machine speed order identical for all rows.

        (Ali et al. 2000: machine A faster than B on one task type ⇒ faster on
        all task types.)
        """
        order = np.argsort(self._matrix, axis=1, kind="stable")
        return bool((order == order[0]).all())

    def heterogeneity_cov(self) -> tuple[float, float]:
        """(task CoV, machine CoV): coefficients of variation along each axis."""
        task_cov = float(
            np.mean(self._matrix.std(axis=0) / self._matrix.mean(axis=0))
        )
        machine_cov = float(
            np.mean(self._matrix.std(axis=1) / self._matrix.mean(axis=1))
        )
        return task_cov, machine_cov

    # -- construction helpers --------------------------------------------------------

    @classmethod
    def homogeneous(
        cls,
        task_eets: Sequence[float],
        task_type_names: Sequence[str],
        n_machine_types: int,
        machine_type_names: Sequence[str] | None = None,
    ) -> "EETMatrix":
        """All machine types identical: column j = task_eets for every j."""
        if machine_type_names is None:
            machine_type_names = [f"M{j}" for j in range(n_machine_types)]
        col = np.asarray(task_eets, dtype=float).reshape(-1, 1)
        return cls(
            np.repeat(col, n_machine_types, axis=1),
            list(task_type_names),
            machine_type_names,
        )

    def with_task_types(self, task_types: Sequence[TaskType]) -> "EETMatrix":
        """Rebind rows to richer TaskType objects (deadlines, footprints)."""
        return EETMatrix(self._matrix.copy(), task_types, self._machine_names)

    # -- CSV I/O -----------------------------------------------------------------------

    @classmethod
    def read_csv(cls, source: str | Path | TextIO) -> "EETMatrix":
        """Parse the Fig-2 EET CSV format."""
        if isinstance(source, (str, Path)):
            text = Path(source).read_text(encoding="utf-8")
        else:
            text = source.read()
        reader = csv.reader(io.StringIO(text))
        rows = [r for r in reader if r and any(cell.strip() for cell in r)]
        if len(rows) < 2:
            raise EETError("EET CSV needs a header and at least one row")
        header = [c.strip() for c in rows[0]]
        machine_names = header[1:]
        if not machine_names:
            raise EETError("EET CSV header defines no machine types")
        task_names: list[str] = []
        values: list[list[float]] = []
        for lineno, row in enumerate(rows[1:], start=2):
            cells = [c.strip() for c in row]
            if len(cells) != len(header):
                raise EETError(
                    f"EET CSV line {lineno}: expected {len(header)} cells, "
                    f"got {len(cells)}"
                )
            task_names.append(cells[0])
            try:
                values.append([float(c) for c in cells[1:]])
            except ValueError as exc:
                raise EETError(f"EET CSV line {lineno}: {exc}") from exc
        return cls(np.array(values), task_names, machine_names)

    def to_csv(self, target: str | Path | TextIO | None = None) -> str:
        """Serialise in the Fig-2 CSV format; returns the text."""
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(["task_type", *self._machine_names])
        for t in self._task_types:
            writer.writerow(
                [t.name, *(f"{v:.9g}" for v in self._matrix[t.index])]
            )
        text = buffer.getvalue()
        if target is not None:
            if isinstance(target, (str, Path)):
                Path(target).write_text(text, encoding="utf-8")
            else:
                target.write(text)
        return text

    # -- dunder ------------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EETMatrix):
            return NotImplemented
        return (
            self.task_type_names == other.task_type_names
            and self._machine_names == other._machine_names
            and np.array_equal(self._matrix, other._matrix)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EETMatrix({self.n_task_types} task types × "
            f"{self.n_machine_types} machine types)"
        )
