"""Power profiles and energy metering.

E2C "measures energy consumption and other output-related metrics" (§1). The
model: each machine type carries a power profile with an idle draw and a busy
draw (optionally overridden per task type — a TPU burns different watts on
object detection than on noise removal). Energy is integrated exactly from the
piecewise-constant power signal:

    E = idle_watts × idle_time + Σ_tasks busy_watts(type) × runtime .

:class:`EnergyMeter` is the per-machine accumulator the simulator drives; it
also attributes per-task energy for the Task/Full reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..core.errors import ConfigurationError

__all__ = ["PowerProfile", "EnergyMeter"]


@dataclass(frozen=True)
class PowerProfile:
    """Electrical behaviour of a machine type.

    Attributes
    ----------
    idle_watts:
        Draw while powered on but not executing.
    busy_watts:
        Default draw while executing any task.
    busy_watts_by_type:
        Optional per-task-type overrides of ``busy_watts``.
    """

    idle_watts: float = 0.0
    busy_watts: float = 0.0
    busy_watts_by_type: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.idle_watts < 0:
            raise ConfigurationError(f"idle_watts must be >= 0: {self.idle_watts}")
        if self.busy_watts < 0:
            raise ConfigurationError(f"busy_watts must be >= 0: {self.busy_watts}")
        for name, watts in self.busy_watts_by_type.items():
            if watts < 0:
                raise ConfigurationError(
                    f"busy watts for task type {name!r} must be >= 0: {watts}"
                )

    def active_watts(self, task_type_name: str | None = None) -> float:
        """Busy draw while running a task of the given type."""
        if task_type_name is not None:
            return self.busy_watts_by_type.get(task_type_name, self.busy_watts)
        return self.busy_watts

    def energy_for(self, task_type_name: str, runtime: float) -> float:
        """Dynamic (busy − idle) plus idle energy for executing one task.

        This is the full electrical energy drawn during the task's runtime,
        i.e. what you save by *not* running it on this machine only if you
        could power the machine off; reports expose both this and the dynamic
        part where relevant.
        """
        if runtime < 0:
            raise ConfigurationError(f"runtime must be >= 0: {runtime}")
        return self.active_watts(task_type_name) * runtime


class EnergyMeter:
    """Per-machine exact energy integrator over a piecewise-constant signal.

    The simulator calls :meth:`advance` whenever the machine's power state is
    about to change (task start, task end, drop), passing the current time and
    the state that held *since the previous call*.
    """

    def __init__(self, profile: PowerProfile, start_time: float = 0.0) -> None:
        self.profile = profile
        self._last_time = start_time
        self._idle_time = 0.0
        self._busy_time = 0.0
        self._off_time = 0.0
        self._idle_energy = 0.0
        self._busy_energy = 0.0

    def advance(
        self, now: float, *, busy: bool, task_type_name: str | None = None
    ) -> float:
        """Integrate the interval [last, now] in the given state.

        Returns the energy (J) consumed over the interval.
        """
        dt = now - self._last_time
        if dt < 0:
            raise ConfigurationError(
                f"energy meter cannot integrate backwards ({self._last_time} -> {now})"
            )
        self._last_time = now
        if busy:
            watts = self.profile.active_watts(task_type_name)
            self._busy_time += dt
            energy = watts * dt
            self._busy_energy += energy
        else:
            self._idle_time += dt
            energy = self.profile.idle_watts * dt
            self._idle_energy += energy
        return energy

    def advance_off(self, now: float) -> float:
        """Integrate the interval [last, now] with the machine powered off.

        Used by the failure-injection extension: a failed machine draws no
        power and its downtime is accounted separately from idle time.
        Always returns 0.0 J.
        """
        dt = now - self._last_time
        if dt < 0:
            raise ConfigurationError(
                f"energy meter cannot integrate backwards ({self._last_time} -> {now})"
            )
        self._last_time = now
        self._off_time += dt
        return 0.0

    @property
    def idle_time(self) -> float:
        return self._idle_time

    @property
    def busy_time(self) -> float:
        return self._busy_time

    @property
    def off_time(self) -> float:
        """Time spent powered off (failed)."""
        return self._off_time

    @property
    def idle_energy(self) -> float:
        """Joules consumed while idle."""
        return self._idle_energy

    @property
    def busy_energy(self) -> float:
        """Joules consumed while executing."""
        return self._busy_energy

    @property
    def total_energy(self) -> float:
        return self._idle_energy + self._busy_energy

    @property
    def last_time(self) -> float:
        return self._last_time

    def utilization(self) -> float:
        """Fraction of metered wall time spent busy (0 when nothing metered)."""
        total = self._idle_time + self._busy_time + self._off_time
        return self._busy_time / total if total > 0 else 0.0

    def availability(self) -> float:
        """Fraction of metered wall time the machine was powered on."""
        total = self._idle_time + self._busy_time + self._off_time
        if total <= 0:
            return 1.0
        return (self._idle_time + self._busy_time) / total

    def reset(self, start_time: float = 0.0) -> None:
        self._last_time = start_time
        self._idle_time = self._busy_time = self._off_time = 0.0
        self._idle_energy = self._busy_energy = 0.0
