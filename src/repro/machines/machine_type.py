"""Machine types — columns of the EET matrix with physical attributes.

A machine *type* (e.g. "x86-CPU", "A100-GPU", "edge-FPGA") binds an EET column
to a power profile and optional capacities. Multiple :class:`Machine`
instances may share one type — the standard way to model a cluster with
several replicas of each node class.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.errors import ConfigurationError
from .power import PowerProfile

__all__ = ["MachineType"]


@dataclass(frozen=True)
class MachineType:
    """A class of machines sharing an EET column.

    Attributes
    ----------
    name:
        Column name in the EET matrix.
    index:
        Column index in the EET matrix.
    power:
        Electrical profile used by the energy meter.
    memory_capacity:
        MB of memory available to queued+running tasks (memory extension;
        0 = unconstrained).
    network_latency / network_bandwidth:
        Link characteristics from the scheduler to machines of this type
        (communication extension; bandwidth in MB/s, 0 bandwidth =
        latency-only links).
    """

    name: str
    index: int
    power: PowerProfile = field(default_factory=PowerProfile)
    memory_capacity: float = 0.0
    network_latency: float = 0.0
    network_bandwidth: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("machine type name must be non-empty")
        if self.index < 0:
            raise ConfigurationError(
                f"machine type {self.name!r}: index must be >= 0"
            )
        if self.memory_capacity < 0:
            raise ConfigurationError(
                f"machine type {self.name!r}: memory_capacity must be >= 0"
            )
        if self.network_latency < 0 or self.network_bandwidth < 0:
            raise ConfigurationError(
                f"machine type {self.name!r}: network parameters must be >= 0"
            )

    def __str__(self) -> str:
        return self.name
