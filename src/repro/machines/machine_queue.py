"""Bounded FIFO machine queue (the "machine queue" boxes of Fig. 1).

"The machine queue size is limited to infinite for immediate policies, but can
be changed for batch policies" (Fig. 3). Capacity counts *queued* tasks only —
the running task does not occupy a slot, matching the paper's GUI where the
running task sits inside the machine, not its queue.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Iterator

from ..core.errors import ConfigurationError, SimulationStateError
from ..tasks.task import Task

__all__ = ["MachineQueue", "UNBOUNDED"]

#: Sentinel capacity meaning "no limit" (immediate-mode default).
UNBOUNDED = math.inf


class MachineQueue:
    """FIFO of tasks waiting on one machine, with optional capacity."""

    def __init__(self, capacity: float = UNBOUNDED) -> None:
        if capacity != UNBOUNDED:
            if capacity < 0 or int(capacity) != capacity:
                raise ConfigurationError(
                    f"machine queue capacity must be a non-negative integer "
                    f"or UNBOUNDED, got {capacity}"
                )
        self._capacity = capacity
        self._bounded = capacity != UNBOUNDED
        self._queue: deque[Task] = deque()

    @property
    def capacity(self) -> float:
        return self._capacity

    @property
    def is_bounded(self) -> bool:
        return self._bounded

    def __len__(self) -> int:
        return len(self._queue)

    def __iter__(self) -> Iterator[Task]:
        return iter(self._queue)

    def __contains__(self, task: Task) -> bool:
        return task in self._queue

    @property
    def free_slots(self) -> float:
        """Remaining capacity (inf when unbounded)."""
        if not self.is_bounded:
            return UNBOUNDED
        return self._capacity - len(self._queue)

    @property
    def is_full(self) -> bool:
        return self._bounded and len(self._queue) >= self._capacity

    def push(self, task: Task) -> None:
        """Append *task*; raises if the queue is saturated."""
        if self.is_full:
            raise SimulationStateError(
                f"machine queue saturated (capacity {self._capacity}); "
                f"cannot enqueue task {task.id}"
            )
        self._queue.append(task)

    def pop(self) -> Task:
        """Remove and return the head task."""
        if not self._queue:
            raise SimulationStateError("pop from an empty machine queue")
        return self._queue.popleft()

    def peek(self) -> Task | None:
        """Head task without removal (None when empty)."""
        return self._queue[0] if self._queue else None

    def remove(self, task: Task) -> bool:
        """Remove a specific task (deadline drop while queued). False if absent."""
        try:
            self._queue.remove(task)
            return True
        except ValueError:
            return False

    def clear(self) -> list[Task]:
        """Empty the queue, returning the evicted tasks in order."""
        out = list(self._queue)
        self._queue.clear()
        return out
