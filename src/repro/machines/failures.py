"""Machine failure injection (robustness extension, DESIGN.md S6/S12).

Heterogeneous systems research on robustness (the authors' own refs [8],
[10], [14] study robustness of heterogeneous systems) needs fault injection:
machines crash and recover, and the scheduler must absorb it. The model:

* each machine alternates UP and DOWN phases; UP durations are exponential
  with mean ``mtbf`` (mean time between failures), DOWN durations exponential
  with mean ``mttr`` (mean time to repair), optionally overridden per machine
  type;
* when a machine fails, its running task and queued tasks are **requeued**
  into the batch queue (retry counters incremented) — they compete again at
  the next scheduling pass; deadlines keep ticking, so a crash near a
  deadline still costs the task its life via the normal cancel path;
* a failed machine draws no power; downtime is metered separately
  (``EnergyMeter.off_time``) so utilisation and availability stay separable.

Expected steady-state availability is mtbf / (mtbf + mttr).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

import numpy as np

from ..core.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from .machine import Machine

__all__ = ["FailureModel"]


@dataclass(frozen=True)
class FailureModel:
    """Exponential failure/repair process parameters.

    Attributes
    ----------
    mtbf:
        Mean UP duration (seconds) before a failure.
    mttr:
        Mean DOWN duration (seconds) until repair.
    per_machine_type:
        Optional ``{machine_type_name: (mtbf, mttr)}`` overrides.
    """

    mtbf: float
    mttr: float
    per_machine_type: Mapping[str, tuple[float, float]] = field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        if self.mtbf <= 0 or self.mttr <= 0:
            raise ConfigurationError(
                f"mtbf and mttr must be positive (got {self.mtbf}, {self.mttr})"
            )
        for name, (up, down) in self.per_machine_type.items():
            if up <= 0 or down <= 0:
                raise ConfigurationError(
                    f"override for {name!r}: mtbf/mttr must be positive"
                )

    def parameters_for(self, machine: "Machine") -> tuple[float, float]:
        """(mtbf, mttr) effective for *machine*."""
        return self.per_machine_type.get(
            machine.machine_type.name, (self.mtbf, self.mttr)
        )

    def sample_uptime(
        self, machine: "Machine", rng: np.random.Generator
    ) -> float:
        """Draw the next UP duration for *machine*."""
        mtbf, _ = self.parameters_for(machine)
        return float(rng.exponential(mtbf))

    def sample_downtime(
        self, machine: "Machine", rng: np.random.Generator
    ) -> float:
        """Draw the next DOWN duration for *machine*."""
        _, mttr = self.parameters_for(machine)
        return float(rng.exponential(mttr))

    def expected_availability(self, machine: "Machine") -> float:
        """Steady-state fraction of time *machine* is up."""
        mtbf, mttr = self.parameters_for(machine)
        return mtbf / (mtbf + mttr)
