"""Synthetic EET matrix generation (Ali et al. 2000, the paper's ref [4]).

Two standard methods for generating heterogeneous EET matrices:

* **Range-based**: draw a per-task baseline q_i ~ U(1, R_task), then
  EET[i, j] = q_i × U(1, R_machine). Simple; heterogeneity controlled by the
  ranges.
* **CVB (coefficient-of-variation-based)**: draw q_i ~ Gamma with mean
  ``mean_task`` and CoV ``v_task``, then EET[i, j] ~ Gamma with mean q_i and
  CoV ``v_machine``. This is the method of the paper's reference [4]; the two
  CoVs directly express task and machine heterogeneity.

Both support the three *consistency* classes of [4]:

* ``inconsistent`` — raw draws; machine A may beat B on one task type and lose
  on another (GPUs vs CPUs vs FPGAs; the realistic accelerator world).
* ``consistent`` — every row sorted by a common machine order: one global
  speed ranking (a cluster of same-ISA machines of different generations).
* ``partially_consistent`` (a.k.a. semi-consistent) — a random half of the
  columns is made consistent, the rest stays inconsistent.
"""

from __future__ import annotations

from typing import Literal, Sequence

import numpy as np

from ..core.errors import ConfigurationError
from ..core.rng import make_rng
from .eet import EETMatrix

__all__ = ["generate_eet_range_based", "generate_eet_cvb", "make_consistency"]

Consistency = Literal["inconsistent", "consistent", "partially_consistent"]


def _names(
    n_task_types: int,
    n_machine_types: int,
    task_type_names: Sequence[str] | None,
    machine_type_names: Sequence[str] | None,
) -> tuple[list[str], list[str]]:
    tnames = (
        list(task_type_names)
        if task_type_names is not None
        else [f"T{i + 1}" for i in range(n_task_types)]
    )
    mnames = (
        list(machine_type_names)
        if machine_type_names is not None
        else [f"M{j + 1}" for j in range(n_machine_types)]
    )
    if len(tnames) != n_task_types or len(mnames) != n_machine_types:
        raise ConfigurationError("name lists must match requested dimensions")
    return tnames, mnames


def make_consistency(
    matrix: np.ndarray,
    consistency: Consistency,
    rng: np.random.Generator,
) -> np.ndarray:
    """Impose a consistency class on a raw EET matrix (returns a copy)."""
    out = np.array(matrix, dtype=float)
    if consistency == "inconsistent":
        return out
    if consistency == "consistent":
        out.sort(axis=1)
        return out
    if consistency == "partially_consistent":
        n_cols = out.shape[1]
        k = max(1, n_cols // 2)
        cols = np.sort(rng.choice(n_cols, size=k, replace=False))
        sub = np.sort(out[:, cols], axis=1)
        out[:, cols] = sub
        return out
    raise ConfigurationError(
        f"unknown consistency {consistency!r}; expected inconsistent, "
        "consistent or partially_consistent"
    )


def generate_eet_range_based(
    n_task_types: int,
    n_machine_types: int,
    *,
    task_range: float = 100.0,
    machine_range: float = 10.0,
    consistency: Consistency = "inconsistent",
    seed: int | None | np.random.Generator = None,
    task_type_names: Sequence[str] | None = None,
    machine_type_names: Sequence[str] | None = None,
) -> EETMatrix:
    """Range-based EET generation (Ali et al. 2000, §III-A).

    ``task_range`` (R_task) controls how different task types are from each
    other; ``machine_range`` (R_machine) controls machine heterogeneity
    (R_machine = 1 ⇒ homogeneous columns up to the common task baseline).
    """
    if n_task_types < 1 or n_machine_types < 1:
        raise ConfigurationError("matrix dimensions must be >= 1")
    if task_range < 1 or machine_range < 1:
        raise ConfigurationError("ranges must be >= 1 (multiplicative U(1, R))")
    rng = make_rng(seed)
    baselines = rng.uniform(1.0, task_range, size=(n_task_types, 1))
    factors = rng.uniform(1.0, machine_range, size=(n_task_types, n_machine_types))
    matrix = make_consistency(baselines * factors, consistency, rng)
    tnames, mnames = _names(
        n_task_types, n_machine_types, task_type_names, machine_type_names
    )
    return EETMatrix(matrix, tnames, mnames)


def _gamma_with_cov(
    rng: np.random.Generator, mean: np.ndarray | float, cov: float, size
) -> np.ndarray:
    """Gamma draws parameterised by mean and coefficient of variation."""
    if cov <= 0:
        # Degenerate: zero variance.
        return np.broadcast_to(np.asarray(mean, dtype=float), size).copy()
    shape = 1.0 / cov**2
    scale = np.asarray(mean, dtype=float) * cov**2
    return rng.gamma(shape, scale, size=size)


def generate_eet_cvb(
    n_task_types: int,
    n_machine_types: int,
    *,
    mean_task: float = 30.0,
    v_task: float = 0.6,
    v_machine: float = 0.5,
    consistency: Consistency = "inconsistent",
    seed: int | None | np.random.Generator = None,
    task_type_names: Sequence[str] | None = None,
    machine_type_names: Sequence[str] | None = None,
    floor: float = 1e-3,
) -> EETMatrix:
    """Coefficient-of-variation-based EET generation (Ali et al. 2000, §III-B).

    ``v_task`` expresses task heterogeneity, ``v_machine`` machine
    heterogeneity. ``v_machine = 0`` yields a perfectly homogeneous system —
    the knob used to build Fig-5's homogeneous configuration from the same
    pipeline as Fig-6's heterogeneous one.
    """
    if n_task_types < 1 or n_machine_types < 1:
        raise ConfigurationError("matrix dimensions must be >= 1")
    if mean_task <= 0:
        raise ConfigurationError(f"mean_task must be positive, got {mean_task}")
    if v_task < 0 or v_machine < 0:
        raise ConfigurationError("CoVs must be >= 0")
    rng = make_rng(seed)
    q = _gamma_with_cov(rng, mean_task, v_task, size=(n_task_types, 1))
    q = np.maximum(q, floor)
    matrix = _gamma_with_cov(
        rng, np.repeat(q, n_machine_types, axis=1), v_machine,
        size=(n_task_types, n_machine_types),
    )
    matrix = np.maximum(matrix, floor)
    matrix = make_consistency(matrix, consistency, rng)
    tnames, mnames = _names(
        n_task_types, n_machine_types, task_type_names, machine_type_names
    )
    return EETMatrix(matrix, tnames, mnames)
