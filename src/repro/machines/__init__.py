"""Machines, machine types, EET matrices, power and execution models."""

from .cluster import Cluster
from .eet import EETMatrix
from .eet_generation import (
    generate_eet_cvb,
    generate_eet_range_based,
    make_consistency,
)
from .execution import (
    DeterministicExecution,
    ExecutionTimeModel,
    GammaExecution,
    LognormalExecution,
    execution_model_from_spec,
)
from .failures import FailureModel
from .machine import Machine
from .machine_queue import UNBOUNDED, MachineQueue
from .machine_type import MachineType
from .power import EnergyMeter, PowerProfile

__all__ = [
    "EETMatrix",
    "generate_eet_range_based",
    "generate_eet_cvb",
    "make_consistency",
    "Machine",
    "MachineType",
    "MachineQueue",
    "UNBOUNDED",
    "Cluster",
    "PowerProfile",
    "EnergyMeter",
    "ExecutionTimeModel",
    "DeterministicExecution",
    "LognormalExecution",
    "GammaExecution",
    "execution_model_from_spec",
    "FailureModel",
]
