"""Cluster: the machine population of a scenario.

Builds machine instances from (machine type, count) pairs against an EET
matrix and provides the aggregate views the scheduler and the renderer need:
ready-time vectors, completion-time vectors (NumPy, vectorised across
machines), load snapshots and energy totals.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

import numpy as np

from ..core.errors import ConfigurationError
from ..tasks.task import Task
from .eet import EETMatrix
from .machine import Machine
from .machine_queue import UNBOUNDED
from .machine_type import MachineType
from .power import PowerProfile

__all__ = ["Cluster", "ClusterState"]


class ClusterState:
    """Incrementally-maintained planning arrays shared with the machines.

    Every machine state transition (enqueue, start, finish, drop, fail,
    repair) mirrors three scalars into these arrays, so the per-decision
    ``ready_times`` sweep is a single vectorised expression instead of a
    Python loop over machines scanning queues. ``idle`` / ``n_idle`` form the
    O(1) idle-machine index used by renderers and idle-seeking policies.
    """

    __slots__ = (
        "finish_at",
        "queued_work",
        "finish_list",
        "queued_list",
        "slots",
        "up",
        "idle",
        "n_idle",
        "n_down",
    )

    def __init__(self, n: int) -> None:
        self.finish_at = np.zeros(n)   # run_finishes_at, 0.0 while idle
        self.queued_work = np.zeros(n)  # Σ EET of queued tasks
        # Plain-float twins of the two arrays above, maintained by the same
        # machine syncs: the scalar argmin/min fast paths index them directly
        # instead of paying a .tolist() materialisation per decision.
        self.finish_list = [0.0] * n
        self.queued_list = [0.0] * n
        # Free machine-queue slots (0.0 while down, inf when unbounded),
        # mirrored by the same syncs: the batch mapping loop snapshots this
        # array instead of chasing queue attributes machine by machine.
        self.slots = np.full(n, np.inf)
        self.up = np.ones(n, dtype=bool)
        self.idle = np.ones(n, dtype=bool)  # up and not running
        self.n_idle = n
        self.n_down = 0


class Cluster:
    """An ordered collection of machines sharing one EET matrix."""

    def __init__(self, machines: Sequence[Machine], eet: EETMatrix) -> None:
        if not machines:
            raise ConfigurationError("a cluster needs at least one machine")
        ids = [m.id for m in machines]
        if ids != list(range(len(machines))):
            raise ConfigurationError(
                f"machine ids must be 0..n-1 in order, got {ids}"
            )
        for m in machines:
            if not eet.has_machine_type(m.machine_type.name):
                raise ConfigurationError(
                    f"machine {m.name}: type {m.machine_type.name!r} has no EET "
                    f"column; columns: {eet.machine_type_names}"
                )
        self.machines = list(machines)
        self.eet = eet
        # Cache the EET column index per machine for vectorised lookups.
        col_of = {n: j for j, n in enumerate(eet.machine_type_names)}
        self._machine_cols = np.array(
            [col_of[m.machine_type.name] for m in machines], dtype=int
        )
        # (n_task_types, n_machines) EET expanded to machine granularity —
        # one fancy-index gather per batch pass instead of per-task vstacks.
        self._eet_by_machine = np.ascontiguousarray(
            eet.values[:, self._machine_cols]
        )
        # eet_vector hands out row views of this cache; keep it immutable so
        # a policy mutating its "own" EET vector cannot corrupt the cluster.
        self._eet_by_machine.setflags(write=False)
        self._row_of = {t.name: t.index for t in eet.task_types}
        # Python-float copies of the EET rows for the small-cluster scalar
        # fast path (argmin_completion): plain list indexing avoids NumPy
        # scalar boxing inside the per-machine loop.
        self._eet_lists = [row.tolist() for row in self._eet_by_machine]
        self._state = ClusterState(len(self.machines))
        for i, m in enumerate(self.machines):
            m.bind_shared_state(self._state, i)

    @property
    def state(self) -> ClusterState:
        """The shared planning arrays (read-only by convention)."""
        return self._state

    # -- construction -------------------------------------------------------------

    @classmethod
    def build(
        cls,
        eet: EETMatrix,
        counts: Mapping[str, int] | Sequence[int],
        *,
        power_profiles: Mapping[str, PowerProfile] | None = None,
        queue_capacity: float = UNBOUNDED,
        memory_capacities: Mapping[str, float] | None = None,
        network: Mapping[str, tuple[float, float]] | None = None,
    ) -> "Cluster":
        """Create machines from per-machine-type counts.

        Parameters
        ----------
        counts:
            Either ``{"CPU": 2, "GPU": 1}`` or a sequence aligned with the EET
            columns.
        power_profiles:
            Optional per-machine-type power profiles.
        queue_capacity:
            Initial machine-queue capacity applied to all machines (the
            simulator overrides this per scheduling mode).
        memory_capacities / network:
            Optional extension parameters per machine type; ``network`` maps
            type name to ``(latency_s, bandwidth_MBps)``.
        """
        names = eet.machine_type_names
        if isinstance(counts, Mapping):
            unknown = set(counts) - set(names)
            if unknown:
                raise ConfigurationError(
                    f"counts reference unknown machine types {sorted(unknown)}"
                )
            count_list = [int(counts.get(n, 0)) for n in names]
        else:
            if len(counts) != len(names):
                raise ConfigurationError(
                    f"counts sequence length {len(counts)} != machine types "
                    f"{len(names)}"
                )
            count_list = [int(c) for c in counts]
        if any(c < 0 for c in count_list):
            raise ConfigurationError("machine counts must be >= 0")
        if sum(count_list) == 0:
            raise ConfigurationError("at least one machine is required")

        power_profiles = power_profiles or {}
        memory_capacities = memory_capacities or {}
        network = network or {}
        machine_types = []
        for j, name in enumerate(names):
            latency, bandwidth = network.get(name, (0.0, 0.0))
            machine_types.append(
                MachineType(
                    name=name,
                    index=j,
                    power=power_profiles.get(name, PowerProfile()),
                    memory_capacity=memory_capacities.get(name, 0.0),
                    network_latency=latency,
                    network_bandwidth=bandwidth,
                )
            )

        machines: list[Machine] = []
        for mtype, count in zip(machine_types, count_list):
            for _ in range(count):
                machines.append(
                    Machine(
                        machine_id=len(machines),
                        machine_type=mtype,
                        eet=eet,
                        queue_capacity=queue_capacity,
                    )
                )
        return cls(machines, eet)

    # -- container protocol ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.machines)

    def __iter__(self) -> Iterator[Machine]:
        return iter(self.machines)

    def __getitem__(self, i: int) -> Machine:
        return self.machines[i]

    # -- vectorised planning views ------------------------------------------------------

    def eet_vector(self, task: Task) -> np.ndarray:
        """EET of *task* on each machine (aligned with machine order)."""
        row = self._row_of.get(task.task_type.name)
        if row is None:  # unknown type: defer to EETMatrix for its error
            return self.eet.row(task.task_type)[self._machine_cols]
        return self._eet_by_machine[row]

    def eet_rows(self, tasks: Sequence[Task]) -> np.ndarray:
        """(len(tasks), n_machines) EET sub-matrix in one gather."""
        row_of = self._row_of
        try:
            rows = [row_of[t.task_type.name] for t in tasks]
        except KeyError:  # unknown type: defer to EETMatrix for its error
            return np.vstack([self.eet_vector(t) for t in tasks])
        return self._eet_by_machine[rows]

    def ready_times(self, now: float) -> np.ndarray:
        """ready_time(now) per machine.

        Computed from the incrementally-maintained :class:`ClusterState`
        arrays with the exact same arithmetic as ``Machine.ready_time``
        (``now + max(0, finish_at - now) + queued_work``), so results are
        bit-identical to the per-machine scalar path.
        """
        state = self._state
        ready = state.finish_at - now
        np.maximum(ready, 0.0, out=ready)
        ready += now
        ready += state.queued_work
        if state.n_down:
            ready[~state.up] = np.inf
        return ready

    def completion_times(self, task: Task, now: float) -> np.ndarray:
        """Expected completion time of *task* on each machine."""
        out = self.ready_times(now)  # fresh array; safe to reuse in place
        out += self.eet_vector(task)
        return out

    #: Machine count above which the vectorised NumPy path beats the scalar
    #: loop (its ~6 ufunc dispatches cost about as much as ~64 loop bodies).
    _SCALAR_ARGMIN_LIMIT = 64

    def argmin_completion(self, task: Task, now: float) -> int:
        """Index of the machine minimising completion time (MCT argmin).

        For fully-up clusters up to ``_SCALAR_ARGMIN_LIMIT`` machines a
        scalar Python loop over the incrementally-maintained plain-float
        mirrors beats the fixed overhead of the ~6 NumPy ufunc dispatches
        the vectorised path costs; both branches perform the identical IEEE
        operations (and first-minimum tie-break), so the chosen index — and
        therefore the simulation trajectory — is the same.
        """
        state = self._state
        if not state.n_down and len(self.machines) <= self._SCALAR_ARGMIN_LIMIT:
            row = self._row_of.get(task.task_type.name)
            if row is not None:
                eet_row = self._eet_lists[row]
                queued = state.queued_list
                best = float("inf")
                best_j = 0
                for j, f in enumerate(state.finish_list):
                    remaining = f - now
                    if remaining < 0.0:
                        remaining = 0.0
                    v = now + remaining + queued[j] + eet_row[j]
                    if v < best:
                        best = v
                        best_j = j
                return best_j
        return int(self.completion_times(task, now).argmin())

    def min_completion_time(self, task: Task, now: float) -> float:
        """Smallest expected completion time of *task* across machines.

        Scalar twin of ``float(completion_times(task, now).min())`` — the
        same IEEE operations in the same order, without materialising the
        vector (the gateway's EET-aware policy calls this per decision).
        """
        state = self._state
        if not state.n_down and len(self.machines) <= self._SCALAR_ARGMIN_LIMIT:
            row = self._row_of.get(task.task_type.name)
            if row is not None:
                eet_row = self._eet_lists[row]
                queued = state.queued_list
                best = float("inf")
                for j, f in enumerate(state.finish_list):
                    remaining = f - now
                    if remaining < 0.0:
                        remaining = 0.0
                    v = now + remaining + queued[j] + eet_row[j]
                    if v < best:
                        best = v
                return best
        return float(self.completion_times(task, now).min())

    def acceptance_mask(self) -> np.ndarray:
        """Boolean mask of machines whose queues can take one more task."""
        return np.array([m.can_accept() for m in self.machines])

    # -- O(1) idle index ---------------------------------------------------------

    @property
    def n_idle(self) -> int:
        """Number of up-and-idle machines (maintained incrementally)."""
        return self._state.n_idle

    def idle_machines(self) -> list[Machine]:
        """Up-and-idle machines, in id order, without scanning queues."""
        machines = self.machines
        return [machines[i] for i in np.flatnonzero(self._state.idle)]

    # -- aggregates ------------------------------------------------------------------------

    def total_energy(self) -> float:
        return sum(m.energy.total_energy for m in self.machines)

    def set_queue_capacity(self, capacity: float) -> None:
        """Re-create empty queues with a new capacity (pre-run configuration)."""
        for m in self.machines:
            if len(m.queue) or m.running is not None:
                raise ConfigurationError(
                    "cannot change queue capacity while tasks are in flight"
                )
            m.queue = type(m.queue)(capacity)
            m._sync_queued()  # refresh the mirrored free-slot count

    def free_slots_snapshot(self) -> np.ndarray:
        """Fresh free-slots-per-machine array (callers may mutate it)."""
        return self._state.slots.copy()

    def counts_by_type(self) -> dict[str, int]:
        out: dict[str, int] = {n: 0 for n in self.eet.machine_type_names}
        for m in self.machines:
            out[m.machine_type.name] += 1
        return out

    def fresh_copy(self) -> "Cluster":
        """New cluster with identical topology and pristine runtime state."""
        machines = [
            Machine(
                machine_id=m.id,
                machine_type=m.machine_type,
                eet=self.eet,
                queue_capacity=m.queue.capacity,
                name=m.name,
            )
            for m in self.machines
        ]
        return Cluster(machines, self.eet)
