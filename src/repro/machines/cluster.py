"""Cluster: the machine population of a scenario.

Builds machine instances from (machine type, count) pairs against an EET
matrix and provides the aggregate views the scheduler and the renderer need:
ready-time vectors, completion-time vectors (NumPy, vectorised across
machines), load snapshots and energy totals.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

import numpy as np

from ..core.errors import ConfigurationError
from ..tasks.task import Task
from .eet import EETMatrix
from .machine import Machine
from .machine_queue import UNBOUNDED
from .machine_type import MachineType
from .power import PowerProfile

__all__ = ["Cluster"]


class Cluster:
    """An ordered collection of machines sharing one EET matrix."""

    def __init__(self, machines: Sequence[Machine], eet: EETMatrix) -> None:
        if not machines:
            raise ConfigurationError("a cluster needs at least one machine")
        ids = [m.id for m in machines]
        if ids != list(range(len(machines))):
            raise ConfigurationError(
                f"machine ids must be 0..n-1 in order, got {ids}"
            )
        for m in machines:
            if not eet.has_machine_type(m.machine_type.name):
                raise ConfigurationError(
                    f"machine {m.name}: type {m.machine_type.name!r} has no EET "
                    f"column; columns: {eet.machine_type_names}"
                )
        self.machines = list(machines)
        self.eet = eet
        # Cache the EET column index per machine for vectorised lookups.
        col_of = {n: j for j, n in enumerate(eet.machine_type_names)}
        self._machine_cols = np.array(
            [col_of[m.machine_type.name] for m in machines], dtype=int
        )

    # -- construction -------------------------------------------------------------

    @classmethod
    def build(
        cls,
        eet: EETMatrix,
        counts: Mapping[str, int] | Sequence[int],
        *,
        power_profiles: Mapping[str, PowerProfile] | None = None,
        queue_capacity: float = UNBOUNDED,
        memory_capacities: Mapping[str, float] | None = None,
        network: Mapping[str, tuple[float, float]] | None = None,
    ) -> "Cluster":
        """Create machines from per-machine-type counts.

        Parameters
        ----------
        counts:
            Either ``{"CPU": 2, "GPU": 1}`` or a sequence aligned with the EET
            columns.
        power_profiles:
            Optional per-machine-type power profiles.
        queue_capacity:
            Initial machine-queue capacity applied to all machines (the
            simulator overrides this per scheduling mode).
        memory_capacities / network:
            Optional extension parameters per machine type; ``network`` maps
            type name to ``(latency_s, bandwidth_MBps)``.
        """
        names = eet.machine_type_names
        if isinstance(counts, Mapping):
            unknown = set(counts) - set(names)
            if unknown:
                raise ConfigurationError(
                    f"counts reference unknown machine types {sorted(unknown)}"
                )
            count_list = [int(counts.get(n, 0)) for n in names]
        else:
            if len(counts) != len(names):
                raise ConfigurationError(
                    f"counts sequence length {len(counts)} != machine types "
                    f"{len(names)}"
                )
            count_list = [int(c) for c in counts]
        if any(c < 0 for c in count_list):
            raise ConfigurationError("machine counts must be >= 0")
        if sum(count_list) == 0:
            raise ConfigurationError("at least one machine is required")

        power_profiles = power_profiles or {}
        memory_capacities = memory_capacities or {}
        network = network or {}
        machine_types = []
        for j, name in enumerate(names):
            latency, bandwidth = network.get(name, (0.0, 0.0))
            machine_types.append(
                MachineType(
                    name=name,
                    index=j,
                    power=power_profiles.get(name, PowerProfile()),
                    memory_capacity=memory_capacities.get(name, 0.0),
                    network_latency=latency,
                    network_bandwidth=bandwidth,
                )
            )

        machines: list[Machine] = []
        for mtype, count in zip(machine_types, count_list):
            for _ in range(count):
                machines.append(
                    Machine(
                        machine_id=len(machines),
                        machine_type=mtype,
                        eet=eet,
                        queue_capacity=queue_capacity,
                    )
                )
        return cls(machines, eet)

    # -- container protocol ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.machines)

    def __iter__(self) -> Iterator[Machine]:
        return iter(self.machines)

    def __getitem__(self, i: int) -> Machine:
        return self.machines[i]

    # -- vectorised planning views ------------------------------------------------------

    def eet_vector(self, task: Task) -> np.ndarray:
        """EET of *task* on each machine (aligned with machine order)."""
        row = self.eet.row(task.task_type)
        return row[self._machine_cols]

    def ready_times(self, now: float) -> np.ndarray:
        """ready_time(now) per machine."""
        return np.array([m.ready_time(now) for m in self.machines])

    def completion_times(self, task: Task, now: float) -> np.ndarray:
        """Expected completion time of *task* on each machine."""
        return self.ready_times(now) + self.eet_vector(task)

    def acceptance_mask(self) -> np.ndarray:
        """Boolean mask of machines whose queues can take one more task."""
        return np.array([m.can_accept() for m in self.machines])

    # -- aggregates ------------------------------------------------------------------------

    def total_energy(self) -> float:
        return sum(m.energy.total_energy for m in self.machines)

    def set_queue_capacity(self, capacity: float) -> None:
        """Re-create empty queues with a new capacity (pre-run configuration)."""
        for m in self.machines:
            if len(m.queue) or m.running is not None:
                raise ConfigurationError(
                    "cannot change queue capacity while tasks are in flight"
                )
            m.queue = type(m.queue)(capacity)

    def counts_by_type(self) -> dict[str, int]:
        out: dict[str, int] = {n: 0 for n in self.eet.machine_type_names}
        for m in self.machines:
            out[m.machine_type.name] += 1
        return out

    def fresh_copy(self) -> "Cluster":
        """New cluster with identical topology and pristine runtime state."""
        machines = [
            Machine(
                machine_id=m.id,
                machine_type=m.machine_type,
                eet=self.eet,
                queue_capacity=m.queue.capacity,
                name=m.name,
            )
            for m in self.machines
        ]
        return Cluster(machines, self.eet)
