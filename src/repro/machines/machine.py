"""Machine runtime state: queue, running task, readiness and energy.

A machine executes its FIFO queue sequentially (§3: "Tasks are executed on the
assigned machine in a sequential manner"). The scheduler plans against
:meth:`ready_time` / :meth:`completion_time_for`, the standard quantities of
the MCT/Min-Min heuristic family:

    ready_time(now)      = now + remaining(running) + Σ EET(queued)
    completion_time_for  = ready_time + EET(candidate)

With deterministic execution these are exact; with an execution-noise model
they are the *expected* values — which is precisely what the "Expected
Execution Time" matrix semantics call for.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.errors import SimulationStateError
from ..tasks.task import Task
from .eet import EETMatrix
from .machine_queue import UNBOUNDED, MachineQueue
from .machine_type import MachineType
from .power import EnergyMeter

if TYPE_CHECKING:  # pragma: no cover
    from ..core.events import Event
    from .cluster import ClusterState

__all__ = ["Machine"]


class Machine:
    """One physical machine instance of a given machine type."""

    def __init__(
        self,
        machine_id: int,
        machine_type: MachineType,
        eet: EETMatrix,
        *,
        queue_capacity: float = UNBOUNDED,
        name: str | None = None,
    ) -> None:
        self.id = machine_id
        self.machine_type = machine_type
        self.name = name if name is not None else f"{machine_type.name}-{machine_id}"
        self._eet = eet
        # Per-machine EET column resolved once: task type name -> seconds as a
        # plain Python float. eet_for() is on the per-decision hot path; the
        # generic EETMatrix.lookup costs two dict probes plus a NumPy scalar
        # extraction per call.
        if eet.has_machine_type(machine_type.name):
            self._eet_by_type_name = dict(
                zip(eet.task_type_names, eet.column(machine_type.name).tolist())
            )
        else:  # standalone machine without an EET column; lookup() will raise
            self._eet_by_type_name = None
        self.queue = MachineQueue(queue_capacity)
        self.running: Task | None = None
        self.run_started_at: float | None = None
        self.run_finishes_at: float | None = None
        self.completion_event: "Event | None" = None
        self.energy = EnergyMeter(machine_type.power)
        self.completed_count = 0
        self.missed_count = 0
        self.failure_count = 0
        self.up = True  # failure-injection extension: powered-on flag
        self._queued_work = 0.0  # incremental Σ EET of queued tasks
        # Optional cluster-shared planning arrays (see Cluster/ClusterState);
        # a standalone machine (no cluster) simply never syncs.
        self._shared: "ClusterState | None" = None
        self._shared_idx = 0

    # -- EET access -------------------------------------------------------------

    def eet_for(self, task: Task) -> float:
        """Expected execution time of *task* on this machine."""
        by_name = self._eet_by_type_name
        if by_name is not None:
            eet = by_name.get(task.task_type.name)
            if eet is not None:
                return eet
        return self._eet.lookup(task.task_type, self.machine_type.name)

    # -- cluster-shared planning state ------------------------------------------

    def bind_shared_state(self, state: "ClusterState", index: int) -> None:
        """Mirror this machine's planning quantities into *state* at *index*.

        The cluster keeps per-machine ``finish_at`` / ``queued_work`` / ``up``
        NumPy arrays so ``Cluster.ready_times`` is one vectorised expression
        instead of a Python loop over machines per scheduling decision.
        """
        self._shared = state
        self._shared_idx = index
        self._sync_shared()

    def _sync_shared(self) -> None:
        state = self._shared
        if state is None:
            return
        i = self._shared_idx
        finishes = self.run_finishes_at
        if finishes is None:
            finishes = 0.0
        state.finish_at[i] = finishes
        state.finish_list[i] = finishes
        state.queued_work[i] = self._queued_work
        state.queued_list[i] = self._queued_work
        state.slots[i] = self.queue.free_slots if self.up else 0.0
        if bool(state.up[i]) != self.up:
            state.up[i] = self.up
            state.n_down += -1 if self.up else 1
        idle_now = self.running is None and self.up
        if bool(state.idle[i]) != idle_now:
            state.idle[i] = idle_now
            state.n_idle += 1 if idle_now else -1

    def _sync_queued(self) -> None:
        """Cheap sync for transitions that only touch the queue."""
        state = self._shared
        if state is not None:
            i = self._shared_idx
            state.queued_work[i] = self._queued_work
            state.queued_list[i] = self._queued_work
            state.slots[i] = self.queue.free_slots if self.up else 0.0

    def _sync_run(self) -> None:
        """Cheap sync for start/finish transitions (finish_at + idleness)."""
        state = self._shared
        if state is None:
            return
        i = self._shared_idx
        finishes = self.run_finishes_at
        if finishes is None:
            finishes = 0.0
        state.finish_at[i] = finishes
        state.finish_list[i] = finishes
        state.queued_work[i] = self._queued_work
        state.queued_list[i] = self._queued_work
        state.slots[i] = self.queue.free_slots if self.up else 0.0
        idle_now = self.running is None and self.up
        if bool(state.idle[i]) != idle_now:
            state.idle[i] = idle_now
            state.n_idle += 1 if idle_now else -1

    # -- planning quantities ------------------------------------------------------

    @property
    def is_idle(self) -> bool:
        return self.running is None

    def remaining_runtime(self, now: float) -> float:
        """Time until the running task finishes (0 when idle)."""
        if self.running is None or self.run_finishes_at is None:
            return 0.0
        return max(0.0, self.run_finishes_at - now)

    def queued_work(self) -> float:
        """Σ EET of queued (not yet running) tasks (incrementally tracked)."""
        return self._queued_work

    def ready_time(self, now: float) -> float:
        """Earliest time a newly queued task could start.

        A failed machine is never ready (infinite), steering every
        completion-time-based policy away from it while it is down.
        """
        if not self.up:
            return float("inf")
        return now + self.remaining_runtime(now) + self.queued_work()

    def completion_time_for(self, task: Task, now: float) -> float:
        """Expected completion time of *task* if appended to this queue now."""
        return self.ready_time(now) + self.eet_for(task)

    @property
    def load(self) -> int:
        """Queued + running task count."""
        return len(self.queue) + (0 if self.running is None else 1)

    # -- execution lifecycle --------------------------------------------------------

    def enqueue(self, task: Task, now: float) -> None:
        """Accept an assigned task into the local queue."""
        task.assign(self, now)
        self.queue.push(task)
        self._queued_work += self.eet_for(task)
        self._sync_queued()

    def can_accept(self, task: Task | None = None) -> bool:
        """Queue has a free slot (and memory headroom, when constrained).

        Capacity counts queued tasks only; the running task occupies no slot.
        When the machine type declares a memory capacity and *task* is given,
        admission also requires the task's footprint to fit next to the
        queued + running residents (memory extension, DESIGN.md S18).
        """
        if not self.up:
            return False
        if self.queue.is_full:
            return False
        if task is not None and self.machine_type.memory_capacity > 0:
            from ..memory.allocation import fits_in_memory

            if not fits_in_memory(self, task):
                return False
        return True

    def memory_in_use(self) -> float:
        """MB of memory held by queued + running tasks."""
        from ..memory.allocation import memory_in_use

        return memory_in_use(self)

    def start_next(self, now: float, runtime: float | None = None) -> Task | None:
        """If idle and the queue head is startable, start it.

        A head task still in transit (``available_at`` in the future, network
        extension) blocks the queue until its delivery event fires. Returns
        the started task (runtime stored on it) or None. The caller schedules
        the completion event for ``run_finishes_at``.
        """
        if not self.up or self.running is not None or not self.queue:
            return None
        head = self.queue.peek()
        if head is not None and head.available_at is not None and head.available_at > now:
            return None
        # Close the idle interval that just ended.
        self.energy.advance(now, busy=False)
        task = self.queue.pop()
        self._queued_work -= self.eet_for(task)
        actual = runtime if runtime is not None else self.eet_for(task)
        if actual < 0:
            raise SimulationStateError(f"negative runtime {actual} for task {task.id}")
        task.start(now)
        task.execution_time = actual
        self.running = task
        self.run_started_at = now
        self.run_finishes_at = now + actual
        self._sync_run()
        return task

    def finish_running(self, now: float) -> Task:
        """Complete the running task at *now* (its completion event fired)."""
        task = self._detach_running(now)
        task.complete(now)
        started = task.start_time if task.start_time is not None else now
        task.energy = self.energy.profile.energy_for(
            task.task_type.name, now - started
        )
        self.completed_count += 1
        return task

    def drop_running(self, now: float) -> Task:
        """Drop the running task (deadline miss mid-execution); machine frees."""
        task = self._detach_running(now)
        # Energy already spent on the partial run is attributed to the task.
        started = task.start_time if task.start_time is not None else now
        task.energy = self.energy.profile.energy_for(
            task.task_type.name, now - started
        )
        self.missed_count += 1
        return task

    def drop_queued(self, task: Task) -> bool:
        """Remove a queued task (deadline miss while waiting). True if found."""
        removed = self.queue.remove(task)
        if removed:
            self._queued_work -= self.eet_for(task)
            self.missed_count += 1
            self._sync_queued()
        return removed

    def _detach_running(self, now: float) -> Task:
        if self.running is None:
            raise SimulationStateError(f"machine {self.name} is not running anything")
        task = self.running
        self.energy.advance(now, busy=True, task_type_name=task.task_type.name)
        self.running = None
        self.run_started_at = None
        self.run_finishes_at = None
        self.completion_event = None
        self._sync_run()
        return task

    def fail(self, now: float) -> list[Task]:
        """Crash the machine: evict the running task and the whole queue.

        Closes the current power interval (busy or idle), switches to the
        powered-off state, and returns the evicted tasks in execution order
        (running task first). The caller requeues or retires them and must
        cancel the pending completion event.
        """
        if not self.up:
            raise SimulationStateError(f"machine {self.name} is already down")
        evicted: list[Task] = []
        if self.running is not None:
            self.energy.advance(
                now, busy=True, task_type_name=self.running.task_type.name
            )
            evicted.append(self.running)
            self.running = None
            self.run_started_at = None
            self.run_finishes_at = None
            self.completion_event = None
        else:
            self.energy.advance(now, busy=False)
        evicted.extend(self.queue.clear())
        self._queued_work = 0.0
        self.up = False
        self.failure_count += 1
        self._sync_shared()
        return evicted

    def repair(self, now: float) -> None:
        """Bring the machine back up; downtime is metered as powered-off."""
        if self.up:
            raise SimulationStateError(f"machine {self.name} is not down")
        self.energy.advance_off(now)
        self.up = True
        self._sync_shared()

    def finalize_energy(self, now: float) -> None:
        """Close the trailing power interval at end of simulation."""
        if not self.up:
            self.energy.advance_off(now)
        elif self.running is not None:
            self.energy.advance(
                now, busy=True, task_type_name=self.running.task_type.name
            )
            # Re-open bookkeeping so a subsequent finish still integrates from now.
            # (finalize is only called when the simulation truly ends)
        else:
            self.energy.advance(now, busy=False)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "idle" if self.is_idle else f"running task {self.running.id}"
        return f"Machine({self.name}, {state}, queued={len(self.queue)})"
