"""Scheduling-overhead model.

§3: "Typically, immediate mode scheduling methods impose a lower overhead and
generally load balancers use this type of scheduling." This model makes that
statement measurable: every scheduling pass may cost simulated time —

    delay(pass) = per_pass + per_cell × |pending| × |machines|

— charged to the tasks mapped in that pass (they reach their machine queues
only after the decision latency, via the same delayed-delivery machinery the
network extension uses). Immediate passes see one pending task, so their cost
is ~per_pass; batch passes examine the whole completion-time matrix, so their
cost grows with the backlog — exactly the trade-off the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import ConfigurationError

__all__ = ["SchedulingOverhead"]


@dataclass(frozen=True)
class SchedulingOverhead:
    """Decision-latency parameters (simulated seconds).

    Attributes
    ----------
    per_pass:
        Fixed cost of invoking the scheduler once.
    per_cell:
        Cost per (pending task × machine) cell the mapping pass examines.
    """

    per_pass: float = 0.0
    per_cell: float = 0.0

    def __post_init__(self) -> None:
        if self.per_pass < 0 or self.per_cell < 0:
            raise ConfigurationError(
                f"overhead parameters must be >= 0 "
                f"(got per_pass={self.per_pass}, per_cell={self.per_cell})"
            )

    @property
    def is_free(self) -> bool:
        return self.per_pass == 0.0 and self.per_cell == 0.0

    def pass_delay(self, n_pending: int, n_machines: int) -> float:
        """Decision latency of one scheduling pass."""
        if n_pending < 0 or n_machines < 0:
            raise ConfigurationError("counts must be >= 0")
        return self.per_pass + self.per_cell * n_pending * n_machines

    def spec(self) -> dict:
        return {"per_pass": self.per_pass, "per_cell": self.per_cell}

    @classmethod
    def from_spec(cls, spec: dict | None) -> "SchedulingOverhead":
        if spec is None:
            return cls()
        return cls(
            per_pass=spec.get("per_pass", 0.0),
            per_cell=spec.get("per_cell", 0.0),
        )
