"""The tree-capable gateway: level-by-level routing on rolled-up pressure.

Flat gateways compare every cluster pair over a direct WAN link; a
hierarchical federation (:mod:`repro.federation.hierarchy`) has no such
links — only child↔parent uplinks — so its routing decision is structural:
*which subtree*, recursively, until a leaf is reached. That is exactly the
multi-level placement question (which region, then which site, then which
cluster) the E2C evaluation studies pose, and it is why this module's
policy is the only stock gateway with ``supports_hierarchy`` set.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ...core.errors import ConfigurationError
from .base import GatewayContext, GatewayPolicy, shard_pressure
from .registry import register_gateway

if TYPE_CHECKING:  # pragma: no cover
    from ...federation.hierarchy import HierarchyView

__all__ = ["TreePressureGateway"]


@register_gateway(aliases=("HIERARCHICAL",))
class TreePressureGateway(GatewayPolicy):
    """Descend the federation tree, picking the least-pressured subtree.

    At each interior node, every child subtree is scored by its rolled-up
    pressure::

        (Σ leaf in_system
         + wan_mb_weight · Σ leaf in-flight WAN MB
         + migration_weight · Σ leaf migrations-from) / Σ leaf live machines

    and the walk continues into the argmin child until it reaches a leaf.
    In-flight WAN payload counts *toward* a subtree's pressure, so traffic
    already converging on a region steers later arrivals elsewhere before
    any of it lands in a queue — the rolled-up analogue of link backlog.
    Ties prefer the child subtree containing the task's origin (locality),
    then the earlier child, so a balanced tree degrades into keep-it-local.

    On a *flat* federation (no hierarchy in the context) the policy is the
    depth-1 special case of the same rule: the argmin-pressure leaf, origin
    first on ties — LEAST_LOADED's arithmetic, reached through the tree
    walk's degenerate single level.
    """

    name = "TREE_PRESSURE"
    description = "descend the federation tree into the least-pressured subtree"
    supports_hierarchy = True

    def __init__(
        self,
        *,
        wan_mb_weight: float = 0.05,
        migration_weight: float = 0.0,
    ) -> None:
        if wan_mb_weight < 0:
            raise ConfigurationError(
                f"wan_mb_weight must be >= 0, got {wan_mb_weight}"
            )
        if migration_weight < 0:
            raise ConfigurationError(
                f"migration_weight must be >= 0, got {migration_weight}"
            )
        self.wan_mb_weight = wan_mb_weight
        self.migration_weight = migration_weight

    def choose_cluster(self, ctx: GatewayContext) -> int:
        view = ctx.hierarchy
        if view is None:
            return self._choose_flat(ctx)
        tree = view.tree
        origin = ctx.origin
        node = tree.root
        while not tree.is_leaf(node):
            best = -1
            best_pressure = float("inf")
            best_local = False
            for child in tree.children[node]:
                pressure = self._subtree_pressure(ctx, view, child)
                local = origin in tree.leaves_under[child]
                if (
                    best < 0
                    or pressure < best_pressure
                    or (pressure == best_pressure and local and not best_local)
                ):
                    best, best_pressure, best_local = child, pressure, local
            node = best
        return node

    def _subtree_pressure(
        self, ctx: GatewayContext, view: "HierarchyView", node: int
    ) -> float:
        """Aggregate pressure of one subtree (leaves beneath ``node``)."""
        tree = view.tree
        inflight = view.inflight_mb
        in_system = 0
        inflight_mb = 0.0
        migrations = 0
        alive = 0
        for leaf in tree.leaves_under[node]:
            shard = ctx.shards[leaf]
            in_system += shard.in_system
            inflight_mb += inflight[leaf]
            cluster = shard.cluster
            alive += len(cluster.machines) - cluster.state.n_down
            if self.migration_weight and ctx.migrations is not None:
                migrations += ctx.migrations_from(leaf)
        if alive <= 0:
            return float("inf")
        load = (
            in_system
            + self.wan_mb_weight * inflight_mb
            + self.migration_weight * migrations
        )
        return load / alive

    def _choose_flat(self, ctx: GatewayContext) -> int:
        """Depth-1 degenerate walk: argmin leaf pressure, origin on ties."""
        origin = ctx.origin
        best = origin
        best_pressure = shard_pressure(ctx.shards[origin])
        for shard in ctx.shards:
            if shard.index == origin:
                continue
            pressure = shard_pressure(shard)
            if pressure < best_pressure or (
                pressure == best_pressure
                and best != origin
                and shard.index < best
            ):
                best, best_pressure = shard.index, pressure
        return best
