"""Gateway-policy registry — the federation twin of the scheduler registry.

Local scheduling policies plug in by name (:mod:`repro.scheduling.registry`);
gateway (inter-cluster offloading) policies get the identical treatment so a
:class:`~repro.federation.spec.FederationSpec` can reference them from JSON
and campaigns can sweep offloading × local-policy grids. Names are matched
case-insensitively and ``-``/``_`` interchangeably, so the CLI accepts
``least-loaded`` for ``LEAST_LOADED``.
"""

from __future__ import annotations

from typing import Any, Iterable, Type

from ...core.errors import ConfigurationError, UnknownGatewayError
from .base import GatewayPolicy

__all__ = [
    "register_gateway",
    "create_gateway",
    "available_gateways",
    "gateway_class",
]

_REGISTRY: dict[str, Type[GatewayPolicy]] = {}
_ALIASES: dict[str, str] = {}


def _canonical(name: str) -> str:
    return name.upper().replace("-", "_")


def register_gateway(
    cls: Type[GatewayPolicy] | None = None, *, aliases: Iterable[str] = ()
) -> Any:
    """Class decorator adding a GatewayPolicy to the registry.

    Usage::

        @register_gateway(aliases=("LL",))
        class LeastLoadedGateway(GatewayPolicy):
            name = "LEAST_LOADED"
            ...
    """

    def apply(klass: Type[GatewayPolicy]) -> Type[GatewayPolicy]:
        if not klass.name:
            raise ConfigurationError(
                f"{klass.__name__} must define a non-empty 'name'"
            )
        key = _canonical(klass.name)
        existing = _REGISTRY.get(key)
        if existing is not None and existing is not klass:
            raise ConfigurationError(
                f"gateway name {klass.name!r} already registered to "
                f"{existing.__name__}"
            )
        _REGISTRY[key] = klass
        for alias in aliases:
            alias_key = _canonical(alias)
            if alias_key in _REGISTRY:
                raise ConfigurationError(
                    f"alias {alias!r} collides with a registered gateway name"
                )
            owner = _ALIASES.get(alias_key)
            if owner is not None and owner != key:
                raise ConfigurationError(
                    f"alias {alias!r} already points to {owner}"
                )
            _ALIASES[alias_key] = key
        return klass

    if cls is not None:  # bare decorator form
        return apply(cls)
    return apply


def gateway_class(name: str) -> Type[GatewayPolicy]:
    """Resolve a gateway-policy class by name or alias (case-insensitive)."""
    key = _canonical(name)
    key = _ALIASES.get(key, key)
    try:
        return _REGISTRY[key]
    except KeyError:
        raise UnknownGatewayError(
            f"unknown gateway policy {name!r}; available: {available_gateways()}"
        ) from None


def create_gateway(name: str, **kwargs: Any) -> GatewayPolicy:
    """Instantiate a gateway policy by registry name with policy kwargs."""
    klass = gateway_class(name)
    try:
        return klass(**kwargs)
    except TypeError as exc:
        raise ConfigurationError(
            f"bad parameters for gateway policy {name!r}: {exc}"
        ) from exc


def available_gateways() -> list[str]:
    """Sorted names of every registered gateway policy."""
    return sorted(_REGISTRY)
