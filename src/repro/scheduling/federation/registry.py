"""Gateway-policy registry — the federation twin of the scheduler registry.

Local scheduling policies plug in by name (:mod:`repro.scheduling.registry`);
gateway (inter-cluster offloading) policies get the identical treatment so a
:class:`~repro.federation.spec.FederationSpec` can reference them from JSON
and campaigns can sweep offloading × local-policy grids. Names are matched
case-insensitively and ``-``/``_`` interchangeably, so the CLI accepts
``least-loaded`` for ``LEAST_LOADED``.

Both registries are instances of the same generic
:class:`~repro.core.registry.NameRegistry`; this module binds it to
:class:`~repro.scheduling.federation.base.GatewayPolicy` with the
dash-folding canonicaliser and the gateway error type.
"""

from __future__ import annotations

from typing import Any, Iterable, Type

from ...core.errors import UnknownGatewayError
from ...core.registry import NameRegistry
from .base import GatewayPolicy

__all__ = [
    "register_gateway",
    "create_gateway",
    "available_gateways",
    "gateway_class",
]


def _canonical(name: str) -> str:
    return name.upper().replace("-", "_")


_REGISTRY: NameRegistry[GatewayPolicy] = NameRegistry(
    kind="gateway",
    kind_full="gateway policy",
    not_found_error=UnknownGatewayError,
    canonicalise=_canonical,
)


def register_gateway(
    cls: Type[GatewayPolicy] | None = None, *, aliases: Iterable[str] = ()
) -> Any:
    """Class decorator adding a GatewayPolicy to the registry.

    Usage::

        @register_gateway(aliases=("LL",))
        class LeastLoadedGateway(GatewayPolicy):
            name = "LEAST_LOADED"
            ...
    """
    return _REGISTRY.register(cls, aliases=aliases)


def gateway_class(name: str) -> Type[GatewayPolicy]:
    """Resolve a gateway-policy class by name or alias (case-insensitive)."""
    return _REGISTRY.resolve(name)


def create_gateway(name: str, **kwargs: Any) -> GatewayPolicy:
    """Instantiate a gateway policy by registry name with policy kwargs."""
    return _REGISTRY.create(name, **kwargs)


def available_gateways() -> list[str]:
    """Sorted names of every registered gateway policy."""
    return _REGISTRY.names()
