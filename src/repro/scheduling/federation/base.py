"""Gateway (inter-cluster offloading) policy framework.

A federated simulation (:mod:`repro.federation`) runs two decision layers:
the *gateway* decides **which cluster** receives each arriving task, then the
cluster's local scheduling policy decides **which machine** runs it. This
module is the gateway half: the read-only view a gateway policy receives
(:class:`GatewayContext`), the shard surface it may consult
(:class:`ShardView`), and the :class:`GatewayPolicy` base class every
offloading policy subclasses.

Gateway decisions are *routing* decisions — the policy returns a cluster
index and must not mutate tasks or shards. Offloaded tasks pay the WAN
transfer delay of :class:`repro.net.topology.InterClusterTopology` before
entering the destination cluster's batch queue.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar, Protocol, Sequence, runtime_checkable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from ...federation.hierarchy import HierarchyView
    from ...machines.cluster import Cluster
    from ...net.topology import InterClusterTopology
    from ...net.wan import WanManager
    from ...tasks.task import Task

__all__ = ["ShardView", "GatewayContext", "GatewayPolicy", "shard_pressure"]


@runtime_checkable
class ShardView(Protocol):
    """What a gateway policy may read about one cluster shard.

    :class:`repro.federation.shard.ClusterShard` satisfies this protocol
    structurally; tests can substitute a lightweight stub.
    """

    @property
    def index(self) -> int:
        """Position of the shard in the federation (the routing target)."""
        ...  # pragma: no cover - protocol

    @property
    def name(self) -> str:
        """Cluster name (the topology's node label)."""
        ...  # pragma: no cover - protocol

    @property
    def weight(self) -> float:
        """Configured arrival/traffic weight of the cluster."""
        ...  # pragma: no cover - protocol

    @property
    def cluster(self) -> "Cluster":
        """The machine population (ready times, EETs, idle index)."""
        ...  # pragma: no cover - protocol

    @property
    def in_system(self) -> int:
        """Tasks routed to this shard that have not reached a terminal state.

        Counts WAN in-transit, batch-queued, machine-queued and running
        tasks — the shard's total outstanding load, maintained in O(1).
        """
        ...  # pragma: no cover - protocol


def shard_pressure(shard: ShardView) -> float:
    """Outstanding tasks per live machine (``inf`` when the shard is dark).

    The load signal the stock gateway policies share: cheap (O(1)),
    monotone in backlog, and comparable across clusters of different sizes.
    Real shards answer through their own ``pressure()`` (same arithmetic,
    fewer property hops — this is called several times per routing
    decision); protocol stubs take the generic path.
    """
    try:
        return shard.pressure()  # type: ignore[attr-defined]
    except AttributeError:
        pass
    cluster = shard.cluster
    alive = len(cluster.machines) - cluster.state.n_down
    if alive <= 0:
        return float("inf")
    return shard.in_system / alive


@dataclass
class GatewayContext:
    """Everything a gateway policy may consult for one routing decision.

    The federation reuses one context object across decisions (``now``,
    ``task`` and ``origin`` are updated in place), so treat it as a
    read-only view valid only for the duration of the current
    ``choose_cluster`` call.

    Attributes
    ----------
    now:
        Current simulation time.
    task:
        The arriving task (still CREATED; not yet in any queue).
    origin:
        Index of the shard the task arrived at.
    shards:
        All cluster shards, in federation order.
    topology:
        Inter-cluster WAN links (``wan_delay(src, dst, megabytes)``).
    rng:
        Seeded generator for stochastic gateways (random-split).
    wan:
        Live WAN link state (:class:`repro.net.wan.WanManager`) — the
        congestion and energy signals. ``None`` in lightweight test
        harnesses; the signal methods below then fall back to the static
        topology numbers.
    migrations:
        Live source × destination mid-queue migration counters (the
        rebalancer's matrix, shard-index keyed), or ``None`` when the run
        has no rebalancer. Lets a gateway see how often its routing
        decisions are being corrected after the fact — e.g. back off a
        destination the rebalancer keeps draining.
    hierarchy:
        The federation tree and its live per-leaf WAN counters
        (:class:`repro.federation.hierarchy.HierarchyView`) when the run
        is hierarchical; ``None`` on flat federations. Tree-capable
        gateways (``supports_hierarchy``) roll leaf pressure up this view
        to pick subtrees level by level.
    """

    now: float
    task: "Task"
    origin: int
    shards: Sequence[ShardView]
    topology: "InterClusterTopology"
    rng: np.random.Generator
    wan: "WanManager | None" = None
    migrations: "Sequence[Sequence[int]] | None" = None
    hierarchy: "HierarchyView | None" = None

    def migrations_between(self, source: int, destination: int) -> int:
        """Tasks migrated source → destination so far (0 without a rebalancer)."""
        if self.migrations is None:
            return 0
        return self.migrations[source][destination]

    def migrations_from(self, source: int) -> int:
        """Tasks migrated *off* ``source`` so far (0 without a rebalancer)."""
        if self.migrations is None:
            return 0
        return sum(self.migrations[source])

    def wan_delay_to(self, destination: int) -> float:
        """Static (contention-blind) transfer delay of the current task."""
        return self.topology.wan_delay(
            self.shards[self.origin].name,
            self.shards[destination].name,
            self.task.task_type.data_in,
        )

    def estimated_wan_delay_to(self, destination: int) -> float:
        """Backlog-aware expected in-WAN time of the current task.

        On an uncontended (``"none"``) link — or without live WAN state —
        this equals :meth:`wan_delay_to`, so congestion-aware policies
        degrade exactly to their PR-3 behaviour when contention is off.
        """
        wan = self.wan
        if wan is None:
            return self.wan_delay_to(destination)
        try:
            # Index-keyed fast path: shard indices ARE the WAN manager's
            # name-table indices (both come from federation order).
            return wan.estimated_delay_by_index(
                self.origin, destination, self.task.task_type.data_in, self.now
            )
        except AttributeError:  # a test double exposing only the name API
            return wan.estimated_delay(
                self.shards[self.origin].name,
                self.shards[destination].name,
                self.task.task_type.data_in,
                self.now,
            )

    def link_queue_depth(self, destination: int) -> int:
        """Transfers occupying/awaiting the origin→destination link, now."""
        if self.wan is None:
            return 0
        return self.wan.queue_depth(
            self.shards[self.origin].name, self.shards[destination].name
        )

    def wan_energy_to(self, destination: int) -> float:
        """Joules the WAN would charge to ship the current task there."""
        if destination == self.origin:
            return 0.0
        link = self.topology.link_between(
            self.shards[self.origin].name, self.shards[destination].name
        )
        return link.transfer_energy(self.task.task_type.data_in)


class GatewayPolicy(abc.ABC):
    """Common interface of every inter-cluster offloading policy."""

    #: Registry name (e.g. "LEAST_LOADED"); set by subclasses.
    name: ClassVar[str] = ""
    #: Short human-readable description for the CLI / docs.
    description: ClassVar[str] = ""
    #: Whether ``choose_cluster`` reads live shard/WAN state (pressure,
    #: completion times, link backlog). State-blind policies (weights +
    #: seeded draws only) can be evaluated by a coordinator that has not
    #: synchronised with the shards — the property parallel federated
    #: execution needs for bit-identical windowed runs.
    reads_shard_state: ClassVar[bool] = True
    #: Whether the federation should call :meth:`record_outcome` for every
    #: terminal task. Learning policies (the adaptive gateway) opt in; the
    #: default keeps the stock policies free of per-task callback cost.
    wants_feedback: ClassVar[bool] = False
    #: Whether ``choose_cluster`` understands hierarchical federations
    #: (reads ``ctx.hierarchy`` and routes level by level). Flat policies
    #: compare leaves pairwise over direct links — links a tree topology
    #: does not have — so the hierarchy engine refuses them at
    #: construction rather than silently mis-pricing every WAN signal.
    supports_hierarchy: ClassVar[bool] = False

    @abc.abstractmethod
    def choose_cluster(self, ctx: GatewayContext) -> int:
        """Return the index of the shard that should receive ``ctx.task``."""

    def record_outcome(self, task: "Task", now: float) -> None:
        """Observe a task reaching a terminal state (hook; default no-op).

        Called once per terminal task — completed, deadline-missed, or
        cancelled in the WAN — when :attr:`wants_feedback` is true, after
        the owning shard's collector recorded it. Policies must treat the
        task as read-only.
        """

    def reset(self) -> None:
        """Clear any internal state (between simulation runs)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
