"""Adaptive (bandit) gateway: learn keep-vs-offload per destination online.

The stock gateways (:mod:`.policies`) are *model-based*: they act on an
instantaneous signal — pressure, estimated completion, WAN backlog — and
never find out whether the routed task actually met its deadline. Under
batch scheduling that signal is systematically wrong: a cluster's
``min_completion_time`` ignores its batch queue, so a saturated site keeps
looking attractive long after it stopped finishing anything on time.

:class:`AdaptiveGateway` closes the loop. It treats every
``(origin, task type, destination)`` triple as one bandit arm, routes by
epsilon-greedy or UCB1 over the arms' observed mean rewards, and is paid
when the federation records the task's terminal state: a deadline hit earns
a latency-shaped reward in ``(0, 1]``, a miss or cancellation earns ``0``.
The policy therefore learns, per task type, which cluster *actually*
finishes work on time — including every queueing and WAN effect the
analytic gateways cannot see.

Determinism: exploration draws come from the policy's own generator, seeded
via :func:`repro.core.rng.derive_seed` from the ``seed`` constructor
parameter and re-derived on every :meth:`reset`. Decisions are therefore a
pure function of (configuration, observed outcome history) — the property
the bandit regression suite pins bit-for-bit.

Because rewards couple routing to live shard outcomes, the policy honestly
declares ``reads_shard_state``; the windowed-parallel federated engine
refuses it cleanly instead of silently diverging.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar

import numpy as np

from ...core.errors import ConfigurationError
from ...core.rng import derive_seed, make_rng
from .base import GatewayContext, GatewayPolicy
from .registry import register_gateway

if TYPE_CHECKING:  # pragma: no cover
    from ...tasks.task import Task

__all__ = ["AdaptiveGateway", "ArmStats"]

#: One bandit arm: (origin cluster, task type name, destination cluster).
ArmKey = tuple[int, str, int]

_STRATEGIES = ("epsilon", "ucb")


@dataclass
class ArmStats:
    """Running reward account of one ``(origin, type, destination)`` arm."""

    count: int = 0
    total_reward: float = 0.0

    @property
    def mean(self) -> float:
        """Average observed reward (0 before the first outcome)."""
        return self.total_reward / self.count if self.count else 0.0


@register_gateway(aliases=("BANDIT",))
class AdaptiveGateway(GatewayPolicy):
    """Bandit over keep-vs-offload arms, rewarded by observed outcomes.

    Parameters
    ----------
    strategy:
        ``"epsilon"`` (epsilon-greedy) or ``"ucb"`` (UCB1).
    epsilon:
        Exploration probability of the epsilon-greedy strategy (in [0, 1]).
    ucb_c:
        Exploration width of the UCB strategy (>= 0; 0 degrades to pure
        greedy exploitation).
    latency_scale:
        Response-time scale (seconds, > 0) of the reward shaping: an
        on-time completion earns ``1 / (1 + response / latency_scale)``,
        so faster completions earn more and the scale sets how quickly the
        bonus decays.
    seed:
        Root of the policy's private exploration stream (non-negative).
        Exploration draws come from ``derive_seed(seed, "gateway",
        "adaptive")``, re-derived on every :meth:`reset`.

    Untried arms are played first, in destination-index order, so every
    destination gets at least one observation per context before any
    value comparison happens.
    """

    name = "ADAPTIVE"
    description = (
        "bandit over keep-vs-offload arms (epsilon-greedy/UCB), rewarded "
        "by observed completions and deadline hits"
    )
    # Rewards couple decisions to live shard outcomes: the coordinator of a
    # windowed-parallel run cannot replay them without synchronising with
    # the shards, so the parallel engine must refuse this policy.
    reads_shard_state: ClassVar[bool] = True
    wants_feedback: ClassVar[bool] = True

    def __init__(
        self,
        *,
        strategy: str = "epsilon",
        epsilon: float = 0.1,
        ucb_c: float = 0.5,
        latency_scale: float = 20.0,
        seed: int = 0,
    ) -> None:
        if strategy not in _STRATEGIES:
            raise ConfigurationError(
                f"strategy must be one of {_STRATEGIES}, got {strategy!r}"
            )
        if not 0.0 <= epsilon <= 1.0:
            raise ConfigurationError(
                f"epsilon must be in [0, 1], got {epsilon}"
            )
        if ucb_c < 0:
            raise ConfigurationError(f"ucb_c must be >= 0, got {ucb_c}")
        if not latency_scale > 0:
            raise ConfigurationError(
                f"latency_scale must be > 0, got {latency_scale}"
            )
        if seed < 0:
            raise ConfigurationError(f"seed must be >= 0, got {seed}")
        self.strategy = strategy
        self.epsilon = epsilon
        self.ucb_c = ucb_c
        self.latency_scale = latency_scale
        self.seed = seed
        self._rng: np.random.Generator
        self._arms: dict[ArmKey, ArmStats]
        self._pending: dict[int, ArmKey]
        self._ledger: list[tuple[int, ArmKey, float]]
        self._decisions: int
        self.reset()

    def reset(self) -> None:
        """Forget everything learned and re-derive the exploration stream."""
        self._rng = make_rng(derive_seed(self.seed, "gateway", "adaptive"))
        self._arms = {}
        self._pending = {}
        self._ledger = []
        self._decisions = 0

    # -- routing ------------------------------------------------------------------

    def choose_cluster(self, ctx: GatewayContext) -> int:
        task = ctx.task
        n = len(ctx.shards)
        origin = ctx.origin
        context = (origin, task.task_type.name)
        destination = 0 if n == 1 else self._pick(context, n)
        self._decisions += 1
        self._pending[task.id] = (context[0], context[1], destination)
        return destination

    def _pick(self, context: tuple[int, str], n: int) -> int:
        origin, task_type = context
        arms = [self._arms.get((origin, task_type, d)) for d in range(n)]
        untried = [
            d for d, stats in enumerate(arms) if stats is None or not stats.count
        ]
        if untried:
            # Deterministic coverage: every destination is observed once
            # per context before any exploit/explore comparison.
            return untried[0]
        if self.strategy == "epsilon":
            if self.epsilon and self._rng.random() < self.epsilon:
                return int(self._rng.integers(n))
            return self._argmax(
                origin, [stats.mean for stats in arms if stats is not None]
            )
        total = sum(stats.count for stats in arms if stats is not None)
        log_total = math.log(total)
        return self._argmax(
            origin,
            [
                stats.mean + self.ucb_c * math.sqrt(log_total / stats.count)
                for stats in arms
                if stats is not None
            ],
        )

    @staticmethod
    def _argmax(origin: int, scores: list[float]) -> int:
        """Highest score; exact ties keep the task home, then lowest index."""
        best, best_score = origin, scores[origin]
        for destination, score in enumerate(scores):
            if score > best_score:
                best, best_score = destination, score
        return best

    # -- the reward loop ----------------------------------------------------------

    def record_outcome(self, task: "Task", now: float) -> None:
        """Credit a terminal task's outcome to the arm that routed it.

        Fired by the federated simulator for every terminal task when the
        policy wants feedback; tasks this policy never routed (none, in a
        normal run) are ignored. Migrated tasks are credited to the arm of
        the *original* routing decision — the bandit learns what its own
        choice led to, rebalancer included.
        """
        key = self._pending.pop(task.id, None)
        if key is None:
            return
        reward = self._reward(task)
        stats = self._arms.get(key)
        if stats is None:
            stats = self._arms[key] = ArmStats()
        stats.count += 1
        stats.total_reward += reward
        self._ledger.append((task.id, key, reward))

    def _reward(self, task: "Task") -> float:
        from ...tasks.task import TaskStatus

        completion = task.completion_time
        if (
            task.status is not TaskStatus.COMPLETED
            or completion is None
            or completion > task.deadline
        ):
            return 0.0
        response = completion - task.arrival_time
        return 1.0 / (1.0 + response / self.latency_scale)

    # -- introspection (tests, docs, the tournament report) -----------------------

    @property
    def decisions(self) -> int:
        """Routing decisions made since the last :meth:`reset`."""
        return self._decisions

    @property
    def rewards_recorded(self) -> int:
        """Terminal outcomes credited to an arm since the last reset."""
        return len(self._ledger)

    @property
    def pending(self) -> int:
        """Decisions still awaiting their terminal outcome."""
        return len(self._pending)

    def arm_stats(self) -> dict[ArmKey, tuple[int, float]]:
        """``(count, total reward)`` per arm, in sorted arm-key order."""
        return {
            key: (stats.count, stats.total_reward)
            for key, stats in sorted(self._arms.items())
        }

    def ledger(self) -> list[tuple[int, ArmKey, float]]:
        """``(task id, arm, reward)`` per credited outcome, in credit order."""
        return list(self._ledger)
