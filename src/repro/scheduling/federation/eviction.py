"""Eviction policies: which queued tasks to migrate off a saturated cluster.

The gateway (:mod:`.policies`) routes a task exactly once, at arrival. The
migration layer (:mod:`repro.federation.migration`) revisits that decision
mid-queue: when a cluster saturates while a remote one drains, a rebalance
pass evicts tasks from the saturated shard's batch queue and re-homes them
across the WAN. *Which* tasks to evict is a policy question with the same
shape as gateway routing — so eviction policies get the identical plug-in
treatment: a base class (:class:`EvictionPolicy`), a read-only decision
context (:class:`MigrationContext`), and a registry
(:func:`register_eviction` / :func:`create_eviction`) built on the shared
:class:`~repro.core.registry.NameRegistry`.

The stock disciplines mirror the classic triage heuristics:

* :class:`LongestWaitEviction` — ship the tasks that have waited longest
  (they are the clearest victims of the backlog, and the head of a FIFO
  queue is exactly what a drained remote cluster can start soonest).
* :class:`DeadlineSlackEviction` — ship only tasks with enough remaining
  slack to survive the WAN crossing (a migration that delivers a corpse
  wastes bandwidth *and* the task); most-slack-first.
* :class:`EETGainEviction` — ship the tasks whose estimated completion
  improves most by moving (remote best completion + backlog-aware WAN
  delay vs. staying put); the migration twin of ``EET_AWARE_REMOTE``.

Policies are read-only: they rank and return candidates; the rebalancer
performs the actual evictions, WAN submissions and accounting.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, ClassVar, Iterable, Sequence, Type

from ...core.errors import ConfigurationError, UnknownEvictionPolicyError
from ...core.registry import NameRegistry
from .base import ShardView

if TYPE_CHECKING:  # pragma: no cover
    from ...net.topology import InterClusterTopology
    from ...net.wan import WanManager
    from ...tasks.task import Task

__all__ = [
    "MigrationContext",
    "EvictionPolicy",
    "LongestWaitEviction",
    "DeadlineSlackEviction",
    "EETGainEviction",
    "register_eviction",
    "create_eviction",
    "available_evictions",
    "eviction_class",
]


@dataclass
class MigrationContext:
    """Everything an eviction policy may consult for one rebalance decision.

    Attributes
    ----------
    now:
        Current simulation time (the rebalance tick).
    source:
        The saturated shard tasks would be evicted from.
    destination:
        The drained shard they would be shipped to.
    candidates:
        Snapshot of the source's batch queue, in FIFO order, already
        filtered to tasks whose deadline has not passed. Policies must not
        mutate the tasks.
    limit:
        Maximum number of tasks the rebalancer will accept this pass
        (returning more is allowed; the surplus is ignored).
    topology:
        Inter-cluster WAN links (static delays and energy).
    wan:
        Live WAN link state for backlog-aware delay estimates; ``None`` in
        lightweight test harnesses (estimates fall back to the static
        topology numbers).
    """

    now: float
    source: ShardView
    destination: ShardView
    candidates: Sequence["Task"]
    limit: int
    topology: "InterClusterTopology"
    wan: "WanManager | None" = None

    def estimated_wan_delay(self, task: "Task") -> float:
        """Backlog-aware expected in-WAN time of migrating *task* now."""
        src, dst = self.source.name, self.destination.name
        if self.wan is None:
            return self.topology.wan_delay(src, dst, task.task_type.data_in)
        return self.wan.estimated_delay(
            src, dst, task.task_type.data_in, self.now
        )

    def source_completion(self, task: "Task") -> float:
        """Best achievable completion time of *task* if it stays put."""
        return float(
            self.source.cluster.completion_times(task, self.now).min()
        )

    def destination_completion(self, task: "Task") -> float:
        """Best completion time at the destination, including the WAN trip."""
        return self.estimated_wan_delay(task) + float(
            self.destination.cluster.completion_times(task, self.now).min()
        )


class EvictionPolicy(abc.ABC):
    """Common interface of every mid-queue migration eviction policy."""

    #: Registry name (e.g. "LONGEST_WAIT"); set by subclasses.
    name: ClassVar[str] = ""
    #: Short human-readable description for the CLI / docs.
    description: ClassVar[str] = ""

    @abc.abstractmethod
    def select(self, ctx: MigrationContext) -> list["Task"]:
        """Return the candidates to migrate, most-worth-moving first.

        At most ``ctx.limit`` of the returned tasks are evicted, in order.
        """

    def reset(self) -> None:
        """Clear any internal state (between simulation runs)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


def _canonical(name: str) -> str:
    return name.upper().replace("-", "_")


_REGISTRY: NameRegistry[EvictionPolicy] = NameRegistry(
    kind="eviction",
    kind_full="eviction policy",
    not_found_error=UnknownEvictionPolicyError,
    canonicalise=_canonical,
)


def register_eviction(
    cls: Type[EvictionPolicy] | None = None, *, aliases: Iterable[str] = ()
) -> Any:
    """Class decorator adding an EvictionPolicy to the registry."""
    return _REGISTRY.register(cls, aliases=aliases)


def eviction_class(name: str) -> Type[EvictionPolicy]:
    """Resolve an eviction-policy class by name or alias (case-insensitive)."""
    return _REGISTRY.resolve(name)


def create_eviction(name: str, **kwargs: Any) -> EvictionPolicy:
    """Instantiate an eviction policy by registry name with policy kwargs."""
    return _REGISTRY.create(name, **kwargs)


def available_evictions() -> list[str]:
    """Sorted names of every registered eviction policy."""
    return _REGISTRY.names()


@register_eviction(aliases=("WAIT",))
class LongestWaitEviction(EvictionPolicy):
    """Migrate the tasks that have waited longest in the batch queue.

    The FIFO head has absorbed the most backlog delay and is what a drained
    remote cluster can start soonest — the classic work-stealing order.
    Deterministic: ties resolve to queue (arrival-event) order.
    """

    name = "LONGEST_WAIT"
    description = "evict the longest-queued tasks first (work stealing)"

    def select(self, ctx: MigrationContext) -> list["Task"]:
        return sorted(
            ctx.candidates, key=lambda t: t.arrival_time
        )[: ctx.limit]


@register_eviction(aliases=("SLACK",))
class DeadlineSlackEviction(EvictionPolicy):
    """Migrate only tasks with enough slack to survive the WAN crossing.

    A task whose remaining slack (deadline − now) is below ``margin`` times
    the backlog-aware WAN delay would likely expire in flight — migrating
    it burns link bandwidth and energy to deliver a corpse, so it stays.
    Among the survivors, most-slack-first: they tolerate the trip best and
    free the queue for the urgent tasks that cannot travel.
    """

    name = "DEADLINE_SLACK"
    description = (
        "evict the most-slack tasks whose deadline survives the WAN trip"
    )

    def __init__(self, *, margin: float = 1.5) -> None:
        if margin < 1.0:
            raise ConfigurationError(
                f"margin must be >= 1 (a trip below the WAN delay cannot "
                f"arrive alive), got {margin}"
            )
        self.margin = margin

    def select(self, ctx: MigrationContext) -> list["Task"]:
        now = ctx.now
        viable = [
            task
            for task in ctx.candidates
            if task.deadline - now
            >= self.margin * ctx.estimated_wan_delay(task)
        ]
        return sorted(viable, key=lambda t: (-(t.deadline - now), t.id))[
            : ctx.limit
        ]


@register_eviction(aliases=("GAIN",))
class EETGainEviction(EvictionPolicy):
    """Migrate the tasks whose estimated completion improves most by moving.

    For each candidate the gain is ``best completion at the source`` minus
    ``backlog-aware WAN delay + best completion at the destination`` — the
    same vectorised quantity ``EET_AWARE_REMOTE`` minimises at arrival,
    re-evaluated mid-queue. Only positive-gain tasks are offered (a move
    that arrives no sooner is pure WAN cost); largest gain first.

    ``min_gain`` (seconds) raises the bar: small predicted gains tend to
    evaporate under estimate error, and every migration still pays the
    link's energy price.
    """

    name = "EET_GAIN"
    description = (
        "evict the tasks whose completion estimate improves most by moving"
    )

    def __init__(self, *, min_gain: float = 0.0) -> None:
        if min_gain < 0:
            raise ConfigurationError(
                f"min_gain must be >= 0, got {min_gain}"
            )
        self.min_gain = min_gain

    def select(self, ctx: MigrationContext) -> list["Task"]:
        scored: list[tuple[float, "Task"]] = []
        for task in ctx.candidates:
            gain = ctx.source_completion(task) - ctx.destination_completion(
                task
            )
            if gain > self.min_gain:
                scored.append((gain, task))
        scored.sort(key=lambda pair: (-pair[0], pair[1].id))
        return [task for _gain, task in scored[: ctx.limit]]
