"""Gateway (inter-cluster offloading) policy family for federated runs.

Mirrors the local-policy plug-in surface: a base class
(:class:`GatewayPolicy`), a registry (:func:`register_gateway` /
:func:`create_gateway` / :func:`available_gateways`) and four stock
disciplines — locality-first, least-loaded, EET-aware-remote and
random-split.
"""

from .base import GatewayContext, GatewayPolicy, ShardView, shard_pressure
from .policies import (
    EETAwareRemoteGateway,
    LeastLoadedGateway,
    LocalityFirstGateway,
    RandomSplitGateway,
)
from .registry import (
    available_gateways,
    create_gateway,
    gateway_class,
    register_gateway,
)

__all__ = [
    "GatewayContext",
    "GatewayPolicy",
    "ShardView",
    "shard_pressure",
    "LocalityFirstGateway",
    "LeastLoadedGateway",
    "EETAwareRemoteGateway",
    "RandomSplitGateway",
    "register_gateway",
    "create_gateway",
    "available_gateways",
    "gateway_class",
]
