"""Gateway (inter-cluster offloading) policy family for federated runs.

Mirrors the local-policy plug-in surface: a base class
(:class:`GatewayPolicy`), a registry (:func:`register_gateway` /
:func:`create_gateway` / :func:`available_gateways`) and five stock
disciplines — locality-first, least-loaded, EET-aware-remote, random-split
and the learning adaptive (bandit) gateway (:mod:`.adaptive`).

The *eviction* policy family (:mod:`.eviction`) is the mid-queue twin:
where gateways decide a task's cluster once at arrival, eviction policies
decide which already-queued tasks a rebalance pass migrates off a saturated
cluster — same registry treatment (:func:`register_eviction` /
:func:`create_eviction`), three stock disciplines (longest-wait,
deadline-slack, EET-gain).
"""

from .adaptive import AdaptiveGateway, ArmStats
from .base import GatewayContext, GatewayPolicy, ShardView, shard_pressure
from .eviction import (
    DeadlineSlackEviction,
    EETGainEviction,
    EvictionPolicy,
    LongestWaitEviction,
    MigrationContext,
    available_evictions,
    create_eviction,
    eviction_class,
    register_eviction,
)
from .policies import (
    EETAwareRemoteGateway,
    LeastLoadedGateway,
    LocalityFirstGateway,
    RandomSplitGateway,
)
from .registry import (
    available_gateways,
    create_gateway,
    gateway_class,
    register_gateway,
)
from .tree import TreePressureGateway

__all__ = [
    "GatewayContext",
    "GatewayPolicy",
    "ShardView",
    "shard_pressure",
    "LocalityFirstGateway",
    "LeastLoadedGateway",
    "EETAwareRemoteGateway",
    "RandomSplitGateway",
    "AdaptiveGateway",
    "ArmStats",
    "TreePressureGateway",
    "register_gateway",
    "create_gateway",
    "available_gateways",
    "gateway_class",
    "MigrationContext",
    "EvictionPolicy",
    "LongestWaitEviction",
    "DeadlineSlackEviction",
    "EETGainEviction",
    "register_eviction",
    "create_eviction",
    "available_evictions",
    "eviction_class",
]
