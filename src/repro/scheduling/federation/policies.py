"""Stock gateway (inter-cluster offloading) policies.

The four canonical routing disciplines of edge-cloud offloading studies:

* :class:`LocalityFirstGateway` — keep the task at its origin site unless the
  site is saturated; cheapest possible WAN usage.
* :class:`LeastLoadedGateway` — always route to the cluster with the lowest
  outstanding load per live machine; pure load balancing, WAN-blind.
* :class:`EETAwareRemoteGateway` — estimate each cluster's best achievable
  completion time *including* the WAN transfer delay and route to the
  argmin; the federated analogue of MECT.
* :class:`RandomSplitGateway` — weighted random split across clusters; the
  noise-floor baseline (and the classic probabilistic load sharing).

All decisions are deterministic given the context (random-split draws from
the federation's seeded generator), so federated runs replay bit-identically.
"""

from __future__ import annotations

import numpy as np

from ...core.errors import ConfigurationError, SchedulingError
from .base import GatewayContext, GatewayPolicy, ShardView, shard_pressure
from .registry import register_gateway

__all__ = [
    "LocalityFirstGateway",
    "LeastLoadedGateway",
    "EETAwareRemoteGateway",
    "RandomSplitGateway",
]


@register_gateway(aliases=("LOCALITY",))
class LocalityFirstGateway(GatewayPolicy):
    """Stay home unless the origin cluster is saturated.

    The task remains at its origin while the origin's pressure (outstanding
    tasks per live machine) is at most ``threshold``; beyond that it spills
    to the lowest-pressure cluster — which may still be the origin if every
    remote site is worse. ``threshold`` is the knob between "never offload"
    (large) and "behave like least-loaded under any load" (zero).
    """

    name = "LOCALITY_FIRST"
    description = "keep tasks at their origin cluster unless it is saturated"

    def __init__(self, *, threshold: float = 2.0) -> None:
        if threshold < 0:
            raise ConfigurationError(
                f"threshold must be >= 0, got {threshold}"
            )
        self.threshold = threshold

    def choose_cluster(self, ctx: GatewayContext) -> int:
        origin = ctx.origin
        origin_pressure = shard_pressure(ctx.shards[origin])
        if origin_pressure <= self.threshold:
            return origin
        best, best_pressure = origin, origin_pressure
        for shard in ctx.shards:
            if shard.index == origin:
                continue
            pressure = shard_pressure(shard)
            if pressure < best_pressure:
                best, best_pressure = shard.index, pressure
        return best


@register_gateway(aliases=("LEASTLOAD",))
class LeastLoadedGateway(GatewayPolicy):
    """Route to the cluster with the lowest outstanding load per machine.

    Ties (including the all-idle start of a run) resolve to the origin
    cluster first, then to the lowest shard index, so the policy degrades
    gracefully into locality when the system is balanced.
    """

    name = "LEAST_LOADED"
    description = "route every task to the least-loaded cluster"

    def choose_cluster(self, ctx: GatewayContext) -> int:
        best = ctx.origin
        best_pressure = shard_pressure(ctx.shards[best])
        origin = ctx.origin
        for shard in ctx.shards:
            if shard.index == origin:
                continue
            pressure = shard_pressure(shard)
            if pressure < best_pressure or (
                pressure == best_pressure
                and best != origin
                and shard.index < best
            ):
                best, best_pressure = shard.index, pressure
        return best


@register_gateway(aliases=("EETREMOTE",))
class EETAwareRemoteGateway(GatewayPolicy):
    """Minimise (WAN transfer + best local completion time) across clusters.

    For each cluster the estimate is the minimum over its machines of
    ``ready_time + EET`` (the same vectorised quantity MECT minimises
    locally) plus the *backlog-aware* WAN delay from the task's origin
    (:meth:`~repro.scheduling.federation.base.GatewayContext.estimated_wan_delay_to`):
    on contended links the estimate includes the link's current queue, so a
    congested pipe steers traffic away. On uncontended links the estimate
    equals the static delay and the policy behaves exactly as before
    contention existed. The origin wins ties, so zero-latency federations
    behave exactly like one big MECT front-end.

    ``energy_weight`` (J → seconds exchange rate, default 0) adds
    ``energy_weight × transfer joules`` to each remote cluster's cost,
    turning the policy into an energy-aware offloader: at 0 it minimises
    completion time alone; large values keep energy-expensive payloads home
    unless the remote speed-up is overwhelming.
    """

    name = "EET_AWARE_REMOTE"
    description = (
        "route to the cluster minimising congestion-aware WAN delay + best "
        "completion (optionally energy-weighted)"
    )

    def __init__(self, *, energy_weight: float = 0.0) -> None:
        if energy_weight < 0:
            raise ConfigurationError(
                f"energy_weight must be >= 0, got {energy_weight}"
            )
        self.energy_weight = energy_weight

    def choose_cluster(self, ctx: GatewayContext) -> int:
        task, now = ctx.task, ctx.now
        origin = ctx.origin
        weight = self.energy_weight
        best = origin
        best_cost = _best_local_completion(ctx.shards[origin], task, now)
        for shard in ctx.shards:
            if shard.index == origin:
                continue
            cost = ctx.estimated_wan_delay_to(
                shard.index
            ) + _best_local_completion(shard, task, now)
            if weight:
                cost += weight * ctx.wan_energy_to(shard.index)
            if cost < best_cost:
                best, best_cost = shard.index, cost
        return best


def _best_local_completion(shard: "ShardView", task, now: float) -> float:
    """Minimum ``ready_time + EET`` over the shard's machines.

    Uses the cluster's scalar ``min_completion_time`` fast path when present
    (it performs the identical IEEE operations); protocol stubs without it
    fall back to the vectorised expression.
    """
    cluster = shard.cluster
    try:
        return cluster.min_completion_time(task, now)
    except AttributeError:
        return float(cluster.completion_times(task, now).min())


@register_gateway(aliases=("RANDSPLIT",))
class RandomSplitGateway(GatewayPolicy):
    """Weighted random split across clusters (the noise-floor baseline).

    Weights default to each cluster's configured ``weight`` (the same
    numbers that bias where tasks *arrive*); pass explicit ``weights`` to
    decouple routing shares from arrival shares.
    """

    name = "RANDOM_SPLIT"
    description = "split tasks across clusters at random, by weight"
    # Routing uses only static weights and the federation's seeded
    # generator — never live shard state — so windowed-parallel execution
    # can reproduce its decisions without synchronising with the shards.
    reads_shard_state = False

    def __init__(self, *, weights: list[float] | None = None) -> None:
        if weights is not None:
            if not weights or any(w < 0 for w in weights):
                raise ConfigurationError(
                    f"weights must be non-negative and non-empty: {weights}"
                )
            if sum(weights) <= 0:
                raise ConfigurationError("weights must not sum to zero")
        self.weights = weights

    def choose_cluster(self, ctx: GatewayContext) -> int:
        n = len(ctx.shards)
        weights = self.weights
        if weights is None:
            weights = [shard.weight for shard in ctx.shards]
        if len(weights) != n:
            raise SchedulingError(
                f"{self.name}: {len(weights)} weights for {n} clusters"
            )
        probs = np.asarray(weights, dtype=float)
        total = probs.sum()
        if total <= 0:
            raise SchedulingError(f"{self.name}: weights sum to zero")
        return int(ctx.rng.choice(n, p=probs / total))
