"""FirstCome-FirstServe (FCFS) — paper policy.

Tasks are mapped in arrival order; each goes to the machine that becomes
ready soonest (load-only choice — FCFS is blind to execution-time
heterogeneity, which is exactly why MECT outperforms it on heterogeneous
systems, the §4 learning outcome). Ties break toward the lowest machine id.
"""

from __future__ import annotations

import numpy as np

from ...machines.machine import Machine
from ...tasks.task import Task
from ..base import ImmediateScheduler
from ..context import SchedulingContext
from ..registry import register_scheduler

__all__ = ["FCFSScheduler"]


@register_scheduler(aliases=("FIRSTCOME-FIRSTSERVE",))
class FCFSScheduler(ImmediateScheduler):
    """Earliest-ready machine for the task at the head of the queue."""

    name = "FCFS"
    description = (
        "FirstCome-FirstServe: arriving task goes to the machine that "
        "becomes ready soonest (EET-blind)."
    )

    def choose_machine(self, task: Task, ctx: SchedulingContext) -> Machine:
        ready = ctx.ready_times()
        return ctx.cluster.machines[int(np.argmin(ready))]
