"""Round-Robin (RR) — load-distribution baseline.

Cycles through machines in id order regardless of load or EET. The simplest
possible "fair to machines" policy; a useful classroom contrast with FCFS
(load-aware, EET-blind) and MECT (load- and EET-aware).
"""

from __future__ import annotations

from ...machines.machine import Machine
from ...tasks.task import Task
from ..base import ImmediateScheduler
from ..context import SchedulingContext
from ..registry import register_scheduler

__all__ = ["RoundRobinScheduler"]


@register_scheduler(aliases=("ROUNDROBIN", "ROUND-ROBIN"))
class RoundRobinScheduler(ImmediateScheduler):
    """Machine i, then i+1, ... modulo the cluster size."""

    name = "RR"
    description = "Round-Robin: cycle through machines in fixed order."

    def __init__(self) -> None:
        self._next = 0

    def choose_machine(self, task: Task, ctx: SchedulingContext) -> Machine:
        machine = ctx.cluster.machines[self._next % len(ctx.cluster)]
        self._next += 1
        return machine

    def reset(self) -> None:
        self._next = 0
