"""Uniform-random mapping — the noise floor baseline.

Every arriving task goes to a machine drawn uniformly at random from the
cluster (seeded through the scheduling context, so runs stay reproducible).
Any policy worth teaching should beat this.
"""

from __future__ import annotations

from ...machines.machine import Machine
from ...tasks.task import Task
from ..base import ImmediateScheduler
from ..context import SchedulingContext
from ..registry import register_scheduler

__all__ = ["RandomScheduler"]


@register_scheduler
class RandomScheduler(ImmediateScheduler):
    """Uniform-random machine choice."""

    name = "RANDOM"
    description = "Uniform-random machine choice (noise-floor baseline)."

    def choose_machine(self, task: Task, ctx: SchedulingContext) -> Machine:
        return ctx.cluster.machines[int(ctx.rng.integers(len(ctx.cluster)))]
