"""K-Percent Best (KPB) — classic baseline from [13].

For each arriving task, restrict attention to the ⌈(k/100)·M⌉ machines with
the smallest EET for its type, then map to the one among them with the
minimum completion time. k = 100 reduces to MECT; k → 0 reduces to MEET; the
sweet spot in between avoids both MEET's pile-up and MECT's willingness to
put a task on a grossly unsuitable machine.
"""

from __future__ import annotations

import math

import numpy as np

from ...core.errors import ConfigurationError
from ...machines.machine import Machine
from ...tasks.task import Task
from ..base import ImmediateScheduler
from ..context import SchedulingContext
from ..registry import register_scheduler

__all__ = ["KPBScheduler"]


@register_scheduler(aliases=("K-PERCENT-BEST",))
class KPBScheduler(ImmediateScheduler):
    """Min completion time within the k% best-EET machines."""

    name = "KPB"
    description = (
        "K-Percent Best: minimum completion time within the k% of machines "
        "with the best EET for the task."
    )

    def __init__(self, k: float = 50.0) -> None:
        if not 0 < k <= 100:
            raise ConfigurationError(f"k must be in (0, 100], got {k}")
        self.k = float(k)

    def choose_machine(self, task: Task, ctx: SchedulingContext) -> Machine:
        eet = ctx.cluster.eet_vector(task)
        n = len(ctx.cluster)
        subset_size = max(1, math.ceil(self.k / 100.0 * n))
        # Machines sorted by EET; stable ties toward low ids.
        best = np.argsort(eet, kind="stable")[:subset_size]
        completion = ctx.cluster.completion_times(task, ctx.now)[best]
        return ctx.cluster.machines[int(best[int(np.argmin(completion))])]
