"""Opportunistic Load Balancing (OLB) — classic baseline from [13].

Maps each task to the machine expected to become *ready* soonest, without
consulting EETs. Identical machine choice to our FCFS; kept as a separate
registry entry because the literature distinguishes OLB (machine choice) from
FCFS (task ordering), and because side-by-side runs of FCFS/OLB are a useful
sanity check that both implementations agree.
"""

from __future__ import annotations

import numpy as np

from ...machines.machine import Machine
from ...tasks.task import Task
from ..base import ImmediateScheduler
from ..context import SchedulingContext
from ..registry import register_scheduler

__all__ = ["OLBScheduler"]


@register_scheduler
class OLBScheduler(ImmediateScheduler):
    """Earliest-ready machine, EET-blind."""

    name = "OLB"
    description = (
        "Opportunistic Load Balancing: earliest-ready machine, ignoring EETs."
    )

    def choose_machine(self, task: Task, ctx: SchedulingContext) -> Machine:
        return ctx.cluster.machines[int(np.argmin(ctx.ready_times()))]
