"""Minimum Expected Completion Time (MECT) — paper policy.

The classic MCT heuristic of Maheswaran et al. [13]: the arriving task is
mapped to the machine minimising ``ready_time + EET``, i.e. the earliest
*finish*, balancing heterogeneity against current load. Ties break toward the
lowest machine id.
"""

from __future__ import annotations

from ...machines.machine import Machine
from ...tasks.task import Task
from ..base import ImmediateScheduler
from ..context import SchedulingContext
from ..registry import register_scheduler

__all__ = ["MECTScheduler"]


@register_scheduler(aliases=("MCT", "MIN-EXPECTED-COMPLETION-TIME"))
class MECTScheduler(ImmediateScheduler):
    """argmin over machines of (ready time + EET of the task)."""

    name = "MECT"
    description = (
        "Minimum Expected Completion Time: map to the machine finishing the "
        "task earliest (ready time + EET)."
    )

    def choose_machine(self, task: Task, ctx: SchedulingContext) -> Machine:
        cluster = ctx.cluster
        return cluster.machines[cluster.argmin_completion(task, ctx.now)]
