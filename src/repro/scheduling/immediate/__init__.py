"""Immediate-mode scheduling policies.

Paper policies: :class:`FCFSScheduler`, :class:`MECTScheduler`,
:class:`MEETScheduler`. Classic extensions from Maheswaran et al. [13]:
OLB, RR, Random, KPB, SA.
"""

from .fcfs import FCFSScheduler
from .kpb import KPBScheduler
from .mect import MECTScheduler
from .meet import MEETScheduler
from .olb import OLBScheduler
from .random_policy import RandomScheduler
from .round_robin import RoundRobinScheduler
from .switching import SwitchingScheduler

__all__ = [
    "FCFSScheduler",
    "MECTScheduler",
    "MEETScheduler",
    "OLBScheduler",
    "RandomScheduler",
    "RoundRobinScheduler",
    "KPBScheduler",
    "SwitchingScheduler",
]
