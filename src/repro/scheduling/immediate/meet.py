"""Minimum Expected Execution Time (MEET) — paper policy.

The classic MET heuristic of Maheswaran et al. [13]: the arriving task goes
to the machine with the smallest EET for its type, *ignoring load*. On
heterogeneous systems this chases the fastest machine and can overload it;
on a perfectly homogeneous system every machine ties, so the tie-break
dominates behaviour. Faithful to the EET-table argmin of the original
simulator, the default tie-break is the lowest machine id; pass
``tie_break="ready_time"`` for the load-aware variant (useful as an ablation
of why MET degenerates).
"""

from __future__ import annotations

import numpy as np

from ...core.errors import ConfigurationError
from ...machines.machine import Machine
from ...tasks.task import Task
from ..base import ImmediateScheduler
from ..context import SchedulingContext
from ..registry import register_scheduler

__all__ = ["MEETScheduler"]


@register_scheduler(aliases=("MET", "MIN-EXPECTED-EXECUTION-TIME"))
class MEETScheduler(ImmediateScheduler):
    """argmin over machines of EET, load-blind."""

    name = "MEET"
    description = (
        "Minimum Expected Execution Time: map to the machine with the "
        "smallest EET regardless of its load."
    )

    def __init__(self, tie_break: str = "index") -> None:
        if tie_break not in ("index", "ready_time"):
            raise ConfigurationError(
                f"tie_break must be 'index' or 'ready_time', got {tie_break!r}"
            )
        self.tie_break = tie_break

    def choose_machine(self, task: Task, ctx: SchedulingContext) -> Machine:
        eet = ctx.cluster.eet_vector(task)
        if self.tie_break == "index":
            return ctx.cluster.machines[int(np.argmin(eet))]
        best = eet.min()
        candidates = np.flatnonzero(np.isclose(eet, best, rtol=1e-12, atol=0.0))
        ready = ctx.ready_times()[candidates]
        return ctx.cluster.machines[int(candidates[int(np.argmin(ready))])]
