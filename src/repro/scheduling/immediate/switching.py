"""Switching Algorithm (SA) — classic baseline from [13].

Alternates between MET (exploit the fastest machines) and MCT (rebalance
load) based on the load-balance ratio r = min(ready) / max(ready):

* in MCT mode, once the system is balanced (r ≥ r_high) switch to MET;
* in MET mode, once imbalance grows (r ≤ r_low) switch back to MCT.

Stateful; :meth:`reset` returns to MCT mode between runs.
"""

from __future__ import annotations

import numpy as np

from ...core.errors import ConfigurationError
from ...machines.machine import Machine
from ...tasks.task import Task
from ..base import ImmediateScheduler
from ..context import SchedulingContext
from ..registry import register_scheduler

__all__ = ["SwitchingScheduler"]


@register_scheduler(aliases=("SWITCHING",))
class SwitchingScheduler(ImmediateScheduler):
    """Hysteresis switch between MET and MCT by load-balance ratio."""

    name = "SA"
    description = (
        "Switching Algorithm: MET while the load stays balanced, MCT while "
        "it is skewed (hysteresis thresholds r_low/r_high)."
    )

    def __init__(self, r_low: float = 0.6, r_high: float = 0.9) -> None:
        if not 0 <= r_low <= r_high <= 1:
            raise ConfigurationError(
                f"need 0 <= r_low <= r_high <= 1; got {r_low}, {r_high}"
            )
        self.r_low = r_low
        self.r_high = r_high
        self._met_mode = False

    def choose_machine(self, task: Task, ctx: SchedulingContext) -> Machine:
        ready = ctx.ready_times()
        max_ready = float(ready.max())
        # All-idle systems are perfectly balanced by definition.
        r = 1.0 if max_ready <= 0 else float(ready.min()) / max_ready
        if self._met_mode and r <= self.r_low:
            self._met_mode = False
        elif not self._met_mode and r >= self.r_high:
            self._met_mode = True

        if self._met_mode:
            choice = int(np.argmin(ctx.cluster.eet_vector(task)))
        else:
            choice = int(np.argmin(ctx.cluster.completion_times(task, ctx.now)))
        return ctx.cluster.machines[choice]

    def reset(self) -> None:
        self._met_mode = False
