"""Scheduler registry — the plug-in point for custom policies (§3).

The paper highlights that students and researchers can implement "a newly
developed scheduling method and plug it into the system". Any subclass of
:class:`~repro.scheduling.base.Scheduler` decorated with
:func:`register_scheduler` becomes creatable by name (the GUI drop-down of
Fig. 3 corresponds to :func:`available_schedulers`).

The mechanics live in the generic :class:`~repro.core.registry.NameRegistry`
(shared with the gateway-policy registry); this module binds it to the
:class:`~repro.scheduling.base.Scheduler` base class and keeps the public
function surface stable.
"""

from __future__ import annotations

from typing import Any, Iterable, Type

from ..core.errors import UnknownSchedulerError
from ..core.registry import NameRegistry
from .base import Scheduler, SchedulingMode

__all__ = [
    "register_scheduler",
    "create_scheduler",
    "available_schedulers",
    "scheduler_class",
]

_REGISTRY: NameRegistry[Scheduler] = NameRegistry(
    kind="scheduler", not_found_error=UnknownSchedulerError
)


def register_scheduler(
    cls: Type[Scheduler] | None = None, *, aliases: Iterable[str] = ()
) -> Any:
    """Class decorator adding a Scheduler to the registry.

    Usage::

        @register_scheduler(aliases=("MCT",))
        class MECTScheduler(ImmediateScheduler):
            name = "MECT"
            ...
    """
    return _REGISTRY.register(cls, aliases=aliases)


def scheduler_class(name: str) -> Type[Scheduler]:
    """Resolve a scheduler class by name or alias (case-insensitive)."""
    return _REGISTRY.resolve(name)


def create_scheduler(name: str, **kwargs: Any) -> Scheduler:
    """Instantiate a scheduler by registry name with policy kwargs."""
    return _REGISTRY.create(name, **kwargs)


def available_schedulers(mode: SchedulingMode | None = None) -> list[str]:
    """Registered scheduler names, optionally filtered by mode."""
    if mode is None:
        return _REGISTRY.names()
    return _REGISTRY.names(lambda klass: klass.mode is mode)
