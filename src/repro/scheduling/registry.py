"""Scheduler registry — the plug-in point for custom policies (§3).

The paper highlights that students and researchers can implement "a newly
developed scheduling method and plug it into the system". Any subclass of
:class:`~repro.scheduling.base.Scheduler` decorated with
:func:`register_scheduler` becomes creatable by name (the GUI drop-down of
Fig. 3 corresponds to :func:`available_schedulers`).
"""

from __future__ import annotations

from typing import Iterable, Type

from ..core.errors import ConfigurationError, UnknownSchedulerError
from .base import Scheduler, SchedulingMode

__all__ = [
    "register_scheduler",
    "create_scheduler",
    "available_schedulers",
    "scheduler_class",
]

_REGISTRY: dict[str, Type[Scheduler]] = {}
_ALIASES: dict[str, str] = {}


def register_scheduler(
    cls: Type[Scheduler] | None = None, *, aliases: Iterable[str] = ()
):
    """Class decorator adding a Scheduler to the registry.

    Usage::

        @register_scheduler(aliases=("MCT",))
        class MECTScheduler(ImmediateScheduler):
            name = "MECT"
            ...
    """

    def apply(klass: Type[Scheduler]) -> Type[Scheduler]:
        if not klass.name:
            raise ConfigurationError(
                f"{klass.__name__} must define a non-empty 'name'"
            )
        key = klass.name.upper()
        existing = _REGISTRY.get(key)
        if existing is not None and existing is not klass:
            raise ConfigurationError(
                f"scheduler name {klass.name!r} already registered to "
                f"{existing.__name__}"
            )
        _REGISTRY[key] = klass
        for alias in aliases:
            alias_key = alias.upper()
            if alias_key in _REGISTRY:
                raise ConfigurationError(
                    f"alias {alias!r} collides with a registered scheduler name"
                )
            owner = _ALIASES.get(alias_key)
            if owner is not None and owner != key:
                raise ConfigurationError(
                    f"alias {alias!r} already points to {owner}"
                )
            _ALIASES[alias_key] = key
        return klass

    if cls is not None:  # bare decorator form
        return apply(cls)
    return apply


def scheduler_class(name: str) -> Type[Scheduler]:
    """Resolve a scheduler class by name or alias (case-insensitive)."""
    key = name.upper()
    key = _ALIASES.get(key, key)
    try:
        return _REGISTRY[key]
    except KeyError:
        raise UnknownSchedulerError(
            f"unknown scheduler {name!r}; available: {available_schedulers()}"
        ) from None


def create_scheduler(name: str, **kwargs) -> Scheduler:
    """Instantiate a scheduler by registry name with policy kwargs."""
    klass = scheduler_class(name)
    try:
        return klass(**kwargs)
    except TypeError as exc:
        raise ConfigurationError(
            f"bad parameters for scheduler {name!r}: {exc}"
        ) from exc


def available_schedulers(mode: SchedulingMode | None = None) -> list[str]:
    """Registered scheduler names, optionally filtered by mode."""
    names = [
        name
        for name, klass in _REGISTRY.items()
        if mode is None or klass.mode is mode
    ]
    return sorted(names)
