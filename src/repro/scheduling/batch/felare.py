"""FELARE — Fair, Energy- and Latency-Aware Resource allocation (paper policy).

FELARE (the authors' IEEE Cloud '22 paper [15]) extends ELARE with *fairness
across task types*: without it, energy/latency-greedy mapping systematically
starves task types that are expensive everywhere. Our documented
approximation (DESIGN.md §3.4):

* Track each task type's historical on-time completion rate (live stats fed
  by the simulator).
* Phase 1: restrict to deadline-feasible pairs (as ELARE).
* Phase 2: among tasks owning at least one feasible pair, serve the task
  whose type has the *lowest* success rate so far (fairness pressure); break
  rate ties toward the task with the least slack.
* Phase 3: map that task to its minimum-energy feasible machine.
* Fallback: Min-Min when nothing is feasible.

The fairness effect is measured in the E-X3 ablation with Jain's index over
per-type completion rates.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ...tasks.task import Task
from ..base import BatchScheduler, argmin_2d
from ..context import SchedulingContext
from ..registry import register_scheduler
from .elare import dynamic_energy_matrix

__all__ = ["FELAREScheduler"]


@register_scheduler
class FELAREScheduler(BatchScheduler):
    """ELARE + fairness pressure toward historically-starved task types."""

    name = "FELARE"
    description = (
        "Fair ELARE: serve the task type with the lowest on-time rate first, "
        "on its cheapest-energy deadline-feasible machine."
    )

    def select_pair(
        self,
        tasks: Sequence[Task],
        completion: np.ndarray,
        alive: np.ndarray,
        ctx: SchedulingContext,
    ) -> tuple[int, int] | None:
        deadlines = ctx.deadlines(tasks)[:, None]
        feasible = np.isfinite(completion) & (completion <= deadlines)
        task_has_option = feasible.any(axis=1)
        if not task_has_option.any():
            return argmin_2d(completion)

        rates = np.array(
            [ctx.type_stats.success_rate(t.task_type.name) for t in tasks]
        )
        best = np.where(
            task_has_option,
            np.where(feasible, completion, np.inf).min(axis=1),
            np.inf,
        )
        slack = ctx.deadlines(tasks) - best
        # Lexicographic: lowest success rate, then least slack, then task order.
        order_key = np.where(task_has_option, rates, np.inf)
        candidates = np.flatnonzero(order_key == order_key.min())
        i = int(candidates[int(np.argmin(slack[candidates]))])

        energy = dynamic_energy_matrix(tasks, ctx)[i]
        scored = np.where(feasible[i], energy, np.inf)
        j = int(np.argmin(scored))
        return i, j
