"""MinCompletion-MaxUrgency (MMU) — paper policy.

Two-phase batch heuristic (Mokhtari et al., IPDPSW'20 family): phase 1 finds
each task's best machine by minimum completion time; phase 2 maps the most
*urgent* task first, where urgency is the inverse of the slack its best
mapping would leave:

    urgency(i) = 1 / (deadline_i − bestCompletion_i)

Tasks whose best completion already violates the deadline have non-positive
slack ⇒ infinite urgency; among those, the one with the smallest slack
deficit goes first (it is the most doomed — mapping it first documents the
miss immediately and frees attention for salvageable tasks). Ties break by
task order.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ...tasks.task import Task
from ..base import BatchScheduler
from ..context import SchedulingContext
from ..registry import register_scheduler

__all__ = ["MMUScheduler"]


@register_scheduler(aliases=("MINCOMPLETION-MAXURGENCY",))
class MMUScheduler(BatchScheduler):
    """Most urgent (least slack at its best machine) task first."""

    name = "MMU"
    description = (
        "MinCompletion-MaxUrgency: map first the task with the least slack "
        "between its best completion time and its deadline."
    )

    def select_pair(
        self,
        tasks: Sequence[Task],
        completion: np.ndarray,
        alive: np.ndarray,
        ctx: SchedulingContext,
    ) -> tuple[int, int] | None:
        best = completion.min(axis=1)
        feasible = np.isfinite(best)
        if not feasible.any():
            return None
        deadlines = ctx.deadlines(tasks)
        slack = deadlines - best
        slack = np.where(feasible, slack, np.inf)
        i = int(np.argmin(slack))  # least slack == max urgency
        j = int(np.argmin(completion[i]))
        return i, j
