"""ELARE — Energy- and Latency-Aware Resource allocation (paper policy).

The paper lists ELARE among E2C's batch policies; its definition lives in the
authors' FELARE paper [15], which we approximate as documented in DESIGN.md
§3.4:

* Phase 1 (latency feasibility): for each unmapped task, restrict to the
  (task, machine) pairs whose expected completion time meets the deadline.
* Phase 2 (energy): among all feasible pairs, map the one with the smallest
  *dynamic* energy cost, ``active_watts(machine, type) × EET`` — the Joules
  actually attributable to running this task here.
* Fallback: if no pair is deadline-feasible, degrade gracefully to Min-Min
  (smallest completion time) so the system keeps draining.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ...tasks.task import Task
from ..base import BatchScheduler, argmin_2d
from ..context import SchedulingContext
from ..registry import register_scheduler

__all__ = ["ELAREScheduler", "dynamic_energy_matrix"]


def dynamic_energy_matrix(
    tasks: Sequence[Task], ctx: SchedulingContext
) -> np.ndarray:
    """(n_tasks, n_machines) dynamic energy of running task i on machine j."""
    machines = ctx.cluster.machines
    energy = np.empty((len(tasks), len(machines)))
    for i, task in enumerate(tasks):
        eet = ctx.cluster.eet_vector(task)
        watts = np.array(
            [
                m.machine_type.power.active_watts(task.task_type.name)
                for m in machines
            ]
        )
        energy[i] = watts * eet
    return energy


@register_scheduler
class ELAREScheduler(BatchScheduler):
    """Min-energy among deadline-feasible pairs; Min-Min fallback."""

    name = "ELARE"
    description = (
        "Energy- and Latency-Aware: cheapest-energy mapping among "
        "deadline-feasible (task, machine) pairs, Min-Min fallback."
    )

    def select_pair(
        self,
        tasks: Sequence[Task],
        completion: np.ndarray,
        alive: np.ndarray,
        ctx: SchedulingContext,
    ) -> tuple[int, int] | None:
        deadlines = ctx.deadlines(tasks)[:, None]
        feasible = np.isfinite(completion) & (completion <= deadlines)
        if feasible.any():
            energy = dynamic_energy_matrix(tasks, ctx)
            scored = np.where(feasible, energy, np.inf)
            return argmin_2d(scored)
        return argmin_2d(completion)
