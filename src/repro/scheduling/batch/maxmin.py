"""Max-Min — classic batch baseline from [13].

Like Min-Min, but phase 2 picks the task whose *best* completion time is the
*largest* — the intuition being that long tasks should be placed early, while
short tasks can fill gaps later. A standard contrast case for Min-Min in
heterogeneous-scheduling coursework.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ...tasks.task import Task
from ..base import BatchScheduler
from ..context import SchedulingContext
from ..registry import register_scheduler

__all__ = ["MaxMinScheduler"]


@register_scheduler(aliases=("MAX-MIN",))
class MaxMinScheduler(BatchScheduler):
    """Largest per-task minimum completion time first."""

    name = "MAXMIN"
    description = (
        "Max-Min: map the task whose best completion time is worst, so long "
        "tasks are placed before short ones."
    )

    def select_pair(
        self,
        tasks: Sequence[Task],
        completion: np.ndarray,
        alive: np.ndarray,
        ctx: SchedulingContext,
    ) -> tuple[int, int] | None:
        row_best = completion.min(axis=1)          # best completion per task
        row_best_masked = np.where(np.isfinite(row_best), row_best, -np.inf)
        i = int(np.argmax(row_best_masked))
        if not np.isfinite(row_best_masked[i]):
            return None
        j = int(np.argmin(completion[i]))
        return i, j
