"""MinCompletion-SoonestDeadline (MSD) — paper policy.

Phase 1: per-task best machine by minimum completion time. Phase 2: map the
task with the soonest absolute deadline first (classic EDF ordering lifted to
the batch-mapping setting). Ties break by task order, then machine id.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ...tasks.task import Task
from ..base import BatchScheduler
from ..context import SchedulingContext
from ..registry import register_scheduler

__all__ = ["MSDScheduler"]


@register_scheduler(aliases=("MINCOMPLETION-SOONESTDEADLINE",))
class MSDScheduler(BatchScheduler):
    """Soonest-deadline task first, each on its min-completion machine."""

    name = "MSD"
    description = (
        "MinCompletion-SoonestDeadline: EDF task order, each task mapped to "
        "its minimum-completion-time machine."
    )

    def select_pair(
        self,
        tasks: Sequence[Task],
        completion: np.ndarray,
        alive: np.ndarray,
        ctx: SchedulingContext,
    ) -> tuple[int, int] | None:
        best = completion.min(axis=1)
        feasible = np.isfinite(best)
        if not feasible.any():
            return None
        deadlines = np.where(feasible, ctx.deadlines(tasks), np.inf)
        i = int(np.argmin(deadlines))
        j = int(np.argmin(completion[i]))
        return i, j
