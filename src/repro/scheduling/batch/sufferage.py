"""Sufferage — classic batch baseline from [13].

For each unmapped task compute sufferage = (second-best completion time −
best completion time): how much the task *suffers* if it loses its best
machine. Map the task with the greatest sufferage to its best machine first.
Tasks with only one feasible machine get infinite sufferage (they must win).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ...tasks.task import Task
from ..base import BatchScheduler
from ..context import SchedulingContext
from ..registry import register_scheduler

__all__ = ["SufferageScheduler"]


@register_scheduler
class SufferageScheduler(BatchScheduler):
    """Greatest (second-best − best) completion gap first."""

    name = "SUFFERAGE"
    description = (
        "Sufferage: map first the task that loses the most if denied its "
        "best machine."
    )

    def select_pair(
        self,
        tasks: Sequence[Task],
        completion: np.ndarray,
        alive: np.ndarray,
        ctx: SchedulingContext,
    ) -> tuple[int, int] | None:
        n_machines = completion.shape[1]
        best = completion.min(axis=1)
        feasible = np.isfinite(best)
        if not feasible.any():
            return None
        if n_machines == 1:
            i = int(np.argmin(np.where(feasible, best, np.inf)))
            return i, int(np.argmin(completion[i]))
        two_smallest = np.partition(completion, 1, axis=1)[:, :2]
        # Infeasible rows are all-inf: difference would be nan, mask them out
        # before subtracting. A task with a single finite machine must win.
        single_option = feasible & ~np.isfinite(two_smallest[:, 1])
        sufferage = np.full(completion.shape[0], -np.inf)
        both_finite = np.isfinite(two_smallest[:, 1])
        sufferage[both_finite] = (
            two_smallest[both_finite, 1] - two_smallest[both_finite, 0]
        )
        sufferage[single_option] = np.inf
        i = int(np.argmax(sufferage))
        if not feasible[i]:
            return None
        j = int(np.argmin(completion[i]))
        return i, j
