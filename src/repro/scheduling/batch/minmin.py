"""MinCompletion-MinCompletion (MM) — paper policy, a.k.a. Min-Min.

Phase 1: for every unmapped task find its minimum completion time across
machines. Phase 2: map the task whose minimum is globally smallest, update the
chosen machine's virtual ready time, repeat. The canonical batch heuristic of
Ibarra & Kim / Maheswaran et al.; ties break row-major (task order, then
machine id).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ...tasks.task import Task
from ..base import BatchScheduler, argmin_2d
from ..context import SchedulingContext
from ..registry import register_scheduler

__all__ = ["MinMinScheduler"]


@register_scheduler(aliases=("MINMIN", "MIN-MIN", "MINCOMPLETION-MINCOMPLETION"))
class MinMinScheduler(BatchScheduler):
    """Globally smallest completion-time cell first."""

    name = "MM"
    description = (
        "MinCompletion-MinCompletion (Min-Min): repeatedly map the task with "
        "the globally smallest achievable completion time."
    )

    def select_pair(
        self,
        tasks: Sequence[Task],
        completion: np.ndarray,
        alive: np.ndarray,
        ctx: SchedulingContext,
    ) -> tuple[int, int] | None:
        return argmin_2d(completion)
