"""Batch-mode scheduling policies.

Paper policies: :class:`MinMinScheduler` (MM), :class:`MMUScheduler`,
:class:`MSDScheduler`, :class:`ELAREScheduler`, :class:`FELAREScheduler`.
Classic extensions from Maheswaran et al. [13]: MaxMin, Sufferage.
"""

from .elare import ELAREScheduler
from .felare import FELAREScheduler
from .maxmin import MaxMinScheduler
from .minmin import MinMinScheduler
from .mmu import MMUScheduler
from .msd import MSDScheduler
from .sufferage import SufferageScheduler

__all__ = [
    "MinMinScheduler",
    "MaxMinScheduler",
    "SufferageScheduler",
    "MMUScheduler",
    "MSDScheduler",
    "ELAREScheduler",
    "FELAREScheduler",
]
