"""Scheduling framework: policy ABCs, registry, and the built-in policies.

Importing this package registers every built-in policy, so
``create_scheduler("MECT")`` works after ``import repro.scheduling``.
"""

from . import batch, immediate  # noqa: F401  (import for registration side effect)
from . import federation  # noqa: F401  (import for gateway registration side effect)
from .base import (
    Assignment,
    BatchScheduler,
    ImmediateScheduler,
    Scheduler,
    SchedulingMode,
)
from .context import LiveTypeStats, SchedulingContext
from .overhead import SchedulingOverhead
from .federation import (
    GatewayContext,
    GatewayPolicy,
    available_gateways,
    create_gateway,
    register_gateway,
)
from .registry import (
    available_schedulers,
    create_scheduler,
    register_scheduler,
    scheduler_class,
)

__all__ = [
    "Assignment",
    "Scheduler",
    "ImmediateScheduler",
    "BatchScheduler",
    "SchedulingMode",
    "SchedulingContext",
    "LiveTypeStats",
    "SchedulingOverhead",
    "register_scheduler",
    "create_scheduler",
    "scheduler_class",
    "available_schedulers",
    "GatewayPolicy",
    "GatewayContext",
    "register_gateway",
    "create_gateway",
    "available_gateways",
]
