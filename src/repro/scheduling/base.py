"""Scheduler framework: policy base classes and the mapping loop.

Two policy families mirror the paper's scheduler component (Fig. 3):

* **Immediate** — the arriving task is mapped on the spot; machine queues are
  unbounded. Subclass :class:`ImmediateScheduler`, implement
  :meth:`ImmediateScheduler.choose_machine`.
* **Batch** — tasks buffer in the batch queue; mapping happens in passes over
  the whole buffer, respecting bounded machine queues. Subclass
  :class:`BatchScheduler` and implement :meth:`BatchScheduler.select_pair`;
  the base class runs the standard two-phase mapping loop (recompute the
  completion-time matrix, let the policy pick one (task, machine) pair, apply
  it virtually, repeat) shared by Min-Min/Max-Min/Sufferage/MSD/MMU/ELARE.

E2C is "designed to be modular, hence providing the ability ... to modify the
existing scheduling methods or add their own custom-designed scheduling
methods" (§3) — that is the :mod:`repro.scheduling.registry` plus these ABCs.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass
from typing import ClassVar, Sequence

import numpy as np

from ..core.errors import SchedulingError
from ..machines.machine import Machine
from ..tasks.task import Task
from .context import SchedulingContext

__all__ = [
    "SchedulingMode",
    "Assignment",
    "Scheduler",
    "ImmediateScheduler",
    "BatchScheduler",
]


class SchedulingMode(enum.Enum):
    """Immediate vs batch scheduling (Maheswaran et al. 1999 taxonomy)."""

    IMMEDIATE = "immediate"
    BATCH = "batch"


@dataclass(frozen=True, slots=True)
class Assignment:
    """One mapping decision: put *task* on *machine*'s queue."""

    task: Task
    machine: Machine


class Scheduler(abc.ABC):
    """Common interface of every scheduling policy."""

    #: Registry name (e.g. "MECT"); set by subclasses.
    name: ClassVar[str] = ""
    #: Mode this policy operates in.
    mode: ClassVar[SchedulingMode]
    #: Short human-readable description for the CLI / docs.
    description: ClassVar[str] = ""

    @abc.abstractmethod
    def schedule(self, ctx: SchedulingContext) -> list[Assignment]:
        """Return mapping decisions for the current context.

        Implementations must not mutate tasks or machines; the simulator
        applies the returned assignments (and validates capacity).
        """

    def reset(self) -> None:
        """Clear any internal state (between simulation runs)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r}, mode={self.mode.value})"


class ImmediateScheduler(Scheduler):
    """Maps each arriving task immediately (queues unbounded)."""

    mode = SchedulingMode.IMMEDIATE

    def schedule(self, ctx: SchedulingContext) -> list[Assignment]:
        assignments: list[Assignment] = []
        for task in ctx.pending:
            machine = self.choose_machine(task, ctx)
            if machine is None:
                raise SchedulingError(
                    f"{self.name}: immediate policy returned no machine for "
                    f"task {task.id}"
                )
            assignments.append(Assignment(task, machine))
        return assignments

    @abc.abstractmethod
    def choose_machine(self, task: Task, ctx: SchedulingContext) -> Machine:
        """Pick the machine for one arriving task."""


class BatchScheduler(Scheduler):
    """Two-phase mapping loop over the batch-queue snapshot.

    Every iteration the policy sees the *current* completion-time matrix
    ``completion`` of shape (n_pending, n_machines), where saturated machines
    and already-mapped tasks are masked with +inf, and returns the (i, j)
    index pair to map next (or None to stop early). The base class maintains
    virtual ready times and free slots so one pass produces a consistent
    multi-task mapping, exactly like the classic Min-Min formulation.
    """

    mode = SchedulingMode.BATCH

    def schedule(self, ctx: SchedulingContext) -> list[Assignment]:
        tasks = list(ctx.pending)
        if not tasks:
            return []
        slots = ctx.free_slots()
        if not (slots > 0).any():
            # Every machine queue is saturated (or down): no pick is legal,
            # so skip building the planning matrices entirely — the dominant
            # pass shape under bounded queues with a backed-up batch queue.
            return []
        machines = ctx.cluster.machines
        ready = ctx.ready_times().astype(float)  # astype always copies
        eet = ctx.eet_matrix_for(tasks)  # (T, M); fresh gather, safe to mark
        alive = np.ones(len(tasks), dtype=bool)
        assignments: list[Assignment] = []

        # The completion matrix is maintained incrementally: a pick dirties
        # exactly one column (the chosen machine's ready time advanced) and
        # one row (the chosen task left the pool). Recomputing only those —
        # with the same ``ready[j] + eet[·, j]`` arithmetic the full rebuild
        # performed — yields bit-identical cells, so every policy makes the
        # same sequence of picks as under the per-iteration rebuild.
        completion = ready[None, :] + eet
        completion[:, slots <= 0] = np.inf
        while True:
            pick = self.select_pair(tasks, completion, alive, ctx)
            if pick is None:
                break
            i, j = pick
            if not alive[i]:
                raise SchedulingError(
                    f"{self.name}: selected already-mapped task index {i}"
                )
            if slots[j] <= 0:
                raise SchedulingError(
                    f"{self.name}: selected saturated machine index {j}"
                )
            assignments.append(Assignment(tasks[i], machines[j]))
            ready[j] += eet[i, j]
            slots[j] -= 1
            alive[i] = False
            if not alive.any() or not (slots > 0).any():
                break
            completion[i, :] = np.inf
            # Dead rows must stay +inf through later column refreshes.
            eet[i, :] = np.inf
            if slots[j] > 0:
                completion[:, j] = ready[j] + eet[:, j]
            else:
                completion[:, j] = np.inf
        return assignments

    @abc.abstractmethod
    def select_pair(
        self,
        tasks: Sequence[Task],
        completion: np.ndarray,
        alive: np.ndarray,
        ctx: SchedulingContext,
    ) -> tuple[int, int] | None:
        """Choose the next (task index, machine index) pair, or None to stop.

        ``completion[i, j]`` is +inf when task *i* is already mapped or
        machine *j* is saturated; a policy returning a pair must pick a
        finite cell.
        """


def argmin_2d(matrix: np.ndarray) -> tuple[int, int] | None:
    """Index of the smallest finite cell, ties broken row-major. None if all inf."""
    flat = int(np.argmin(matrix))
    i, j = divmod(flat, matrix.shape[1])
    if not np.isfinite(matrix[i, j]):
        return None
    return i, j
