"""Scheduling context: the read view policies receive.

A policy never touches the simulator directly; it sees a
:class:`SchedulingContext` — current time, the pending tasks it may map, the
cluster (for ready/completion times), and live per-task-type outcome
statistics (used by fairness-aware policies such as FELARE).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..machines.cluster import Cluster
from ..tasks.task import Task

__all__ = ["SchedulingContext", "LiveTypeStats"]


class LiveTypeStats:
    """Running per-task-type outcome counts, updated by the simulator.

    ``success_rate(name)`` is the fraction of *finished* tasks of that type
    that completed on time; it returns 1.0 while no task of the type has
    finished (optimistic prior, so fairness pressure only builds on evidence).
    """

    def __init__(self) -> None:
        self._on_time: dict[str, int] = {}
        self._finished: dict[str, int] = {}

    def record(self, task_type_name: str, on_time: bool) -> None:
        self._finished[task_type_name] = self._finished.get(task_type_name, 0) + 1
        if on_time:
            self._on_time[task_type_name] = self._on_time.get(task_type_name, 0) + 1

    def success_rate(self, task_type_name: str) -> float:
        finished = self._finished.get(task_type_name, 0)
        if finished == 0:
            return 1.0
        return self._on_time.get(task_type_name, 0) / finished

    def finished(self, task_type_name: str) -> int:
        return self._finished.get(task_type_name, 0)

    def rates(self) -> dict[str, float]:
        return {name: self.success_rate(name) for name in self._finished}

    def reset(self) -> None:
        self._on_time.clear()
        self._finished.clear()


@dataclass
class SchedulingContext:
    """Everything a policy may consult when mapping tasks.

    The simulator reuses one context object across scheduling passes
    (``now`` and ``pending`` are updated in place between calls), so treat
    it as a read-only view valid only for the duration of the current
    ``schedule()`` call: copy anything you need to keep (e.g.
    ``list(ctx.pending)``) rather than retaining the context itself.

    Attributes
    ----------
    now:
        Current simulation time.
    pending:
        Tasks eligible for mapping, FIFO order. Immediate mode passes exactly
        the arriving task; batch mode passes the batch-queue snapshot (already
        swept of expired tasks).
    cluster:
        The machine population (ready times, EETs, queue slots).
    type_stats:
        Live per-type success statistics (for fairness-aware policies).
    rng:
        Seeded generator for stochastic policies (Random).
    """

    now: float
    pending: Sequence[Task]
    cluster: Cluster
    type_stats: LiveTypeStats = field(default_factory=LiveTypeStats)
    rng: np.random.Generator = field(
        default_factory=lambda: np.random.default_rng(0)
    )

    # -- convenience views (vectorised, machine-axis aligned) -------------------

    def ready_times(self) -> np.ndarray:
        return self.cluster.ready_times(self.now)

    def eet_matrix_for(self, tasks: Sequence[Task]) -> np.ndarray:
        """(len(tasks), n_machines) EET matrix for the given tasks."""
        if not tasks:
            return np.empty((0, len(self.cluster)))
        return self.cluster.eet_rows(tasks)

    def free_slots(self) -> np.ndarray:
        """Free machine-queue slots per machine (inf when unbounded).

        A failed machine reports zero slots so batch mapping loops never plan
        onto it (its admission would reject the assignment anyway, silently
        wasting the task's turn in the pass).
        """
        cluster = self.cluster
        try:
            # Mirrored by the machine syncs (see ClusterState.slots): one
            # array copy instead of a queue-attribute chase per machine.
            return cluster.free_slots_snapshot()
        except AttributeError:  # a stub cluster without the mirror
            return np.array(
                [m.queue.free_slots if m.up else 0.0 for m in cluster.machines],
                dtype=float,
            )

    def deadlines(self, tasks: Sequence[Task]) -> np.ndarray:
        return np.array([t.deadline for t in tasks], dtype=float)
