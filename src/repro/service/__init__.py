"""Simulation-as-a-service: a job-queue-backed campaign server with caching.

The production story for a classroom of thousands: instead of every student
paying for their own run of the same preset, a long-lived
:class:`CampaignService` accepts scenario/campaign specs as JSON, keys each
submission by a canonical content hash (:mod:`repro.service.hashing`),
executes unique work once on a pool of persistent worker processes with
explicit job states, bounded crash retries and a progress journal
(:mod:`repro.service.jobs`), and serves repeats bit-identically from a
content-addressed result cache (:mod:`repro.service.cache`)::

    from repro.service import CampaignService

    with CampaignService("service-home", workers=4) as service:
        receipt = service.submit({"preset": "fed_rebalance"})
        job = service.wait(receipt.job_id)
        print(service.summary(receipt.job_id).completion_rate)

The CLI front-end is the ``e2c-sim serve`` / ``e2c-sim submit`` pair (a
filesystem spool transport over this same façade).
"""

from .api import CampaignService, SubmitReceipt
from .cache import ResultCache
from .hashing import (
    campaign_hash,
    canonical_dumps,
    canonical_hash,
    canonical_json,
    normalize_request,
    request_key,
    scenario_hash,
)
from .jobs import Job, JobQueue, JobState, execute_request

__all__ = [
    "CampaignService",
    "SubmitReceipt",
    "ResultCache",
    "JobQueue",
    "Job",
    "JobState",
    "execute_request",
    "canonical_json",
    "canonical_dumps",
    "canonical_hash",
    "scenario_hash",
    "campaign_hash",
    "normalize_request",
    "request_key",
]
