"""Canonical scenario/campaign hashing: one key per simulation, ever.

The engine is deterministic — a fully-specified scenario (or campaign) plus
its seed determines every event, and therefore every summary metric, bit for
bit. That makes identical submissions safely cacheable, *if* "identical" is
decided on the semantics of a spec rather than its surface syntax. This
module owns that decision:

1. **Normalisation**: a submitted spec is round-tripped through its
   dataclass (``Scenario.from_dict(...).to_dict()`` /
   ``CampaignSpec.from_dict(...).to_dict()``). The round-trip fills elided
   default fields, resolves scheduler-name aliases and preset references,
   and emits one stable field set — so ``{"seeds": [0]}`` elided or spelled
   out, ``"mect"`` or ``"MECT"``, a preset reference or its expanded JSON
   all normalise to the same document.
2. **Canonical JSON**: the normalised document is serialised with sorted
   keys, compact separators and folded numerics (``2.0`` and ``2`` are the
   same quantity to the engine, so they are the same bytes here). Key order
   and whitespace cannot perturb the digest.
3. **Cosmetic stripping**: fields that never reach the engine — a
   scenario's display ``name``, a campaign's ``name`` and report ``metrics``
   list — are dropped before hashing, so a renamed copy of a cached
   campaign still hits.

``request_key`` is the entry point the service uses: it classifies a raw
submission (scenario JSON, ``{"preset": ...}`` reference, or campaign JSON),
normalises it, and returns ``(kind, normalised_spec, sha256-hex-key)``.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Any, Mapping

from ..core.errors import ConfigurationError, ServiceError

__all__ = [
    "canonical_json",
    "canonical_dumps",
    "canonical_hash",
    "scenario_hash",
    "campaign_hash",
    "normalize_request",
    "request_key",
]

#: Spec fields that never influence the engine, per request kind.
COSMETIC_FIELDS: dict[str, tuple[str, ...]] = {
    "scenario": ("name",),
    "campaign": ("name", "metrics"),
}


def canonical_json(value: Any) -> Any:
    """Structurally normalised copy of *value* (dicts sorted, numbers folded).

    * mappings come back as plain dicts with keys sorted (and coerced to
      ``str``, as JSON would),
    * lists and tuples come back as lists,
    * floats that are exactly integral fold to ``int`` (``2.0`` → ``2``) so
      int-vs-float spellings of the same quantity hash identically,
    * non-finite floats are rejected — a spec containing NaN/inf is not a
      reproducible artifact.
    """
    if isinstance(value, Mapping):
        return {
            str(k): canonical_json(v)
            for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))
        }
    if isinstance(value, (list, tuple)):
        return [canonical_json(v) for v in value]
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        if not math.isfinite(value):
            raise ConfigurationError(
                f"cannot canonicalise non-finite number {value!r}"
            )
        if value.is_integer():
            return int(value)
        return value
    raise ConfigurationError(
        f"cannot canonicalise {type(value).__name__} value {value!r}"
    )


def canonical_dumps(value: Any) -> str:
    """The canonical byte form: normalised, sorted, compact JSON."""
    return json.dumps(
        canonical_json(value),
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )


def canonical_hash(value: Any) -> str:
    """SHA-256 hex digest of the canonical byte form of *value*."""
    return hashlib.sha256(canonical_dumps(value).encode("utf-8")).hexdigest()


def _strip_cosmetic(kind: str, spec: Mapping[str, Any]) -> dict[str, Any]:
    drop = COSMETIC_FIELDS.get(kind, ())
    return {k: v for k, v in spec.items() if k not in drop}


def scenario_hash(scenario: Any) -> str:
    """Canonical key of a :class:`~repro.core.config.Scenario` (or its dict).

    Display-only fields (``name``) do not enter the digest; everything the
    engine consumes — EET, machine population, policy + params, workload
    recipe or trace, seed, federation/migration spec — does.
    """
    from ..core.config import Scenario

    if not isinstance(scenario, Scenario):
        scenario = Scenario.from_dict(scenario)
    return canonical_hash(
        {"kind": "scenario", "spec": _strip_cosmetic("scenario", scenario.to_dict())}
    )


def campaign_hash(spec: Any) -> str:
    """Canonical key of a :class:`~repro.experiments.CampaignSpec` (or dict).

    The campaign ``name`` and report ``metrics`` selection are cosmetic (they
    shape headers, not records) and are excluded; the scenario refs, policy
    list, seed axes and master seed — everything that determines the record
    table — are included.
    """
    from ..experiments import CampaignSpec

    if not isinstance(spec, CampaignSpec):
        spec = CampaignSpec.from_dict(spec)
    return canonical_hash(
        {"kind": "campaign", "spec": _strip_cosmetic("campaign", spec.to_dict())}
    )


def normalize_request(data: Mapping[str, Any]) -> tuple[str, dict[str, Any]]:
    """Classify and normalise one submission document.

    Accepted forms:

    * a scenario JSON object (has an ``"eet"`` key) — the
      :meth:`Scenario.to_dict` shape,
    * a preset reference ``{"preset": name, "overrides": {...}}`` — resolved
      through the scenario registry, so a preset submission and its expanded
      JSON share one cache entry,
    * a campaign JSON object (has ``"scenarios"`` and ``"schedulers"``) —
      the :meth:`CampaignSpec.to_dict` shape.

    Returns ``(kind, normalised_spec)`` where *kind* is ``"scenario"`` or
    ``"campaign"`` and the spec is the full round-tripped dict form.
    """
    if not isinstance(data, Mapping):
        raise ServiceError(
            f"a submission must be a JSON object, got {type(data).__name__}"
        )
    if "preset" in data:
        from ..scenarios import build_scenario

        unknown = set(data) - {"preset", "overrides"}
        if unknown:
            raise ServiceError(
                f"preset submission has unknown key(s) {sorted(unknown)}; "
                "expected {'preset', 'overrides'}"
            )
        try:
            scenario = build_scenario(
                str(data["preset"]), **dict(data.get("overrides", {}))
            )
        except TypeError as exc:
            raise ServiceError(
                f"preset {data['preset']!r} does not accept these "
                f"overrides: {exc}"
            ) from exc
        return "scenario", scenario.to_dict()
    if "eet" in data:
        from ..core.config import Scenario

        return "scenario", Scenario.from_dict(data).to_dict()
    if "scenarios" in data and "schedulers" in data:
        from ..experiments import CampaignSpec

        return "campaign", CampaignSpec.from_dict(data).to_dict()
    raise ServiceError(
        "cannot classify submission: expected a scenario object (with "
        "'eet'), a preset reference (with 'preset'), or a campaign spec "
        f"(with 'scenarios' and 'schedulers'); got keys {sorted(data)}"
    )


def request_key(data: Mapping[str, Any]) -> tuple[str, dict[str, Any], str]:
    """Normalise a submission and derive its content-address.

    Returns ``(kind, normalised_spec, key)``. Two submissions get the same
    *key* exactly when the engine would produce identical results for them.
    """
    kind, spec = normalize_request(data)
    key = canonical_hash({"kind": kind, "spec": _strip_cosmetic(kind, spec)})
    return kind, spec, key
