"""Content-addressed result cache: one simulation per canonical hash, ever.

Results are stored as deterministic JSON documents under
``root/<key[:2]>/<key>.json`` — the two-level fan-out keeps directories
small under classroom-scale churn. Writes are atomic (tempfile + ``rename``
in the same directory), so a crashed or killed worker can never leave a
half-written entry for a later reader to trust; readers treat a corrupt
entry as a miss and the next run overwrites it.

Serialisation is canonical (sorted keys, fixed separators): the *bytes* of a
cache entry are a pure function of the payload, which is what lets tests
assert that a served-from-cache result is bit-identical to a fresh run.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any

__all__ = ["ResultCache"]


def _dumps(payload: dict[str, Any]) -> str:
    # Deterministic but *not* numerically folded: unlike the hash key,
    # result payloads keep float-typed metrics as floats so a round-trip
    # reconstructs SummaryMetrics exactly.
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class ResultCache:
    """Filesystem-backed content-addressed store of result payloads."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path(self, key: str) -> Path:
        """Where the entry for *key* lives (whether or not it exists)."""
        return self.root / key[:2] / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        return self.path(key).is_file()

    def get(self, key: str) -> dict[str, Any] | None:
        """The cached payload for *key*, or ``None`` on a miss.

        A present-but-unreadable entry (torn by an unclean shutdown of a
        non-atomic writer, hand-edited, ...) counts as a miss: correctness
        comes from re-running the deterministic engine, never from trusting
        bad bytes.
        """
        try:
            text = self.path(key).read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            return None
        return payload if isinstance(payload, dict) else None

    def get_bytes(self, key: str) -> bytes | None:
        """The raw stored bytes for *key* (for bit-identity assertions)."""
        try:
            return self.path(key).read_bytes()
        except OSError:
            return None

    def put(self, key: str, payload: dict[str, Any]) -> Path:
        """Atomically store *payload* under *key*; returns the entry path.

        Concurrent writers of the same key are harmless: the engine is
        deterministic, so every writer renames identical bytes into place.
        """
        target = self.path(key)
        target.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=target.parent, prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(_dumps(payload))
            os.replace(tmp_name, target)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return target

    def keys(self) -> list[str]:
        """Every key with a stored entry, sorted."""
        return sorted(p.stem for p in self.root.glob("*/*.json"))

    def __len__(self) -> int:
        return len(self.keys())
