"""Transport-neutral campaign-service façade: submit / status / result / cancel.

:class:`CampaignService` is the simulation-as-a-service surface: it accepts
the same JSON spec forms the CLI consumes (scenario objects, preset
references, campaign specs — as dicts, JSON strings, or file paths via
:func:`repro.core.jsonio.load_json_source`), keys every submission by its
canonical hash, and fronts the durable :class:`~repro.service.jobs.JobQueue`
with a content-addressed :class:`~repro.service.cache.ResultCache`. Identical
submissions from a classroom of thousands cost one simulation.

"Transport-neutral" means these are plain methods: the filesystem-spool CLI
pair (``e2c-sim serve`` / ``e2c-sim submit``), an HTTP adapter, or a test
driving threads in-process all speak the same façade.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from ..core.errors import ServiceError
from ..core.jsonio import load_json_source
from ..metrics.collector import SummaryMetrics
from .cache import ResultCache
from .hashing import request_key
from .jobs import Executor, Job, JobQueue, execute_request

__all__ = ["SubmitReceipt", "CampaignService"]


@dataclass(frozen=True)
class SubmitReceipt:
    """What a submitter gets back immediately: identity, not results.

    ``cached`` is True when the submission completed instantly from the
    result cache (or from an identical finished job); ``coalesced`` when it
    attached to an identical job already pending or running.
    """

    job_id: str
    key: str
    kind: str
    cached: bool
    coalesced: bool


class CampaignService:
    """A long-lived simulation service over one service directory.

    Parameters
    ----------
    root:
        Service home; the result cache lives under ``root/cache`` and the
        durable queue state (journal + job snapshots) under ``root/state``.
    workers / max_attempts / retry_delay:
        Forwarded to :class:`~repro.service.jobs.JobQueue`.
    executor:
        Injectable job executor (tests); defaults to the real engine.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        workers: int = 2,
        max_attempts: int = 3,
        retry_delay: float = 0.05,
        executor: Executor = execute_request,
    ):
        self.root = Path(root)
        self.cache = ResultCache(self.root / "cache")
        self.queue = JobQueue(
            cache=self.cache,
            workers=workers,
            max_attempts=max_attempts,
            retry_delay=retry_delay,
            executor=executor,
            state_dir=self.root / "state",
        )

    # -- the service protocol ------------------------------------------------------

    def submit(self, source: str | Path | Mapping[str, Any]) -> SubmitReceipt:
        """Accept a spec (dict, JSON string, or file path); returns a receipt."""
        data = load_json_source(source, what="submission")
        kind, spec, key = request_key(data)
        before = self.queue.coalesced
        job = self.queue.submit({"kind": kind, "spec": spec}, key=key)
        return SubmitReceipt(
            job_id=job.id,
            key=key,
            kind=kind,
            cached=job.state.value == "done",
            coalesced=self.queue.coalesced > before,
        )

    def status(self, job_id: str) -> Job:
        """The live job record (state, attempts, progress counters, error)."""
        return self.queue.get(job_id)

    def result(self, job_id: str) -> dict[str, Any]:
        """The finished job's result payload; raises until it is ``DONE``."""
        return self.queue.result(job_id)

    def summary(self, job_id: str) -> SummaryMetrics:
        """A scenario job's summary, reconstructed exactly from the cache."""
        payload = self.result(job_id)
        if payload.get("kind") != "scenario":
            raise ServiceError(
                f"job {job_id} is a {payload.get('kind')!r} job; summary() "
                "serves scenario jobs (campaigns expose csv/text)"
            )
        return SummaryMetrics.from_dict(payload["summary"])

    def cancel(self, job_id: str) -> bool:
        """Cancel a pending/running job; False if it already finished."""
        return self.queue.cancel(job_id)

    def wait(self, job_id: str, timeout: float | None = None) -> Job:
        """Block until the job is terminal; returns its record."""
        return self.queue.wait(job_id, timeout=timeout)

    def close(self) -> None:
        self.queue.close()

    def __enter__(self) -> "CampaignService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
