"""Durable job queue: persistent simulation workers with explicit job states.

This extends the one-shot multiprocessing fan-out of
:class:`repro.experiments.runner.CampaignRunner` into a long-lived service
substrate. A :class:`JobQueue` owns a pool of persistent worker *processes*
(forked once, fed many jobs over per-worker inboxes) and a dispatcher
*thread* that assigns work, streams progress, and supervises worker health.

Job lifecycle::

    PENDING ──dispatch──> RUNNING ──> DONE
                             │└─────> FAILED     (executor raised, or the
                             │                    worker crashed max_attempts
                             │                    times)
                             └──────> CANCELLED  (cancel(); also any job
                                                  still running at close())

Three guarantees the tests pin:

* **Single-flight**: concurrent submissions with the same canonical key
  coalesce onto one job — at most one engine execution per key, with later
  submitters attached to the first job (or served straight from the result
  cache when the key has ever completed before).
* **Crash containment**: a worker killed mid-run (``SIGKILL``) is detected
  by the dispatcher, its job retried with exponential backoff up to
  ``max_attempts``, then marked ``FAILED`` with the crash captured; a fresh
  worker replaces the dead one. Executor *exceptions* (a bad spec, a
  simulator bug) fail immediately — they are deterministic, retrying cannot
  help. No code path leaves a job ``RUNNING`` with nobody working on it.
* **Durability**: with a ``state_dir``, every transition and every
  runs-completed progress tick is appended to ``journal.jsonl`` and each
  job keeps an atomic snapshot under ``jobs/``; a restarted queue recovers
  finished jobs (results re-served from the cache) and re-queues interrupted
  ones.
"""

from __future__ import annotations

import collections
import multiprocessing
import os
import queue as queue_module
import threading
import time
import traceback
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import Any, Callable, Mapping

from ..core.errors import ServiceError, UnknownJobError
from .cache import ResultCache
from .hashing import canonical_hash

__all__ = ["JobState", "Job", "JobQueue", "execute_request"]

ProgressFn = Callable[[int, int], None]
Executor = Callable[[Mapping[str, Any], ProgressFn], dict[str, Any]]


class JobState(str, Enum):
    """Explicit lifecycle states of a queued simulation job."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def is_terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


def execute_request(
    request: Mapping[str, Any], progress: ProgressFn | None = None
) -> dict[str, Any]:
    """The default executor: run one normalised scenario/campaign request.

    *request* is the ``{"kind": ..., "spec": ...}`` document produced by
    :func:`repro.service.hashing.request_key`. Returns the (small, JSON-ready)
    result payload that the cache stores: the summary metrics plus federated
    extras for a scenario, the canonical tidy CSV plus the comparison report
    for a campaign.
    """
    kind = request.get("kind")
    spec = request.get("spec")
    if kind == "scenario":
        from ..core.config import Scenario
        from ..experiments import result_extras

        scenario = Scenario.from_dict(spec)
        if progress is not None:
            progress(0, 1)
        result = scenario.run()
        payload = {
            "kind": "scenario",
            "name": scenario.name,
            "scheduler": result.scheduler_name,
            "events_processed": result.events_processed,
            "summary": result.summary.as_dict(),
            "extras": result_extras(result),
        }
        if progress is not None:
            progress(1, 1)
        return payload
    if kind == "campaign":
        from ..experiments import CampaignSpec, execute_campaign

        campaign = CampaignSpec.from_dict(spec)
        result = execute_campaign(campaign, progress=progress)
        return {
            "kind": "campaign",
            "name": campaign.name,
            "n_runs": campaign.n_runs,
            "csv": result.to_csv(),
            "text": result.to_text(),
        }
    raise ServiceError(f"cannot execute request of unknown kind {kind!r}")


def _worker_main(
    inbox: multiprocessing.Queue,
    outbox: multiprocessing.Queue,
    executor: Executor,
) -> None:  # pragma: no cover - runs in child processes
    """Persistent worker loop: pull a job, run it, report, repeat."""
    while True:
        item = inbox.get()
        if item is None:
            return
        job_id, request = item

        def report(done: int, total: int, _job_id: str = job_id) -> None:
            outbox.put(("progress", _job_id, done, total))

        try:
            payload = executor(request, report)
        except BaseException:
            outbox.put(("failed", job_id, traceback.format_exc(limit=20)))
        else:
            outbox.put(("done", job_id, payload))


def _mp_context():
    """``fork`` where available — same contract as the campaign runner."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


@dataclass
class Job:
    """One submission's full lifecycle record."""

    id: str
    key: str
    request: dict[str, Any]
    max_attempts: int
    state: JobState = JobState.PENDING
    attempts: int = 0
    error: str | None = None
    runs_done: int = 0
    runs_total: int = 0
    from_cache: bool = False
    result: dict[str, Any] | None = None
    worker_pid: int | None = None
    created: float = field(default_factory=time.time)
    finished: float | None = None
    #: Earliest monotonic time a retried job may be re-dispatched (backoff).
    not_before: float = 0.0

    @property
    def kind(self) -> str:
        return str(self.request.get("kind", "unknown"))

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready status view (the snapshot / status-file body).

        The result payload itself is *not* embedded — it lives in the
        content-addressed cache under ``key``; status stays cheap to write
        on every transition.
        """
        return {
            "id": self.id,
            "key": self.key,
            "kind": self.kind,
            "state": self.state.value,
            "attempts": self.attempts,
            "max_attempts": self.max_attempts,
            "error": self.error,
            "runs_done": self.runs_done,
            "runs_total": self.runs_total,
            "from_cache": self.from_cache,
            "created": self.created,
            "finished": self.finished,
            "request": self.request,
        }


class _WorkerSlot:
    """One persistent worker process plus its private inbox."""

    def __init__(self, index: int, ctx, outbox, executor: Executor):
        self.index = index
        self.job_id: str | None = None
        self._ctx = ctx
        self._outbox = outbox
        self._executor = executor
        self.inbox = None
        self.process = None
        self.spawn()

    def spawn(self) -> None:
        """(Re)start the worker with a fresh inbox.

        The inbox is replaced rather than reused: a worker killed between
        ``inbox.get()`` stages could leave a stale item in the old pipe, and
        a successor must never double-execute a job the dispatcher already
        retried elsewhere.
        """
        if self.inbox is not None:
            self.inbox.cancel_join_thread()
        self.inbox = self._ctx.Queue()
        self.process = self._ctx.Process(
            target=_worker_main,
            args=(self.inbox, self._outbox, self._executor),
            daemon=True,
            name=f"e2c-service-worker-{self.index}",
        )
        self.process.start()

    @property
    def idle(self) -> bool:
        return self.job_id is None

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class JobQueue:
    """Persistent-worker job queue with caching, retries, and a journal.

    Parameters
    ----------
    cache:
        Content-addressed result store (or a directory path for one); jobs
        whose key is already cached complete instantly, and every successful
        execution populates it. ``None`` disables caching.
    workers:
        Persistent worker processes (forked lazily on first submit).
    max_attempts:
        Executions allowed per job before a crashing job is ``FAILED``.
    retry_delay:
        Base backoff after a worker crash; attempt *n* waits
        ``retry_delay * 2**(n-1)`` seconds before re-dispatch.
    executor:
        The function workers run — ``executor(request, progress) ->
        payload``; defaults to :func:`execute_request`. Injectable so tests
        can submit hanging/poison jobs deterministically.
    state_dir:
        Durability root (``journal.jsonl`` + ``jobs/*.json`` snapshots);
        ``None`` keeps the queue in-memory only.
    """

    def __init__(
        self,
        *,
        cache: ResultCache | str | Path | None = None,
        workers: int = 2,
        max_attempts: int = 3,
        retry_delay: float = 0.05,
        poll: float = 0.02,
        executor: Executor = execute_request,
        state_dir: str | Path | None = None,
    ):
        if workers < 1:
            raise ServiceError(f"need at least 1 worker, got {workers}")
        if max_attempts < 1:
            raise ServiceError(f"need at least 1 attempt, got {max_attempts}")
        if isinstance(cache, (str, Path)):
            cache = ResultCache(cache)
        self.cache = cache
        self.n_workers = workers
        self.max_attempts = max_attempts
        self.retry_delay = retry_delay
        self.poll = poll
        self.executor = executor
        self.state_dir = None if state_dir is None else Path(state_dir)

        self._jobs: dict[str, Job] = {}
        self._by_key: dict[str, str] = {}
        self._pending: collections.deque[str] = collections.deque()
        self._slots: list[_WorkerSlot] = []
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._stop = threading.Event()
        self._dispatcher: threading.Thread | None = None
        self._ctx = _mp_context()
        self._outbox = None
        self._closed = False
        self._seq = 0
        #: Times a job was handed to a worker (one engine execution each).
        self.executions = 0
        #: Submissions served straight from the result cache.
        self.cache_hits = 0
        #: Submissions coalesced onto an already-live job with the same key.
        self.coalesced = 0

        if self.state_dir is not None:
            (self.state_dir / "jobs").mkdir(parents=True, exist_ok=True)
            self._recover()

    # -- submission / inspection ---------------------------------------------------

    def submit(
        self, request: Mapping[str, Any], *, key: str | None = None
    ) -> Job:
        """Enqueue one request; returns its (possibly pre-existing) job.

        *key* is the canonical content-address of the request (computed from
        the request document itself when omitted). Single-flight semantics:
        if a job with this key is already pending, running, or finished, that
        job is returned — a cohort of identical submissions costs one engine
        execution, ever.
        """
        request = dict(request)
        if key is None:
            key = canonical_hash(request)
        with self._cond:
            if self._closed:
                raise ServiceError("cannot submit to a closed JobQueue")
            existing_id = self._by_key.get(key)
            if existing_id is not None:
                existing = self._jobs[existing_id]
                if existing.state is JobState.DONE:
                    self.cache_hits += 1
                    return existing
                if not existing.state.is_terminal:
                    self.coalesced += 1
                    return existing
                # FAILED / CANCELLED: fall through and try again fresh.
            job = Job(
                id=self._next_id(),
                key=key,
                request=request,
                max_attempts=self.max_attempts,
            )
            self._jobs[job.id] = job
            self._by_key[key] = job.id
            self._journal(job, "submitted")
            cached = None if self.cache is None else self.cache.get(key)
            if cached is not None:
                self.cache_hits += 1
                job.from_cache = True
                job.result = cached
                job.runs_done = job.runs_total = int(
                    cached.get("n_runs", 1) or 1
                )
                self._transition(job, JobState.DONE)
                return job
            self._snapshot(job)
            self._pending.append(job.id)
            self._ensure_started()
            self._cond.notify_all()
            return job

    def get(self, job_id: str) -> Job:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise UnknownJobError(f"unknown job id {job_id!r}") from None

    def jobs(self) -> list[Job]:
        with self._lock:
            return list(self._jobs.values())

    def result(self, job_id: str) -> dict[str, Any]:
        """The finished job's result payload (cache-backed after recovery)."""
        job = self.get(job_id)
        if job.state is not JobState.DONE:
            raise ServiceError(
                f"job {job_id} has no result (state: {job.state.value}"
                + (f", error: {job.error}" if job.error else "")
                + ")"
            )
        if job.result is None and self.cache is not None:
            job.result = self.cache.get(job.key)
        if job.result is None:
            raise ServiceError(
                f"job {job_id} finished but its result is no longer "
                "available (cache entry evicted?)"
            )
        return job.result

    def wait(self, job_id: str, timeout: float | None = None) -> Job:
        """Block until the job reaches a terminal state (or timeout)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                job = self._jobs.get(job_id)
                if job is None:
                    raise UnknownJobError(f"unknown job id {job_id!r}")
                if job.state.is_terminal:
                    return job
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    raise ServiceError(
                        f"timed out waiting for job {job_id} "
                        f"(state: {job.state.value})"
                    )
                self._cond.wait(remaining if remaining is not None else 1.0)

    def cancel(self, job_id: str) -> bool:
        """Cancel a pending or running job; returns whether anything changed.

        A running job's worker is killed and replaced — the engine has no
        mid-run checkpoint to resume from, and a fresh worker is cheaper
        than a poisoned one.
        """
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None:
                raise UnknownJobError(f"unknown job id {job_id!r}")
            if job.state is JobState.PENDING:
                try:
                    self._pending.remove(job_id)
                except ValueError:
                    pass
                self._transition(job, JobState.CANCELLED)
                return True
            if job.state is JobState.RUNNING:
                for slot in self._slots:
                    if slot.job_id == job_id:
                        slot.job_id = None
                        if slot.alive:
                            slot.process.kill()
                self._transition(job, JobState.CANCELLED)
                return True
            return False

    # -- lifecycle -----------------------------------------------------------------

    def close(self) -> None:
        """Stop the dispatcher and workers; cancel anything still live."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
        self._stop.set()
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=10.0)
        with self._cond:
            while self._pending:
                job = self._jobs[self._pending.popleft()]
                self._transition(job, JobState.CANCELLED)
            for slot in self._slots:
                if slot.job_id is not None:
                    job = self._jobs[slot.job_id]
                    slot.job_id = None
                    if not job.state.is_terminal:
                        self._transition(job, JobState.CANCELLED)
                if slot.alive:
                    slot.process.terminate()
            for slot in self._slots:
                if slot.process is not None:
                    slot.process.join(timeout=2.0)
                    if slot.process.is_alive():  # pragma: no cover - stubborn
                        slot.process.kill()
                        slot.process.join(timeout=2.0)
                if slot.inbox is not None:
                    slot.inbox.cancel_join_thread()
            if self._outbox is not None:
                self._outbox.cancel_join_thread()
            self._cond.notify_all()

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def worker_pids(self) -> list[int]:
        """PIDs of the live worker processes (fault-injection hooks)."""
        with self._lock:
            return [
                slot.process.pid
                for slot in self._slots
                if slot.alive and slot.process.pid is not None
            ]

    # -- internals -----------------------------------------------------------------

    def _next_id(self) -> str:
        self._seq += 1
        return f"job-{self._seq:06d}"

    def _ensure_started(self) -> None:
        """Fork the worker pool and start the dispatcher, once (lazily)."""
        if self._dispatcher is not None:
            return
        self._outbox = self._ctx.Queue()
        self._slots = [
            _WorkerSlot(i, self._ctx, self._outbox, self.executor)
            for i in range(self.n_workers)
        ]
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="e2c-service-dispatcher",
            daemon=True,
        )
        self._dispatcher.start()

    def _dispatch_loop(self) -> None:
        while not self._stop.is_set():
            try:
                message = self._outbox.get(timeout=self.poll)
            except queue_module.Empty:
                message = None
            with self._cond:
                if message is not None:
                    self._handle_message(message)
                    while True:
                        try:
                            self._handle_message(self._outbox.get_nowait())
                        except queue_module.Empty:
                            break
                self._reap_dead_workers()
                self._assign_pending()

    def _handle_message(self, message: tuple) -> None:
        tag, job_id = message[0], message[1]
        job = self._jobs.get(job_id)
        if job is None:  # pragma: no cover - defensive
            return
        if tag == "progress":
            if job.state is JobState.RUNNING:
                job.runs_done, job.runs_total = int(message[2]), int(message[3])
                self._journal(job, "progress")
            return
        # done / failed: a worker finished with this job either way.
        for slot in self._slots:
            if slot.job_id == job_id:
                slot.job_id = None
        if job.state is not JobState.RUNNING:
            return  # cancelled (or already failed) while the result raced in
        if tag == "done":
            job.result = message[2]
            if job.runs_total:
                job.runs_done = job.runs_total
            if self.cache is not None:
                self.cache.put(job.key, job.result)
            self._transition(job, JobState.DONE)
        elif tag == "failed":
            job.error = str(message[2]).strip()
            self._transition(job, JobState.FAILED)

    def _reap_dead_workers(self) -> None:
        """Replace crashed workers; retry or fail the jobs they carried."""
        for slot in self._slots:
            if slot.alive:
                continue
            exitcode = None if slot.process is None else slot.process.exitcode
            job_id, slot.job_id = slot.job_id, None
            slot.spawn()
            if job_id is None:
                continue
            job = self._jobs.get(job_id)
            if job is None or job.state is not JobState.RUNNING:
                continue
            crash = (
                f"worker crashed (exit code {exitcode}) during attempt "
                f"{job.attempts}/{job.max_attempts}"
            )
            if job.attempts >= job.max_attempts:
                job.error = crash
                self._transition(job, JobState.FAILED)
            else:
                job.worker_pid = None
                job.not_before = time.monotonic() + self.retry_delay * (
                    2 ** (job.attempts - 1)
                )
                self._transition(job, JobState.PENDING, event="retry")
                self._pending.append(job.id)

    def _assign_pending(self) -> None:
        now = time.monotonic()
        for slot in self._slots:
            if not self._pending:
                return
            if not (slot.idle and slot.alive):
                continue
            # Respect backoff: rotate held-back jobs instead of stalling the
            # queue behind them.
            for _ in range(len(self._pending)):
                job_id = self._pending.popleft()
                job = self._jobs[job_id]
                if job.not_before <= now:
                    break
                self._pending.append(job_id)
            else:
                return
            job.attempts += 1
            job.worker_pid = slot.process.pid
            self.executions += 1
            slot.job_id = job.id
            slot.inbox.put((job.id, job.request))
            self._transition(job, JobState.RUNNING)

    def _transition(
        self, job: Job, state: JobState, *, event: str | None = None
    ) -> None:
        job.state = state
        if state.is_terminal:
            job.finished = time.time()
        self._journal(job, event or state.value)
        self._snapshot(job)
        self._cond.notify_all()

    # -- durability ----------------------------------------------------------------

    def _journal(self, job: Job, event: str) -> None:
        if self.state_dir is None:
            return
        import json

        line = json.dumps(
            {
                "t": time.time(),
                "job": job.id,
                "key": job.key,
                "event": event,
                "state": job.state.value,
                "attempts": job.attempts,
                "runs_done": job.runs_done,
                "runs_total": job.runs_total,
                "error": job.error,
            },
            sort_keys=True,
        )
        with open(
            self.state_dir / "journal.jsonl", "a", encoding="utf-8"
        ) as handle:
            handle.write(line + "\n")

    def _snapshot(self, job: Job) -> None:
        if self.state_dir is None:
            return
        import json

        target = self.state_dir / "jobs" / f"{job.id}.json"
        tmp = target.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(job.as_dict(), indent=2), encoding="utf-8")
        os.replace(tmp, target)

    def _recover(self) -> None:
        """Reload snapshots: finished jobs re-serve, interrupted ones re-queue.

        A job that was ``RUNNING`` when the previous process died has no
        worker anymore — it restarts as ``PENDING`` with its attempt count
        preserved, so a crash loop cannot evade ``max_attempts`` by
        restarting the service.
        """
        assert self.state_dir is not None
        snapshots = sorted((self.state_dir / "jobs").glob("job-*.json"))
        with self._cond:
            self._recover_snapshots(snapshots)
        if self._pending:
            self._ensure_started()

    def _recover_snapshots(self, snapshots: list[Path]) -> None:
        import json

        for path in snapshots:
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
                job = Job(
                    id=str(data["id"]),
                    key=str(data["key"]),
                    request=dict(data["request"]),
                    max_attempts=int(data.get("max_attempts", self.max_attempts)),
                    state=JobState(data["state"]),
                    attempts=int(data.get("attempts", 0)),
                    error=data.get("error"),
                    runs_done=int(data.get("runs_done", 0)),
                    runs_total=int(data.get("runs_total", 0)),
                    from_cache=bool(data.get("from_cache", False)),
                    created=float(data.get("created", 0.0)),
                    finished=data.get("finished"),
                )
            except (KeyError, ValueError, TypeError, json.JSONDecodeError):
                continue  # torn snapshot: the journal still has the history
            self._jobs[job.id] = job
            self._by_key.setdefault(job.key, job.id)
            self._seq = max(self._seq, int(job.id.split("-")[-1]))
            if job.state in (JobState.PENDING, JobState.RUNNING):
                job.worker_pid = None
                self._transition(job, JobState.PENDING, event="recovered")
                self._pending.append(job.id)
