"""Scheduling quiz engine — the §5 pre/post assessment, auto-graded.

"The quizzes asked the students to map three arriving tasks to four
heterogeneous machines via the following scheduling methods: MEET, MECT, MM,
and MSD" — 3 tasks × 4 methods = 12 points, matching the paper's "out of 12
points" scale.

The ground truth is *computed by the actual scheduler implementations* of
this library: each question builds a miniature cluster, feeds the tasks
through the selected policy exactly as the simulator would (immediate
policies map sequentially with state carried between arrivals; batch policies
map the whole set in one pass), and records the mapping. Grading compares a
student's per-method mapping against that truth, one point per task.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..core.errors import ConfigurationError
from ..core.rng import make_rng
from ..machines.cluster import Cluster
from ..machines.eet import EETMatrix
from ..machines.eet_generation import generate_eet_range_based
from ..scheduling.base import SchedulingMode
from ..scheduling.context import SchedulingContext
from ..scheduling.registry import create_scheduler
from ..tasks.task import Task

__all__ = ["QuizQuestion", "QuizResult", "generate_quiz", "DEFAULT_METHODS"]

#: The four methods of the paper's quiz.
DEFAULT_METHODS: tuple[str, ...] = ("MEET", "MECT", "MM", "MSD")


@dataclass(frozen=True)
class QuizResult:
    """Graded outcome of one quiz attempt."""

    points: int
    max_points: int
    per_method: dict[str, int]

    @property
    def score_fraction(self) -> float:
        return self.points / self.max_points if self.max_points else 0.0


@dataclass
class QuizQuestion:
    """One quiz instance: an EET table, task deadlines, and the methods.

    Tasks are one instance per EET row (task i is of type i), all arriving
    simultaneously at t = 0 in row order — the scenario the paper's quiz
    describes.
    """

    eet: EETMatrix
    deadlines: list[float]
    methods: tuple[str, ...] = DEFAULT_METHODS

    def __post_init__(self) -> None:
        if len(self.deadlines) != self.eet.n_task_types:
            raise ConfigurationError(
                f"need one deadline per task "
                f"({len(self.deadlines)} vs {self.eet.n_task_types})"
            )
        if any(d <= 0 for d in self.deadlines):
            raise ConfigurationError("deadlines must be positive")
        if not self.methods:
            raise ConfigurationError("a quiz needs at least one method")

    # -- ground truth ------------------------------------------------------------

    @property
    def n_tasks(self) -> int:
        return self.eet.n_task_types

    @property
    def max_points(self) -> int:
        return self.n_tasks * len(self.methods)

    def _fresh_tasks(self) -> list[Task]:
        return [
            Task(
                id=i,
                task_type=self.eet.task_types[i],
                arrival_time=0.0,
                deadline=self.deadlines[i],
            )
            for i in range(self.n_tasks)
        ]

    def _fresh_cluster(self) -> Cluster:
        return Cluster.build(
            self.eet, {name: 1 for name in self.eet.machine_type_names}
        )

    def correct_mapping(self, method: str) -> dict[int, int]:
        """Ground-truth mapping {task id → machine id} under *method*.

        Immediate policies see tasks one at a time (queue state carried
        forward, as successive arrivals would); batch policies map the whole
        set in a single pass.
        """
        scheduler = create_scheduler(method)
        cluster = self._fresh_cluster()
        tasks = self._fresh_tasks()
        for task in tasks:
            task.enqueue_batch()
        mapping: dict[int, int] = {}
        if scheduler.mode is SchedulingMode.IMMEDIATE:
            for task in tasks:
                ctx = SchedulingContext(
                    now=0.0, pending=[task], cluster=cluster
                )
                (assignment,) = scheduler.schedule(ctx)
                assignment.machine.enqueue(task, 0.0)
                mapping[task.id] = assignment.machine.id
        else:
            ctx = SchedulingContext(now=0.0, pending=tasks, cluster=cluster)
            for assignment in scheduler.schedule(ctx):
                assignment.machine.enqueue(assignment.task, 0.0)
                mapping[assignment.task.id] = assignment.machine.id
        return mapping

    def answer_key(self) -> dict[str, dict[int, int]]:
        """Ground truth for every method."""
        return {m: self.correct_mapping(m) for m in self.methods}

    # -- grading -------------------------------------------------------------------

    def grade(
        self, answers: Mapping[str, Mapping[int, int]]
    ) -> QuizResult:
        """Grade a student's answers: one point per correct (method, task).

        Unanswered methods/tasks score zero; unknown methods are ignored.
        """
        per_method: dict[str, int] = {}
        total = 0
        for method in self.methods:
            truth = self.correct_mapping(method)
            given = answers.get(method, {})
            points = sum(
                1
                for task_id, machine_id in truth.items()
                if given.get(task_id) == machine_id
            )
            per_method[method] = points
            total += points
        return QuizResult(
            points=total, max_points=self.max_points, per_method=per_method
        )

    # -- presentation ----------------------------------------------------------------

    def to_text(self) -> str:
        """Printable question sheet (EET table + deadlines + instructions)."""
        lines = [
            "Scheduling quiz — map each task to a machine under every method.",
            "",
            "Expected execution times (seconds):",
        ]
        header = "        " + "  ".join(
            f"{n:>8}" for n in self.eet.machine_type_names
        )
        lines.append(header)
        for i, t in enumerate(self.eet.task_types):
            row = "  ".join(f"{v:8.2f}" for v in self.eet.values[i])
            lines.append(f"{t.name:>6}  {row}   (deadline {self.deadlines[i]:g} s)")
        lines.append("")
        lines.append(f"Methods: {', '.join(self.methods)}")
        lines.append("All tasks arrive at t = 0, in row order.")
        return "\n".join(lines)


def generate_quiz(
    *,
    n_tasks: int = 3,
    n_machines: int = 4,
    methods: Sequence[str] = DEFAULT_METHODS,
    seed: int | None | np.random.Generator = None,
    slack: float = 2.0,
) -> QuizQuestion:
    """Random quiz instance shaped like the paper's (3 tasks × 4 machines).

    Deadlines are ``slack × mean EET`` of each row — tight enough that the
    methods disagree, loose enough that correct mappings are feasible.
    """
    if n_tasks < 1 or n_machines < 2:
        raise ConfigurationError("need >= 1 task and >= 2 machines")
    if slack <= 0:
        raise ConfigurationError(f"slack must be positive, got {slack}")
    rng = make_rng(seed)
    eet = generate_eet_range_based(
        n_tasks,
        n_machines,
        task_range=8.0,
        machine_range=6.0,
        consistency="inconsistent",
        seed=rng,
    )
    deadlines = [
        float(slack * eet.values[i].mean()) for i in range(n_tasks)
    ]
    return QuizQuestion(eet=eet, deadlines=deadlines, methods=tuple(methods))
