"""Synthetic student cohort with a learning effect — the §5 quiz study.

The paper reports a pre-quiz average of 7.6/12 and a post-quiz average of
8.94/12 (+17.6%) across 23 students. We cannot rerun the human study
(DESIGN.md §3.3); instead this module models each student as a per-method
*mastery* probability: when a student has mastered a method they produce its
correct mapping; otherwise they guess uniformly among the machines (so even
unmastered students score 1/M per task in expectation — exactly why the
paper's pre-scores sit well above zero).

Expected score: E[points] = T·K·(p + (1-p)/M) for T tasks, K methods, M
machines, mastery p. Inverting the paper's averages for T=3, K=4, M=4:

    pre : 7.60/12 = 0.633 ⇒ p ≈ 0.511
    post: 8.94/12 = 0.745 ⇒ p ≈ 0.660

Cohort mastery is Beta-distributed around those means (students differ) and
per-method difficulty offsets make MM/MSD harder than MEET/MECT, matching
the intuition that batch heuristics are harder to trace by hand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.errors import ConfigurationError
from ..core.rng import make_rng, spawn
from .quiz import DEFAULT_METHODS, QuizQuestion, QuizResult, generate_quiz

__all__ = [
    "Student",
    "CohortModel",
    "QuizStudyResult",
    "run_quiz_study",
    "PAPER_PRE_MEAN",
    "PAPER_POST_MEAN",
    "mastery_for_target_score",
]

#: Averages reported in §5 (out of 12).
PAPER_PRE_MEAN = 7.6
PAPER_POST_MEAN = 8.94

#: Per-method difficulty offsets (added to the base mastery, then clipped).
_DIFFICULTY: dict[str, float] = {
    "MEET": +0.10,
    "MECT": +0.05,
    "MM": -0.07,
    "MSD": -0.08,
}


def mastery_for_target_score(
    target_mean: float, *, max_points: int = 12, n_machines: int = 4
) -> float:
    """Invert E[score] = P·(p + (1-p)/M) to the mastery p."""
    if not 0 < target_mean <= max_points:
        raise ConfigurationError(
            f"target mean must be in (0, {max_points}], got {target_mean}"
        )
    guess = 1.0 / n_machines
    p = (target_mean / max_points - guess) / (1.0 - guess)
    if p < 0:
        raise ConfigurationError(
            f"target {target_mean}/{max_points} is below the guessing floor"
        )
    return min(p, 1.0)


@dataclass
class Student:
    """One simulated student: a mastery probability per method."""

    student_id: int
    mastery: dict[str, float]

    def answer(
        self, question: QuizQuestion, rng: np.random.Generator
    ) -> dict[str, dict[int, int]]:
        """Produce an answer sheet: truth when mastered, uniform guess else."""
        key = question.answer_key()
        n_machines = question.eet.n_machine_types
        answers: dict[str, dict[int, int]] = {}
        for method in question.methods:
            p = self.mastery.get(method, 0.0)
            sheet: dict[int, int] = {}
            for task_id, machine_id in key[method].items():
                if rng.random() < p:
                    sheet[task_id] = machine_id
                else:
                    sheet[task_id] = int(rng.integers(n_machines))
            answers[method] = sheet
        return answers

    def take(self, question: QuizQuestion, rng: np.random.Generator) -> QuizResult:
        return question.grade(self.answer(question, rng))


@dataclass
class CohortModel:
    """A class of students with Beta-distributed base mastery."""

    n_students: int = 23
    mean_mastery: float = 0.5
    concentration: float = 12.0
    methods: Sequence[str] = DEFAULT_METHODS

    def __post_init__(self) -> None:
        if self.n_students < 1:
            raise ConfigurationError("cohort needs at least one student")
        if not 0 < self.mean_mastery < 1:
            raise ConfigurationError(
                f"mean mastery must be in (0, 1), got {self.mean_mastery}"
            )
        if self.concentration <= 0:
            raise ConfigurationError("concentration must be positive")

    def sample(self, rng: np.random.Generator) -> list[Student]:
        a = self.mean_mastery * self.concentration
        b = (1 - self.mean_mastery) * self.concentration
        students = []
        for sid in range(self.n_students):
            base = float(rng.beta(a, b))
            mastery = {
                m: float(np.clip(base + _DIFFICULTY.get(m, 0.0), 0.0, 1.0))
                for m in self.methods
            }
            students.append(Student(student_id=sid, mastery=mastery))
        return students


@dataclass(frozen=True)
class QuizStudyResult:
    """Outcome of the pre/post study."""

    pre_scores: list[int]
    post_scores: list[int]
    max_points: int

    @property
    def pre_mean(self) -> float:
        return float(np.mean(self.pre_scores))

    @property
    def post_mean(self) -> float:
        return float(np.mean(self.post_scores))

    @property
    def improvement(self) -> float:
        """Relative improvement, the paper's ≈ 17.6%."""
        return (self.post_mean - self.pre_mean) / self.pre_mean

    def as_dict(self) -> dict:
        return {
            "pre_mean": self.pre_mean,
            "post_mean": self.post_mean,
            "max_points": self.max_points,
            "improvement": self.improvement,
            "n_students": len(self.pre_scores),
        }


def run_quiz_study(
    *,
    n_students: int = 23,
    pre_target: float = PAPER_PRE_MEAN,
    post_target: float = PAPER_POST_MEAN,
    seed: int | None = None,
    n_machines: int = 4,
    n_tasks: int = 3,
) -> QuizStudyResult:
    """Simulate the pre/post quiz study of §5.

    Builds two cohorts sharing per-student identity (the post cohort is the
    pre cohort with mastery shifted up by the learning effect), generates a
    quiz instance per phase, and grades everyone.
    """
    rng = make_rng(seed)
    quiz_rng, pre_rng, post_rng, answer_rng = spawn(rng, 4)

    pre_quiz = generate_quiz(
        n_tasks=n_tasks, n_machines=n_machines, seed=quiz_rng
    )
    post_quiz = generate_quiz(
        n_tasks=n_tasks, n_machines=n_machines, seed=quiz_rng
    )
    max_points = pre_quiz.max_points

    pre_mastery = mastery_for_target_score(
        pre_target, max_points=max_points, n_machines=n_machines
    )
    post_mastery = mastery_for_target_score(
        post_target, max_points=max_points, n_machines=n_machines
    )

    pre_cohort = CohortModel(
        n_students=n_students, mean_mastery=pre_mastery
    ).sample(pre_rng)
    gain = post_mastery - pre_mastery
    post_cohort = [
        Student(
            student_id=s.student_id,
            mastery={
                m: float(np.clip(p + gain, 0.0, 1.0))
                for m, p in s.mastery.items()
            },
        )
        for s in pre_cohort
    ]

    pre_scores = [s.take(pre_quiz, answer_rng).points for s in pre_cohort]
    post_scores = [s.take(post_quiz, answer_rng).points for s in post_cohort]
    return QuizStudyResult(
        pre_scores=pre_scores, post_scores=post_scores, max_points=max_points
    )
