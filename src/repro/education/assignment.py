"""The class assignment of §4 — the driver behind Figures 5, 6 and 7.

Students ran E2C on a homogeneous and a heterogeneous system under three
workload intensities (low / medium / high), saved the CSV reports, and plotted
the completion percentage of each scheduling method. This module packages
that exact workflow:

* :func:`build_homogeneous_eet` / :func:`build_heterogeneous_eet` — the two
  system configurations (same pipeline; machine heterogeneity CoV 0 vs > 0).
* :func:`run_completion_sweep` — policies × intensities × replications, each
  cell a mean completion rate, returned as an
  :class:`AssignmentFigure` (grouped bar chart + tidy rows).
* :func:`figure5` / :func:`figure6` / :func:`figure7` — the three charts with
  the paper's policy sets (immediate FCFS/MECT/MEET, batch MM/MMU/MSD).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..core.config import Scenario
from ..core.errors import ConfigurationError
from ..machines.eet import EETMatrix
from ..machines.eet_generation import generate_eet_cvb
from ..machines.machine_queue import UNBOUNDED
from ..metrics.stats import summarize
from ..viz.barchart import GroupedBarChart

__all__ = [
    "AssignmentConfig",
    "AssignmentFigure",
    "build_homogeneous_eet",
    "build_heterogeneous_eet",
    "run_completion_sweep",
    "figure5",
    "figure6",
    "figure7",
    "IMMEDIATE_POLICIES",
    "BATCH_POLICIES",
]

#: Policy sets the assignment compares (paper §4).
IMMEDIATE_POLICIES: tuple[str, ...] = ("FCFS", "MECT", "MEET")
BATCH_POLICIES: tuple[str, ...] = ("MM", "MMU", "MSD")


@dataclass(frozen=True)
class AssignmentConfig:
    """Shared experimental parameters of the assignment runs."""

    n_task_types: int = 3
    n_machines: int = 4
    duration: float = 600.0
    replications: int = 5
    seed: int = 2023
    intensities: tuple[str, ...] = ("low", "medium", "high")
    batch_queue_capacity: int = 3
    mean_task_eet: float = 20.0
    task_cov: float = 0.4
    machine_cov: float = 0.6
    slack_factor: float = 4.0

    def __post_init__(self) -> None:
        if self.replications < 1:
            raise ConfigurationError("need at least one replication")
        if self.n_task_types < 1 or self.n_machines < 1:
            raise ConfigurationError("need at least one task type and machine")


def build_homogeneous_eet(config: AssignmentConfig = AssignmentConfig()) -> EETMatrix:
    """Homogeneous system: machine-heterogeneity CoV = 0 (identical columns)."""
    return generate_eet_cvb(
        config.n_task_types,
        config.n_machines,
        mean_task=config.mean_task_eet,
        v_task=config.task_cov,
        v_machine=0.0,
        seed=config.seed,
    )


def build_heterogeneous_eet(
    config: AssignmentConfig = AssignmentConfig(),
) -> EETMatrix:
    """Heterogeneous system: inconsistent EET with machine CoV > 0."""
    return generate_eet_cvb(
        config.n_task_types,
        config.n_machines,
        mean_task=config.mean_task_eet,
        v_task=config.task_cov,
        v_machine=config.machine_cov,
        consistency="inconsistent",
        seed=config.seed,
    )


@dataclass
class AssignmentFigure:
    """One assignment figure: the chart plus its per-replication rows."""

    title: str
    chart: GroupedBarChart
    rows: list[dict] = field(default_factory=list)

    def mean(self, intensity: str, policy: str) -> float:
        """Mean completion rate of one (intensity, policy) cell."""
        values = [
            r["completion_rate"]
            for r in self.rows
            if r["intensity"] == intensity and r["policy"] == policy
        ]
        if not values:
            raise ConfigurationError(
                f"no rows for intensity={intensity!r}, policy={policy!r}"
            )
        return summarize(values).mean

    def to_text(self) -> str:
        return self.chart.to_text()


def run_completion_sweep(
    eet: EETMatrix,
    policies: Sequence[str],
    *,
    config: AssignmentConfig = AssignmentConfig(),
    batch: bool = False,
    title: str = "completion % sweep",
) -> AssignmentFigure:
    """Run policies × intensities × replications on one system.

    Each replication draws an independent workload (derived seeds); every
    policy sees the *same* workloads for a paired comparison, exactly like
    students re-running the same trace with a different drop-down choice.
    """
    chart = GroupedBarChart(title=title, max_value=100.0, unit="%")
    rows: list[dict] = []
    machine_counts = {n: 1 for n in eet.machine_type_names}
    for intensity in config.intensities:
        for policy in policies:
            rates = []
            for rep in range(config.replications):
                scenario = Scenario(
                    eet=eet,
                    machine_counts=machine_counts,
                    scheduler=policy,
                    queue_capacity=(
                        config.batch_queue_capacity if batch else UNBOUNDED
                    ),
                    generator={
                        "duration": config.duration,
                        "intensity": intensity,
                        "specs": [
                            {"name": n, "slack_factor": config.slack_factor}
                            for n in eet.task_type_names
                        ],
                    },
                    seed=config.seed,
                    name=f"{title}:{policy}@{intensity}",
                )
                result = scenario.run(replication=rep)
                rate = result.summary.completion_rate
                rates.append(rate)
                rows.append(
                    {
                        "intensity": intensity,
                        "policy": policy,
                        "replication": rep,
                        "completion_rate": rate,
                        "total_tasks": result.summary.total_tasks,
                        "completed": result.summary.completed,
                        "cancelled": result.summary.cancelled,
                        "missed": result.summary.missed,
                        "total_energy": result.summary.total_energy,
                    }
                )
            chart.set(intensity, policy, 100.0 * summarize(rates).mean)
    return AssignmentFigure(title=title, chart=chart, rows=rows)


def figure5(config: AssignmentConfig = AssignmentConfig()) -> AssignmentFigure:
    """Fig. 5: immediate policies (FCFS/MECT/MEET) on a homogeneous system."""
    return run_completion_sweep(
        build_homogeneous_eet(config),
        IMMEDIATE_POLICIES,
        config=config,
        batch=False,
        title="Fig 5 — completion % of immediate policies, homogeneous system",
    )


def figure6(config: AssignmentConfig = AssignmentConfig()) -> AssignmentFigure:
    """Fig. 6: immediate policies (FCFS/MECT/MEET) on a heterogeneous system."""
    return run_completion_sweep(
        build_heterogeneous_eet(config),
        IMMEDIATE_POLICIES,
        config=config,
        batch=False,
        title="Fig 6 — completion % of immediate policies, heterogeneous system",
    )


def figure7(config: AssignmentConfig = AssignmentConfig()) -> AssignmentFigure:
    """Fig. 7: batch policies (MM/MMU/MSD) on a heterogeneous system."""
    return run_completion_sweep(
        build_heterogeneous_eet(config),
        BATCH_POLICIES,
        config=config,
        batch=True,
        title="Fig 7 — completion % of batch policies, heterogeneous system",
    )
