"""Survey schema, calibrated synthetic cohort and analysis — §5, Fig. 8.

The paper surveys 23 students (14 undergraduate, 9 graduate; 73.9% male,
26.1% female; mean programming experience 3.8 years, median 3; 43.5% had
passed an OS course) on ten 0–10 metrics in two categories: user experience
(Fig. 8a) and learning outcomes (Fig. 8b). A human study cannot be rerun
here (DESIGN.md §3.2), so this module provides:

* the survey **schema** (respondent demographics + metric definitions with
  the paper's published per-gender targets),
* a deterministic **synthetic cohort generator** whose integer scores hit the
  published group means to within rounding (each group's total is the rounded
  target sum; ±1 spread pairs keep the mean exact while varying individuals),
* the **analysis pipeline** (means/medians, per-gender splits, demographic
  table, Fig-8a/8b chart builders) — the part a real study would reuse as-is.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence, TextIO

import numpy as np

from ..core.errors import ConfigurationError
from ..core.rng import make_rng
from ..metrics.stats import summarize
from ..viz.barchart import GroupedBarChart

__all__ = [
    "SurveyMetric",
    "Respondent",
    "SurveyStudy",
    "PAPER_METRICS",
    "PAPER_COHORT",
    "generate_cohort",
]


@dataclass(frozen=True)
class SurveyMetric:
    """One survey question with the paper's published per-gender targets."""

    key: str
    label: str
    category: str                 # "ux" (Fig 8a) or "learning" (Fig 8b)
    female_target: float
    male_target: float
    grad_only: bool = False

    def overall_target(self, n_female: int, n_male: int) -> float:
        total = n_female + n_male
        if total == 0:
            raise ConfigurationError("empty cohort")
        return (
            self.female_target * n_female + self.male_target * n_male
        ) / total


#: The ten metrics of Fig. 8 with the gender means reported in §5.
PAPER_METRICS: tuple[SurveyMetric, ...] = (
    # -- Fig 8a: user experience --
    SurveyMetric("intuitive_gui", "intuitive GUI", "ux", 9.3, 8.0),
    SurveyMetric("ease_of_use", "ease-of-use", "ux", 9.3, 7.9),
    SurveyMetric("easy_installation", "easy installation", "ux", 8.3, 8.3),
    SurveyMetric("comprehensive_report", "comprehensive report", "ux", 4.8, 5.9),
    SurveyMetric(
        "adding_custom_sched", "adding custom sched.", "ux", 9.2, 7.4,
        grad_only=True,
    ),
    SurveyMetric("recommend_to_others", "recommend to others", "ux", 9.7, 7.8),
    # -- Fig 8b: learning outcomes --
    SurveyMetric(
        "homogeneous_scheduling", "homogeneous scheduling policies",
        "learning", 9.5, 8.4,
    ),
    SurveyMetric(
        "heterogeneous_scheduling", "heterogeneous scheduling policies",
        "learning", 9.8, 8.2,
    ),
    SurveyMetric(
        "arrival_rate_impact", "impact of arrival rate on performance",
        "learning", 9.7, 8.2,
    ),
    SurveyMetric(
        "overall_usefulness", "overall usefulness", "learning", 9.5, 8.6,
    ),
)


@dataclass(frozen=True)
class CohortSpec:
    """Composition of the surveyed class (§5 demographics)."""

    n_female_grad: int = 4
    n_female_undergrad: int = 2
    n_male_grad: int = 5
    n_male_undergrad: int = 12
    prog_experience_mean: float = 3.8
    prog_experience_median: float = 3.0
    n_passed_os: int = 10

    @property
    def n_students(self) -> int:
        return (
            self.n_female_grad
            + self.n_female_undergrad
            + self.n_male_grad
            + self.n_male_undergrad
        )

    @property
    def n_female(self) -> int:
        return self.n_female_grad + self.n_female_undergrad

    @property
    def n_male(self) -> int:
        return self.n_male_grad + self.n_male_undergrad

    @property
    def n_grad(self) -> int:
        return self.n_female_grad + self.n_male_grad


#: 23 students: 6 female (26.1%), 17 male; 9 graduate, 14 undergraduate.
PAPER_COHORT = CohortSpec()


@dataclass
class Respondent:
    """One survey response sheet."""

    respondent_id: int
    gender: str                   # "female" | "male"
    level: str                    # "graduate" | "undergraduate"
    years_programming: float
    passed_os_course: bool
    scores: dict[str, int] = field(default_factory=dict)


def _integer_scores_with_mean(
    n: int, target: float, rng: np.random.Generator, *, spread_pairs: int = 2
) -> list[int]:
    """n integers in [0, 10] whose total is round(target·n), with ±1 spread."""
    if n <= 0:
        return []
    total = int(round(target * n))
    total = min(max(total, 0), 10 * n)
    base, remainder = divmod(total, n)
    values = [base + 1] * remainder + [base] * (n - remainder)
    # Balanced ±1 pairs keep the sum identical but individualise responses.
    for _ in range(spread_pairs):
        if n < 2:
            break
        i, j = rng.choice(n, size=2, replace=False)
        if values[i] < 10 and values[j] > 0:
            values[int(i)] += 1
            values[int(j)] -= 1
    rng.shuffle(values)
    return [int(v) for v in values]


def _experience_years(spec: CohortSpec, rng: np.random.Generator) -> list[float]:
    """Programming-experience sample matching the paper's mean 3.8 / median 3."""
    n = spec.n_students
    # Right-skewed integers, hand-balanced for the default cohort: sum 87
    # (mean 3.78 ≈ 3.8) and 12th order statistic 3 (median 3).
    base = [1, 1, 1, 2, 2, 2, 2, 2, 3, 3, 3, 3, 3, 3, 3, 4, 4, 5, 6, 7, 8, 9, 10]
    if len(base) != n:  # non-default cohorts: draw from a similar skew
        draws = rng.gamma(2.2, spec.prog_experience_mean / 2.2, size=n)
        return [float(max(0.5, round(d, 1))) for d in draws]
    years = [float(b) for b in base]
    rng.shuffle(years)
    return years


def generate_cohort(
    *,
    spec: CohortSpec = PAPER_COHORT,
    metrics: Sequence[SurveyMetric] = PAPER_METRICS,
    seed: int | None = None,
) -> list[Respondent]:
    """Deterministic synthetic cohort calibrated to the paper's aggregates."""
    rng = make_rng(seed)
    respondents: list[Respondent] = []
    composition = (
        [("female", "graduate")] * spec.n_female_grad
        + [("female", "undergraduate")] * spec.n_female_undergrad
        + [("male", "graduate")] * spec.n_male_grad
        + [("male", "undergraduate")] * spec.n_male_undergrad
    )
    years = _experience_years(spec, rng)
    os_flags = [True] * spec.n_passed_os + [False] * (
        spec.n_students - spec.n_passed_os
    )
    rng.shuffle(os_flags)
    for rid, (gender, level) in enumerate(composition):
        respondents.append(
            Respondent(
                respondent_id=rid,
                gender=gender,
                level=level,
                years_programming=years[rid],
                passed_os_course=os_flags[rid],
            )
        )

    for metric in metrics:
        for gender, target in (
            ("female", metric.female_target),
            ("male", metric.male_target),
        ):
            group = [
                r
                for r in respondents
                if r.gender == gender
                and (not metric.grad_only or r.level == "graduate")
            ]
            values = _integer_scores_with_mean(len(group), target, rng)
            for r, v in zip(group, values):
                r.scores[metric.key] = v
    return respondents


class SurveyStudy:
    """Analysis over a set of respondents (real or synthetic)."""

    def __init__(
        self,
        respondents: Iterable[Respondent],
        metrics: Sequence[SurveyMetric] = PAPER_METRICS,
    ) -> None:
        self.respondents = list(respondents)
        if not self.respondents:
            raise ConfigurationError("survey needs at least one respondent")
        self.metrics = list(metrics)
        self._by_key = {m.key: m for m in self.metrics}

    # -- aggregates ------------------------------------------------------------------

    def scores_for(
        self, key: str, *, gender: str | None = None
    ) -> list[int]:
        if key not in self._by_key:
            raise ConfigurationError(
                f"unknown metric {key!r}; known: {sorted(self._by_key)}"
            )
        return [
            r.scores[key]
            for r in self.respondents
            if key in r.scores and (gender is None or r.gender == gender)
        ]

    def mean(self, key: str, *, gender: str | None = None) -> float:
        return summarize(self.scores_for(key, gender=gender)).mean

    def median(self, key: str, *, gender: str | None = None) -> float:
        return summarize(self.scores_for(key, gender=gender)).median

    def demographics(self) -> dict:
        genders = [r.gender for r in self.respondents]
        levels = [r.level for r in self.respondents]
        years = [r.years_programming for r in self.respondents]
        os_passed = [r.passed_os_course for r in self.respondents]
        n = len(self.respondents)
        return {
            "n_students": n,
            "male_fraction": genders.count("male") / n,
            "female_fraction": genders.count("female") / n,
            "undergraduate_fraction": levels.count("undergraduate") / n,
            "graduate_fraction": levels.count("graduate") / n,
            "prog_experience_mean": float(np.mean(years)),
            "prog_experience_median": float(np.median(years)),
            "passed_os_fraction": sum(os_passed) / n,
        }

    # -- figures ------------------------------------------------------------------------

    def _chart(self, category: str, title: str) -> GroupedBarChart:
        chart = GroupedBarChart(title=title, max_value=10.0, unit="/10")
        for metric in self.metrics:
            if metric.category != category:
                continue
            chart.set(metric.label, "overall", self.mean(metric.key))
            chart.set(metric.label, "female", self.mean(metric.key, gender="female"))
            chart.set(metric.label, "male", self.mean(metric.key, gender="male"))
        return chart

    def figure_8a(self) -> GroupedBarChart:
        """User-experience scores (Fig. 8a)."""
        return self._chart("ux", "Fig 8a — user experience with E2C (score /10)")

    def figure_8b(self) -> GroupedBarChart:
        """Learning-outcome scores (Fig. 8b)."""
        return self._chart(
            "learning", "Fig 8b — learning outcomes via E2C (score /10)"
        )

    # -- I/O ----------------------------------------------------------------------------

    def to_csv(self, target: str | Path | TextIO | None = None) -> str:
        keys = [m.key for m in self.metrics]
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(
            ["respondent_id", "gender", "level", "years_programming",
             "passed_os_course", *keys]
        )
        for r in self.respondents:
            writer.writerow(
                [
                    r.respondent_id, r.gender, r.level, r.years_programming,
                    str(r.passed_os_course).lower(),
                    *[r.scores.get(k, "") for k in keys],
                ]
            )
        text = buffer.getvalue()
        if target is not None:
            if isinstance(target, (str, Path)):
                Path(target).write_text(text, encoding="utf-8")
            else:
                target.write(text)
        return text

    @classmethod
    def from_csv(
        cls,
        source: str | Path | TextIO,
        metrics: Sequence[SurveyMetric] = PAPER_METRICS,
    ) -> "SurveyStudy":
        if isinstance(source, (str, Path)):
            text = Path(source).read_text(encoding="utf-8")
        else:
            text = source.read()
        reader = csv.DictReader(io.StringIO(text))
        keys = {m.key for m in metrics}
        respondents = []
        for row in reader:
            scores = {
                k: int(v)
                for k, v in row.items()
                if k in keys and v not in (None, "")
            }
            respondents.append(
                Respondent(
                    respondent_id=int(row["respondent_id"]),
                    gender=row["gender"],
                    level=row["level"],
                    years_programming=float(row["years_programming"]),
                    passed_os_course=row["passed_os_course"] == "true",
                    scores=scores,
                )
            )
        return cls(respondents, metrics)
