"""Student-side report analysis — from saved CSVs to the assignment charts.

The §4 workflow after the simulations: "students ... saved the CSV output
files ... then created bar graphs to depict the percentage of completed
tasks". This module is that half of the assignment: load saved Task/Summary
report CSVs back (no simulator required), compute completion percentages —
overall and per task type — and build the grouped bar chart.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Mapping, Sequence, TextIO

from ..core.errors import ReportError
from ..viz.barchart import GroupedBarChart

__all__ = [
    "load_report_csv",
    "completion_percentage",
    "completion_by_type",
    "build_completion_chart",
]


def load_report_csv(source: str | Path | TextIO) -> list[dict[str, str]]:
    """Read any saved report CSV back into row dicts (all values strings)."""
    if isinstance(source, (str, Path)):
        text = Path(source).read_text(encoding="utf-8")
    else:
        text = source.read()
    rows = list(csv.DictReader(io.StringIO(text)))
    if not rows:
        raise ReportError("report CSV holds no rows")
    return rows


def _require_task_rows(rows: Sequence[Mapping[str, str]]) -> None:
    if not rows or "status" not in rows[0] or "task_id" not in rows[0]:
        raise ReportError(
            "expected a Task/Full report CSV (needs task_id and status columns)"
        )


def completion_percentage(rows: Sequence[Mapping[str, str]]) -> float:
    """Completed tasks / total tasks × 100, from Task-report rows."""
    _require_task_rows(rows)
    completed = sum(1 for r in rows if r["status"] == "completed")
    return 100.0 * completed / len(rows)


def completion_by_type(
    rows: Sequence[Mapping[str, str]]
) -> dict[str, float]:
    """Per-task-type completion percentage, from Task-report rows."""
    _require_task_rows(rows)
    totals: dict[str, int] = {}
    done: dict[str, int] = {}
    for r in rows:
        name = r.get("task_type", "")
        totals[name] = totals.get(name, 0) + 1
        if r["status"] == "completed":
            done[name] = done.get(name, 0) + 1
    return {
        name: 100.0 * done.get(name, 0) / count
        for name, count in sorted(totals.items())
    }


def build_completion_chart(
    saved_reports: Mapping[str, Mapping[str, str | Path | TextIO]],
    *,
    title: str = "completion % from saved reports",
) -> GroupedBarChart:
    """The student's bar graph from saved report files.

    ``saved_reports`` maps intensity label → {policy → task-report CSV
    source}, mirroring the files a student collects across runs::

        chart = build_completion_chart({
            "low":  {"FCFS": "low_fcfs_task_report.csv", ...},
            "high": {"FCFS": "high_fcfs_task_report.csv", ...},
        })
    """
    chart = GroupedBarChart(title=title, max_value=100.0, unit="%")
    for intensity, per_policy in saved_reports.items():
        for policy, source in per_policy.items():
            rows = load_report_csv(source)
            chart.set(intensity, policy, completion_percentage(rows))
    return chart
