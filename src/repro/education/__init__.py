"""Education layer: assignments, quizzes, cohorts and surveys (§4–§5)."""

from .assignment import (
    BATCH_POLICIES,
    IMMEDIATE_POLICIES,
    AssignmentConfig,
    AssignmentFigure,
    build_heterogeneous_eet,
    build_homogeneous_eet,
    figure5,
    figure6,
    figure7,
    run_completion_sweep,
)
from .cohort import (
    PAPER_POST_MEAN,
    PAPER_PRE_MEAN,
    CohortModel,
    QuizStudyResult,
    Student,
    mastery_for_target_score,
    run_quiz_study,
)
from .quiz import DEFAULT_METHODS, QuizQuestion, QuizResult, generate_quiz
from .survey import (
    PAPER_COHORT,
    PAPER_METRICS,
    Respondent,
    SurveyMetric,
    SurveyStudy,
    generate_cohort,
)

__all__ = [
    "AssignmentConfig",
    "AssignmentFigure",
    "IMMEDIATE_POLICIES",
    "BATCH_POLICIES",
    "build_homogeneous_eet",
    "build_heterogeneous_eet",
    "run_completion_sweep",
    "figure5",
    "figure6",
    "figure7",
    "QuizQuestion",
    "QuizResult",
    "generate_quiz",
    "DEFAULT_METHODS",
    "Student",
    "CohortModel",
    "QuizStudyResult",
    "run_quiz_study",
    "mastery_for_target_score",
    "PAPER_PRE_MEAN",
    "PAPER_POST_MEAN",
    "SurveyMetric",
    "Respondent",
    "SurveyStudy",
    "PAPER_METRICS",
    "PAPER_COHORT",
    "generate_cohort",
]
