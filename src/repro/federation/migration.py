"""Mid-queue task migration: the periodic rebalance pass of a federation.

The gateway (:mod:`repro.scheduling.federation`) routes each task exactly
once, at arrival. Under bursty load that single decision goes stale: a
flash crowd saturates one cluster's batch queue while a remote cluster
drains, and the queued tasks — already routed — cannot move. The
:class:`Rebalancer` closes that gap: driven by periodic ``TASK_MIGRATION``
ticks on the federation's event heap, it compares cluster pressures, asks a
registered eviction policy (:mod:`repro.scheduling.federation.eviction`)
which queued tasks to move, and ships them through the same
:class:`~repro.net.wan.WanManager` path ordinary offloads use — so
migrations and offloads **contend for the same link channels** and pay the
same per-megabyte energy.

Lifecycle of one migrated task::

    IN_BATCH_QUEUE ──evict──▶ CREATED (in WAN: queued / serving / propagating)
         (source)                    │                        │
                                     │ deadline fires         │ delivered
                                     ▼                        ▼
                                CANCELLED              IN_BATCH_QUEUE
                          (exact link accounting)       (destination)

Conservation: eviction re-homes the task *before* it travels
(``task.cluster`` flips to the destination and the shards' ``routed``
counters move with it), so wherever the deadline fires the task is
recorded exactly once, by exactly one shard — the federation-wide
``recorded == len(workload)`` invariant is untouched. A finished run
always satisfies ``attempted == delivered + cancelled_in_flight``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.errors import SimulationStateError
from ..core.events import Event, EventType
from ..metrics.rollup import MigrationStats, migration_stats, routing_table
from ..scheduling.federation.base import shard_pressure
from ..scheduling.federation.eviction import MigrationContext, create_eviction

if TYPE_CHECKING:  # pragma: no cover
    from ..net.wan import WanTransfer
    from ..tasks.task import Task
    from .shard import ClusterShard
    from .simulator import FederatedSimulator
    from .spec import MigrationSpec

__all__ = ["Rebalancer"]


class Rebalancer:
    """Periodic mid-queue migration across the shards of one federation.

    Owned by :class:`~repro.federation.simulator.FederatedSimulator` when
    its spec carries a :class:`~repro.federation.spec.MigrationSpec`; holds
    the eviction policy instance, the per-pair migration matrix, and the
    conservation/energy counters the result reports.
    """

    def __init__(
        self, federation: "FederatedSimulator", spec: "MigrationSpec"
    ) -> None:
        self.federation = federation
        self.spec = spec
        self.policy = create_eviction(spec.policy, **spec.policy_params)
        self.policy.reset()
        n = len(federation.shards)
        self._matrix = [[0] * n for _ in range(n)]
        self.attempted = 0
        self.delivered = 0
        self.cancelled_in_flight = 0
        #: Task id → payload joules charged for that task's migration hops
        #: (full link cost, added as each migration finishes its crossing).
        self._wan_energy_by_task: dict[int, float] = {}
        self._ticks = 0
        #: Sources currently shedding load (between the watermarks of the
        #: hysteresis trigger); empty while no watermarks are configured.
        self._shedding: set[int] = set()

    # -- the tick loop ------------------------------------------------------------------

    def schedule_first_tick(self) -> None:
        """Arm the rebalance clock (called once, at federation build)."""
        self._push_tick(self.spec.interval)

    def _push_tick(self, when: float) -> None:
        self.federation.events.push(
            Event(when, EventType.TASK_MIGRATION, None)
        )

    def on_tick(self, now: float) -> None:
        """One rebalance pass; re-arms itself while the run has work left.

        The re-arm mirrors the failure process: once every workload task is
        terminal no further tick is scheduled, so the event stream stays
        bounded and the federation terminates. At most one trailing tick
        can fire after the last task resolves.
        """
        self._ticks += 1
        if self.federation.all_tasks_terminal():
            return
        self._rebalance(now)
        self._push_tick(now + self.spec.interval)

    # -- one pass -----------------------------------------------------------------------

    def _rebalance(self, now: float) -> None:
        spec = self.spec
        shards = self.federation.shards
        if len(shards) < 2:
            return
        for source in shards:
            if len(source.batch_queue) < spec.min_queue:
                # A source too shallow to rebalance has, for hysteresis
                # purposes, drained: it must re-cross the high watermark
                # before it sheds again.
                self._shedding.discard(source.index)
                continue
            destination = self._drain_target(source)
            if destination is None:
                continue
            gap = shard_pressure(source) - shard_pressure(destination)
            if not self._should_fire(source.index, gap):
                continue
            candidates = [
                task
                for task in source.batch_queue.snapshot()
                if task.deadline > now
            ]
            if not candidates:
                continue
            ctx = MigrationContext(
                now=now,
                source=source,
                destination=destination,
                candidates=candidates,
                limit=spec.batch_max,
                topology=self.federation.topology,
                wan=self.federation.wan,
            )
            for task in self.policy.select(ctx)[: spec.batch_max]:
                self._migrate(task, source, destination, now)

    def _should_fire(self, source: int, gap: float) -> bool:
        """The rebalance trigger: plain threshold, or watermark hysteresis.

        Without watermarks the pass fires whenever the pressure gap reaches
        ``pressure_gap`` — the original fixed-threshold behaviour, event
        stream untouched. With watermarks the source is a two-state machine:
        it *starts* shedding only when the gap crosses ``high_watermark``
        and keeps shedding until the gap falls to ``low_watermark``. The
        dead band in between never starts a shed, so a source whose
        pressure oscillates inside it cannot thrash tasks back and forth.
        """
        spec = self.spec
        high, low = spec.high_watermark, spec.low_watermark
        if high is None or low is None:
            return gap >= spec.pressure_gap
        if source in self._shedding:
            if gap <= low:
                self._shedding.discard(source)
                return False
            return True
        if gap >= high:
            self._shedding.add(source)
            return True
        return False

    def _drain_target(self, source: "ClusterShard") -> "ClusterShard | None":
        """Least-pressure remote shard (ties → lowest index)."""
        best: "ClusterShard | None" = None
        best_pressure = float("inf")
        for shard in self.federation.shards:
            if shard.index == source.index:
                continue
            pressure = shard_pressure(shard)
            if pressure < best_pressure:
                best, best_pressure = shard, pressure
        return best

    # -- one migration ------------------------------------------------------------------

    def _migrate(
        self,
        task: "Task",
        source: "ClusterShard",
        destination: "ClusterShard",
        now: float,
    ) -> None:
        federation = self.federation
        if not source.batch_queue.remove(task):  # pragma: no cover - defensive
            raise SimulationStateError(
                f"migration selected task {task.id} which is not in "
                f"cluster {source.name}'s batch queue"
            )
        task.evict_for_migration(now)
        task.cluster = destination.index
        # Re-home the outstanding-task accounting with the task, so shard
        # pressure (and the gateway's load signals) see the move instantly.
        source.routed -= 1
        destination.routed += 1
        self.attempted += 1
        self._matrix[source.index][destination.index] += 1
        transfer = federation.wan.submit(
            task,
            source.index,
            destination.index,
            now,
            kind=EventType.TASK_MIGRATION,
        )
        if transfer is None:
            # Zero-delay link: the crossing is instantaneous and already
            # accounted; deliver straight into the destination queue.
            link = federation.topology.link_between(
                source.name, destination.name
            )
            self._record_delivered(
                task, link.transfer_energy(task.task_type.data_in)
            )
            destination._on_arrival(task)
        else:
            federation.track_transfer(transfer)

    # -- delivery / cancellation accounting ---------------------------------------------

    def record_delivered(self, task: "Task", transfer: "WanTransfer") -> None:
        """A migration's WAN delivery event fired at its destination."""
        self._record_delivered(
            task, transfer.channel.link.transfer_energy(transfer.megabytes)
        )

    def _record_delivered(self, task: "Task", wan_energy: float) -> None:
        self.delivered += 1
        if wan_energy:
            self._wan_energy_by_task[task.id] = (
                self._wan_energy_by_task.get(task.id, 0.0) + wan_energy
            )

    def record_cancelled(self, task: "Task") -> None:
        """A migrating task's deadline fired while it was still in the WAN."""
        self.cancelled_in_flight += 1

    # -- reporting ----------------------------------------------------------------------

    @property
    def ticks(self) -> int:
        """Rebalance passes executed (including no-op passes)."""
        return self._ticks

    @property
    def shedding(self) -> frozenset[int]:
        """Shard indices currently in the shedding state (hysteresis only)."""
        return frozenset(self._shedding)

    @property
    def matrix_counts(self) -> list[list[int]]:
        """Live source × destination counters (shared reference, read-only)."""
        return self._matrix

    def matrix(self) -> dict[str, dict[str, int]]:
        """Name-keyed source × destination migration counters."""
        return routing_table(self.federation.spec.names, self._matrix)

    def stats(self, tasks: "list[Task]") -> MigrationStats:
        """The run's migration conservation + energy account."""
        return migration_stats(
            tasks,
            attempted=self.attempted,
            delivered=self.delivered,
            cancelled_in_flight=self.cancelled_in_flight,
            wan_energy_by_task=self._wan_energy_by_task,
        )
