"""The federated simulation kernel: N cluster shards, one heap, one clock.

``FederatedSimulator`` hosts multiple :class:`~repro.federation.shard.ClusterShard`
engines under a single future-event list and simulation clock. Arriving tasks
hit the **gateway layer** first: a registered gateway policy
(:mod:`repro.scheduling.federation`) picks the destination cluster; offloaded
tasks pay the WAN transfer delay of the federation's
:class:`~repro.net.topology.InterClusterTopology` before entering the
destination's batch queue, where the cluster's *local* policy maps them to
machines exactly as in a single-cluster run.

Event flow per task::

    arrival ──▶ gateway policy ──▶ [WAN transfer] ──▶ batch queue ──▶ local
    (origin      (which cluster?)    (offloads only)    (destination    policy
     cluster)                                            shard)         ──▶ machine

Routing uses the ``cluster`` id stamped on every event: shard-scheduled
events (completions, deliveries, failures, repairs) carry their shard index
and go straight back to the owning shard's handlers; federation-level events
(initial arrivals, deadlines) carry ``None`` and are handled here.

When the spec carries a :class:`~repro.federation.spec.MigrationSpec`, a
:class:`~repro.federation.migration.Rebalancer` additionally re-homes tasks
*mid-queue*: periodic ``TASK_MIGRATION`` ticks (``cluster=None``) evict
tasks from saturated shards' batch queues and ship them over the same WAN
channels offloads use; the resulting deliveries are ``TASK_MIGRATION``
events carrying the destination shard id.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Sequence

import numpy as np

from ..core.clock import SimulationClock
from ..core.errors import SchedulingError, SimulationStateError
from ..core.event_queue import EventQueue
from ..core.events import Event, EventType
from ..core.rng import derive_seed, make_rng, spawn
from ..machines.cluster import Cluster
from ..machines.eet import EETMatrix
from ..machines.execution import ExecutionTimeModel
from ..machines.failures import FailureModel
from ..machines.machine import Machine
from ..machines.machine_queue import UNBOUNDED
from ..machines.power import PowerProfile
from ..metrics.collector import SummaryMetrics
from ..metrics.records import RecordsSource
from ..metrics.rollup import (
    MigrationStats,
    global_energy,
    global_summary,
    offload_energy_split,
    routing_table,
)
from ..net.wan import TransferPhase, WanManager, WanTransfer
from ..scheduling.federation.base import GatewayContext, GatewayPolicy
from ..scheduling.federation.registry import create_gateway
from ..scheduling.overhead import SchedulingOverhead
from ..scheduling.registry import create_scheduler
from ..tasks.task import Task, TaskStatus
from ..tasks.workload import Workload
from .migration import Rebalancer
from .result import FederatedSimulationResult
from .shard import ClusterShard
from .spec import FederationSpec

__all__ = ["FederatedSimulator"]

Observer = Callable[["FederatedSimulator", Event], None]

# Module-bound enum members: the routing loop tests several per event, and
# Enum class attribute access costs ~10x a global load on CPython 3.11.
_ARRIVAL = EventType.TASK_ARRIVAL
_COMPLETION = EventType.TASK_COMPLETION
_DEADLINE = EventType.TASK_DEADLINE
_LINK_TRANSFER = EventType.LINK_TRANSFER
_MIGRATION = EventType.TASK_MIGRATION
_CROSS_TRAFFIC = EventType.CROSS_TRAFFIC
_CONTROL = EventType.CONTROL
_CREATED = TaskStatus.CREATED


class FederatedSimulator:
    """Discrete-event simulator for one federated (multi-cluster) run."""

    def __init__(
        self,
        spec: FederationSpec,
        eet: EETMatrix,
        workload: Workload,
        *,
        seed: int | None | np.random.Generator = None,
        drop_on_deadline: bool = True,
        execution_model: ExecutionTimeModel | None = None,
        queue_capacity: float = UNBOUNDED,
        enable_network: bool = False,
        failure_model: FailureModel | None = None,
        scheduling_overhead: SchedulingOverhead | None = None,
        power_profiles: dict[str, PowerProfile] | None = None,
        memory_capacities: dict[str, float] | None = None,
        network: dict[str, tuple[float, float]] | None = None,
        default_scheduler: str = "MECT",
        default_scheduler_params: dict[str, Any] | None = None,
        observers: Sequence[Observer] = (),
    ) -> None:
        workload.validate_against_eet(eet)
        self.spec = spec
        self.workload = workload
        self.drop_on_deadline = drop_on_deadline
        self.topology = spec.topology
        self.observers = list(observers)

        self.clock = SimulationClock()
        self.events = EventQueue()

        # Independent substreams: origin assignment, gateway draws, one per
        # shard — so adding a draw to one component never perturbs another,
        # and sweeping the gateway policy never changes where tasks arrive.
        wan_seed: int | None
        if isinstance(seed, np.random.Generator):
            # Spawn keys are sequential, so asking for one extra child
            # (the WAN cross-traffic root) leaves the first n+2 substreams
            # exactly where pre-cross-traffic builds drew them.
            children = spawn(seed, len(spec.clusters) + 3)
            origins_rng, self._gateway_rng = children[0], children[1]
            shard_rngs = children[2:-1]
            wan_seed = int(children[-1].integers(0, 2**31 - 1))
        else:
            origins_rng = make_rng(derive_seed(seed, "federation", "origins"))
            self._gateway_rng = make_rng(
                derive_seed(seed, "federation", "gateway")
            )
            shard_rngs = [
                make_rng(derive_seed(seed, "federation", "shard", i))
                for i in range(len(spec.clusters))
            ]
            wan_seed = derive_seed(seed, "federation", "crosstraffic")

        self.gateway = self._make_gateway()
        self.gateway.reset()

        self.shards: list[ClusterShard] = []
        for i, cspec in enumerate(spec.clusters):
            cluster = Cluster.build(
                eet,
                cspec.machine_counts,
                power_profiles=power_profiles or {},
                queue_capacity=(
                    queue_capacity
                    if cspec.queue_capacity is None
                    else cspec.queue_capacity
                ),
                memory_capacities=memory_capacities or {},
                network=network or {},
            )
            # Qualify machine names so federation-wide reports stay unique
            # (two shards may both have a "CPU-0").
            for machine in cluster:
                machine.name = f"{cspec.name}:{machine.name}"
            scheduler = (
                create_scheduler(cspec.scheduler, **cspec.scheduler_params)
                if cspec.scheduler is not None
                else create_scheduler(
                    default_scheduler, **(default_scheduler_params or {})
                )
            )
            self.shards.append(
                ClusterShard(
                    index=i,
                    name=cspec.name,
                    cluster=cluster,
                    scheduler=scheduler,
                    federation=self,
                    clock=self.clock,
                    events=self.events,
                    rng=shard_rngs[i],
                    weight=cspec.weight,
                    drop_on_deadline=drop_on_deadline,
                    execution_model=execution_model,
                    queue_capacity=(
                        queue_capacity
                        if cspec.queue_capacity is None
                        else cspec.queue_capacity
                    ),
                    enable_network=enable_network,
                    failure_model=failure_model,
                    scheduling_overhead=scheduling_overhead,
                )
            )

        local_names = {shard.scheduler.name for shard in self.shards}
        self.scheduler_name = (
            local_names.pop() if len(local_names) == 1 else "mixed"
        )

        n = len(self.shards)
        self._routing = [[0] * n for _ in range(n)]
        self._offloaded = 0
        # WAN link channels: contention disciplines, per-link energy, and
        # the cancellation handles for tasks still crossing the WAN.
        self._wan = self._make_wan(wan_seed)
        self._transfers: dict[int, WanTransfer] = {}
        # Mid-queue migration: a periodic rebalance pass sharing the WAN
        # channels above. None when the spec does not ask for it — the
        # event stream is then bit-identical to a migration-free build.
        self._rebalancer = (
            Rebalancer(self, spec.migration)
            if spec.migration is not None
            else None
        )
        self._events_processed = 0
        self._finished = False
        self._result: FederatedSimulationResult | None = None
        self._ctx = GatewayContext(
            now=0.0,
            task=None,  # type: ignore[arg-type]  (set before every decision)
            origin=0,
            shards=self.shards,
            topology=self.topology,
            rng=self._gateway_rng,
            wan=self._wan,
            # Live reference: the gateway sees every migration the moment
            # the rebalancer books it.
            migrations=(
                None
                if self._rebalancer is None
                else self._rebalancer.matrix_counts
            ),
        )
        if self.gateway.wants_feedback:
            # Every terminal task funnels through exactly one shard
            # collector (completions, deadline misses, in-WAN
            # cancellations), so hooking record_terminal there pays the
            # learning gateway for precisely the tasks it routed.
            def _feed_back(task: Task) -> None:
                self.gateway.record_outcome(task, self.clock._now)

            for shard in self.shards:
                shard.collector.on_terminal = _feed_back

        # Origin assignment: one vectorised draw, a pure function of the
        # federation seed — identical across gateway/local-policy sweeps.
        if len(workload) > 0:
            weights = np.asarray(spec.arrival_weights(), dtype=float)
            origins = origins_rng.choice(n, size=len(workload), p=weights / weights.sum())
            initial: list[Event] = []
            inf = float("inf")
            for task, origin in zip(workload, origins):
                task.origin_cluster = int(origin)
                initial.append(
                    Event(task.arrival_time, EventType.TASK_ARRIVAL, task)
                )
                if drop_on_deadline and task.deadline != inf:
                    initial.append(
                        Event(task.deadline, EventType.TASK_DEADLINE, task)
                    )
            self.events.push_many(initial)
            if failure_model is not None:
                for shard in self.shards:
                    shard.start_failure_process()
            if self._rebalancer is not None:
                self._rebalancer.schedule_first_tick()

    # -- construction hooks ---------------------------------------------------------

    def _make_gateway(self) -> GatewayPolicy:
        """Build the gateway policy (hook for the hierarchical engine)."""
        return create_gateway(self.spec.gateway, **self.spec.gateway_params)

    def _make_wan(self, wan_seed: int | None) -> WanManager:
        """Build the WAN manager (hook for the hierarchical engine).

        Overrides may reassign ``self.topology`` before constructing the
        manager; the gateway context is built afterwards, so it picks up
        whatever topology this hook leaves behind.
        """
        return WanManager(
            self.topology, self.events, self.spec.names, seed=wan_seed
        )

    # -- public control surface ----------------------------------------------------

    @property
    def now(self) -> float:
        return self.clock._now

    @property
    def is_finished(self) -> bool:
        return self._finished

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def recorded(self) -> int:
        """Terminal tasks across all shards."""
        return sum(shard.collector.recorded for shard in self.shards)

    @property
    def wan(self) -> WanManager:
        """Live WAN link state (shared by gateway offloads and migrations)."""
        return self._wan

    @property
    def rebalancer(self) -> Rebalancer | None:
        """The mid-queue migration engine, when the spec enables one."""
        return self._rebalancer

    def track_transfer(self, transfer: WanTransfer) -> None:
        """Keep the cancellation handle for a task crossing the WAN."""
        self._transfers[transfer.task.id] = transfer

    def all_tasks_terminal(self) -> bool:
        """True once every workload task reached a terminal state."""
        return self.recorded >= len(self.workload)

    def next_event_time(self) -> float | None:
        """Timestamp of the next pending event (None when drained)."""
        return self.events.next_time()

    def step(self) -> Event | None:
        """Process exactly one event; None when the federation is done."""
        if self._finished:
            return None
        if not self.events:
            self._finish()
            return None
        event = self.events.pop()
        self.clock.advance_to(event.time)
        self._dispatch(event)
        self._events_processed += 1
        if self.observers:
            for observer in self.observers:
                observer(self, event)
        if not self.events:
            self._finish()
        return event

    def run(self, until: float | None = None) -> FederatedSimulationResult:
        """Run to completion (or simulated time *until*) and return results."""
        if until is None:
            if self.observers:
                while not self._finished:
                    self.step()
            else:
                # Same inlined hot loop as the single-cluster engine: pop
                # straight off the heap (lazy-cancellation skip included) and
                # let heap order stand in for the clock's monotonicity check.
                events = self.events
                heap = events._heap
                cancelled = events._cancelled
                clock = self.clock
                dispatch = self._dispatch
                heappop = heapq.heappop
                processed = 0
                while heap:
                    event = heappop(heap)[1]
                    if cancelled and event.seq in cancelled:
                        cancelled.discard(event.seq)
                        continue
                    events._live -= 1
                    clock._now = event.time
                    dispatch(event)
                    processed += 1
                self._events_processed += processed
                if not self._finished:
                    self._finish()
            assert self._result is not None
            return self._result
        while not self._finished:
            next_time = self.events.next_time()
            if next_time is None:
                break
            if next_time > until:
                self.clock.advance_to(until)
                break
            self.step()
        return self._build_result()

    def result(self) -> FederatedSimulationResult:
        """Result of a finished run."""
        if self._result is None:
            raise SimulationStateError(
                "simulation has not finished; call run() first"
            )
        return self._result

    # -- event routing ---------------------------------------------------------------

    def _dispatch(self, event: Event) -> None:
        # Flat federations never stamp tuple cluster paths (single-element
        # paths are always their int form); the hierarchy engine intercepts
        # tuples in its own _dispatch before delegating here.
        cluster_id: int | None = event.cluster  # type: ignore[assignment]
        etype = event.type
        if cluster_id is None:
            # Federation-level event: a task arriving at the gateway, or a
            # deadline firing wherever the task currently is.
            if etype is _ARRIVAL:
                self._on_gateway_arrival(event.payload)
            elif etype is _DEADLINE:
                self._on_deadline(event.payload)
            elif etype is _LINK_TRANSFER:
                # A WAN serialisation milestone: the owning link channel
                # frees the pipe, delivers, and starts whatever is queued.
                WanManager.on_link_event(event, self.clock._now)
            elif etype is _MIGRATION:
                # The rebalance clock: run one mid-queue migration pass.
                if self._rebalancer is not None:
                    self._rebalancer.on_tick(self.clock._now)
            elif etype is _CROSS_TRAFFIC:
                # A WAN link entered its next background-utilisation epoch.
                WanManager.on_cross_traffic(event, self.clock._now)
            elif etype is _CONTROL:  # pragma: no cover - hook
                pass
            else:  # pragma: no cover - defensive
                raise SimulationStateError(
                    f"federation-level event of type {event.type} has no owner"
                )
        elif etype is _COMPLETION:
            # The most common shard-owned event: skip the shard's own
            # dispatch chain and call the handler directly.
            self.shards[cluster_id]._on_completion(event.payload)
        elif etype is _ARRIVAL:
            # A WAN transfer completed: the task reaches its destination.
            transfer = self._transfers.pop(event.payload.id, None)
            if transfer is not None:
                self._wan.on_delivered(transfer, self.clock._now)
                self._wan.release(transfer)
            self.shards[cluster_id]._on_arrival(event.payload)
        elif etype is _MIGRATION:
            # A migrated task survived the WAN: re-enqueue at its new home.
            task = event.payload
            transfer = self._transfers.pop(task.id, None)
            if transfer is None:  # pragma: no cover - defensive
                raise SimulationStateError(
                    f"migration delivery for task {task.id} without a "
                    "tracked WAN transfer"
                )
            self._wan.on_delivered(transfer, self.clock._now)
            assert self._rebalancer is not None
            self._rebalancer.record_delivered(task, transfer)
            self._wan.release(transfer)
            self.shards[cluster_id]._on_arrival(task)
        else:
            self.shards[cluster_id]._dispatch(event)

    # -- the gateway layer -------------------------------------------------------------

    def _on_gateway_arrival(self, task: Task) -> None:
        origin = task.origin_cluster
        if origin is None:  # pragma: no cover - defensive
            raise SimulationStateError(
                f"task {task.id} reached the gateway without an origin cluster"
            )
        ctx = self._ctx
        ctx.now = self.clock._now
        ctx.task = task
        ctx.origin = origin
        destination = self.gateway.choose_cluster(ctx)
        if not 0 <= destination < len(self.shards):
            raise SchedulingError(
                f"{self.gateway.name}: cluster index {destination} out of "
                f"range for {len(self.shards)} clusters"
            )
        task.cluster = destination
        self._routing[origin][destination] += 1
        shard = self.shards[destination]
        shard.routed += 1
        if destination != origin:
            self._offloaded += 1
            transfer = self._wan.submit(
                task, origin, destination, self.clock._now
            )
            if transfer is not None:
                self._transfers[task.id] = transfer
                return
        shard._on_arrival(task)

    def _on_deadline(self, task: Task) -> None:
        if task.status.is_terminal:
            return  # completed exactly at (or before) the deadline
        cluster_id = task.cluster
        if cluster_id is None:  # pragma: no cover - defensive
            raise SimulationStateError(
                f"deadline fired for task {task.id} before any gateway decision"
            )
        shard = self.shards[cluster_id]
        if task.status is _CREATED:
            # Still crossing the WAN: the transfer is abandoned and the task
            # is cancelled (deadline before any mapping decision), accounted
            # to its destination cluster. The link channel reclaims the pipe
            # for queued transfers and charges only the payload fraction
            # that actually crossed. Offloads and migrations share this
            # path; migrations additionally bump the rebalancer's
            # cancelled-in-flight counter so attempted == delivered +
            # cancelled holds at the end of the run.
            transfer = self._transfers.pop(task.id, None)
            if transfer is not None:
                # A transfer cancelled while QUEUED stays lazily referenced
                # by its FIFO channel until _start_next skips it, so only
                # further-along phases may return their slot to the pool.
                in_fifo = transfer.phase is TransferPhase.QUEUED
                self._wan.cancel(transfer, self.now)
                if (
                    transfer.kind is EventType.TASK_MIGRATION
                    and self._rebalancer is not None
                ):
                    self._rebalancer.record_cancelled(task)
                if not in_fifo:
                    self._wan.release(transfer)
            task.cancel(self.now)
            shard.collector.record_terminal(task)
            shard.type_stats.record(task.task_type.name, False)
            return
        shard._on_deadline(task)

    # -- termination -------------------------------------------------------------------

    def _finish(self) -> None:
        if self._finished:
            return
        self._finished = True
        now = self.now
        for shard in self.shards:
            shard.finalize(now)
        self._result = self._build_result()
        expected = len(self.workload)
        if self.drop_on_deadline and self.recorded != expected:
            raise SimulationStateError(
                f"conservation violated: {self.recorded} terminal tasks "
                f"out of {expected} across {len(self.shards)} clusters"
            )

    def _build_result(self) -> FederatedSimulationResult:
        now = self.now
        names = self.spec.names
        per_cluster: dict[str, SummaryMetrics] = {}
        machines: list[Machine] = []
        for shard in self.shards:
            per_cluster[shard.name] = shard.collector.summary(
                shard.cluster, end_time=now
            )
            machines.extend(shard.cluster.machines)
        summary = global_summary(
            [shard.collector for shard in self.shards], machines, end_time=now
        )
        all_tasks: list[Task] = []
        for shard in self.shards:
            all_tasks.extend(shard.collector.tasks())
        if self._rebalancer is not None:
            migrations = self._rebalancer.matrix()
            mig_stats = self._rebalancer.stats(all_tasks)
        else:
            migrations = {}
            mig_stats = MigrationStats()
        return FederatedSimulationResult(
            summary=summary,
            per_cluster=per_cluster,
            routing=routing_table(names, self._routing),
            offloaded=self._offloaded,
            wan_time_total=self._wan.total_time,
            records=RecordsSource(
                [
                    (shard.name, shard.collector, shard.cluster)
                    for shard in self.shards
                ]
            ),
            energy=global_energy(machines),
            end_time=now,
            scheduler_name=self.scheduler_name,
            gateway_name=self.gateway.name,
            events_processed=self._events_processed,
            wan_links=self._wan.usage(now),
            energy_split=offload_energy_split(
                all_tasks, names, self.topology
            ),
            migrations=migrations,
            migration_stats=mig_stats,
        )

    # -- renderer-facing state -----------------------------------------------------------

    def counts(self) -> dict[str, int]:
        """Live outcome counters summed across shards."""
        totals = {"completed": 0, "cancelled": 0, "missed": 0}
        for shard in self.shards:
            for key, value in shard.collector.counts().items():
                totals[key] += value
        return totals

    def remaining_arrivals(self) -> int:
        """Workload tasks whose gateway decision has not happened yet (O(n))."""
        routed = sum(shard.routed for shard in self.shards)
        return len(self.workload) - routed
