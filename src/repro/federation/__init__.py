"""Federated simulation kernel: multi-cluster shards under one event heap.

The single-cluster engine (:mod:`repro.core.simulator`) models one scheduler
fanning out to one machine pool (the paper's Fig. 1 star). This package
federates it: a :class:`FederatedSimulator` hosts N
:class:`~repro.federation.shard.ClusterShard` engines — each with its own
cluster, batch queue, local scheduling policy and metrics collector — under
a single clock and future-event list, with a gateway (offloading) policy
layer (:mod:`repro.scheduling.federation`) routing arriving tasks between
clusters over an :class:`~repro.net.topology.InterClusterTopology` of WAN
links. The canonical heterogeneous-computing scenarios this unlocks —
edge-cloud offloading, geo-distributed sites, hierarchical scheduling —
ship as presets in :mod:`repro.scenarios.federated`.

Mid-queue migration (:mod:`repro.federation.migration`) extends the
gateway's one-shot routing: when a :class:`~repro.federation.spec.MigrationSpec`
is set, a periodic :class:`~repro.federation.migration.Rebalancer` evicts
tasks from saturated shards' batch queues and re-homes them over the same
contended WAN channels offloads use.
"""

from .hierarchy import (
    ClusterPath,
    FederationTree,
    HierarchicalFederatedSimulator,
    HierarchyView,
)
from .migration import Rebalancer
from .result import FederatedSimulationResult
from .shard import ClusterShard
from .simulator import FederatedSimulator
from .spec import ClusterSpec, FederationSpec, MigrationSpec, RegionSpec

__all__ = [
    "ClusterSpec",
    "RegionSpec",
    "FederationSpec",
    "MigrationSpec",
    "ClusterShard",
    "FederatedSimulator",
    "FederatedSimulationResult",
    "Rebalancer",
    "ClusterPath",
    "FederationTree",
    "HierarchyView",
    "HierarchicalFederatedSimulator",
]
