"""Hierarchical federations: path-routed multi-level topologies.

A flat federation (:mod:`repro.federation.simulator`) is a clique: every
cluster pair has its own direct WAN link. Planet-scale deployments are not
cliques — they are trees (region → site → cluster), where two clusters in
different regions talk through both region **uplinks** and a congested
uplink back-pressures every site beneath it. This module is that tree:

* :class:`ClusterPath` — a leaf's position as a ``/``-joined name path
  (``"eu/paris/edge-0"``), the wire form of hierarchical addressing.
* :class:`FederationTree` — the compiled topology: node namespace (leaves
  first, so leaf ids *are* shard indices), child→parent uplink edges as an
  :class:`~repro.net.topology.InterClusterTopology`, and cached
  lowest-common-ancestor routes.
* :class:`HierarchyView` — what a tree-capable gateway policy sees: the
  tree plus live per-leaf in-flight WAN megabytes.
* :class:`HierarchicalFederatedSimulator` — the engine. Offloads hop the
  tree store-and-forward: each hop is one :class:`~repro.net.wan.WanTransfer`
  on the child↔parent uplink channel, relay deliveries carry the remaining
  node path as their :attr:`~repro.core.events.Event.cluster` (a tuple),
  and the *final* hop carries the destination leaf as a plain ``int`` — so
  flat federations, whose every path has one hop, keep byte-identical
  event streams.

Routing address forms, by example (leaf ids 0..n-1, interior ids above)::

    Event.cluster = 3          # final hop: deliver to shard 3 (flat form)
    Event.cluster = (19, 7, 3) # relay: now at node 19, still 7 → 3 to go

Refusals are explicit: gateways that do not understand trees
(``supports_hierarchy`` is false) are rejected at construction — a flat
policy would price every leaf pair over a direct link the tree does not
have — and :class:`~repro.federation.parallel.ParallelFederatedSimulator`
rejects hierarchical specs (shared uplink channels couple all shards, so
the conservative per-pair lookahead windows no longer bound cross-shard
effects).
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from ..core.errors import (
    ConfigurationError,
    SimulationStateError,
)
from ..core.events import Event, EventType
from ..metrics.rollup import TreeRollup, offload_energy_split, routing_table
from ..net.topology import InterClusterTopology, Link
from ..net.wan import WanManager
from ..tasks.task import TaskStatus
from .result import FederatedSimulationResult
from .simulator import FederatedSimulator
from .spec import ClusterSpec, FederationSpec, RegionSpec

if TYPE_CHECKING:  # pragma: no cover
    from ..scheduling.federation.base import GatewayPolicy
    from ..tasks.task import Task

__all__ = [
    "ClusterPath",
    "FederationTree",
    "HierarchyView",
    "HierarchicalFederatedSimulator",
]

_ARRIVAL = EventType.TASK_ARRIVAL
_CREATED = TaskStatus.CREATED

#: Name of the implicit federation root node (reserved in specs).
ROOT_NAME = "*"


class ClusterPath(tuple[str, ...]):
    """A node's position in the federation tree, root-most segment first.

    An immutable tuple of node names; the wire form joins the segments
    with ``/`` (which is why node names may not contain it). The root's
    path is written ``*`` on the wire but is *not* a ClusterPath — paths
    address real nodes, so they are non-empty by construction.
    """

    __slots__ = ()

    def __new__(cls, segments: Iterable[str]) -> "ClusterPath":
        path = super().__new__(cls, segments)
        if not path:
            raise ConfigurationError("a cluster path needs at least one segment")
        for segment in path:
            if not segment or "/" in segment:
                raise ConfigurationError(
                    f"invalid cluster-path segment {segment!r} in "
                    f"{'/'.join(path)!r}"
                )
        return path

    @property
    def wire(self) -> str:
        """The ``/``-joined serialised form."""
        return "/".join(self)

    @classmethod
    def from_wire(cls, wire: str) -> "ClusterPath":
        """Inverse of :attr:`wire`."""
        return cls(wire.split("/"))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ClusterPath({self.wire!r})"


class FederationTree:
    """The compiled topology of one hierarchical federation.

    Node namespace: leaves occupy indices ``0..n_leaves-1`` in pre-order —
    identical to shard indices, which is what lets the final hop of a route
    reuse the flat ``int`` event address — the implicit root is
    ``n_leaves``, and further interior nodes follow in discovery
    (pre-order) order. Edges are child→parent uplinks only; the hop
    topology is symmetric, so both directions of an edge share one
    physical channel, exactly like a real uplink port.
    """

    def __init__(self, spec: FederationSpec) -> None:
        if spec.children is None:
            raise ConfigurationError(
                "FederationTree needs a hierarchical FederationSpec "
                "(children is None)"
            )
        n_leaves = len(spec.clusters)
        # Leaf slots are pre-allocated so leaf ids match shard indices;
        # interior nodes append behind the root as the walk discovers them.
        names: list[str] = [""] * n_leaves + [ROOT_NAME]
        paths: list[tuple[str, ...]] = [()] * n_leaves + [()]
        parent: list[int] = [-1] * (n_leaves + 1)
        uplink: list[Link | None] = [None] * (n_leaves + 1)
        children: list[list[int]] = [[] for _ in range(n_leaves + 1)]
        root = n_leaves
        leaf_cursor = 0

        def visit(
            node: "RegionSpec | ClusterSpec", parent_idx: int
        ) -> None:
            nonlocal leaf_cursor
            path = paths[parent_idx] + (node.name,)
            if isinstance(node, ClusterSpec):
                idx = leaf_cursor
                leaf_cursor += 1
                names[idx] = node.name
                paths[idx] = path
            else:
                idx = len(names)
                names.append(node.name)
                paths.append(path)
                parent.append(-1)
                uplink.append(None)
                children.append([])
            parent[idx] = parent_idx
            uplink[idx] = node.uplink
            children[parent_idx].append(idx)
            if isinstance(node, RegionSpec):
                for child in node.children:
                    visit(child, idx)

        for top in spec.children:
            visit(top, root)
        assert leaf_cursor == n_leaves

        self.n_leaves = n_leaves
        self.root = root
        self.node_names: list[str] = names
        self.parent: list[int] = parent
        self.children: list[tuple[int, ...]] = [tuple(c) for c in children]
        self.leaf_paths: list[ClusterPath] = [
            ClusterPath(paths[i]) for i in range(n_leaves)
        ]
        self._paths = paths
        # Child→parent uplink edges, one per non-root node. Symmetric: both
        # directions share the physical port. The *default* link of the hop
        # topology is inert on purpose — every real edge is explicit, so a
        # submit between non-adjacent nodes (a routing bug) would cross a
        # zero link instead of silently inventing a direct WAN path, and
        # the WAN manager's energy-bearing-default channel materialisation
        # cannot fabricate leaf-to-leaf channels that do not exist.
        links: dict[tuple[str, str], Link] = {}
        default = spec.topology.default
        for idx in range(len(names)):
            up = parent[idx]
            if up < 0:
                continue
            edge = uplink[idx] if uplink[idx] is not None else default
            assert edge is not None
            links[(names[idx], names[up])] = edge
        self.hop_topology = InterClusterTopology(
            links=links, default=Link(), symmetric=True
        )
        # Leaf ids under each node, in leaf order (pre-order ⇒ sorted).
        leaves_under: list[tuple[int, ...]] = [()] * len(names)

        def collect(idx: int) -> tuple[int, ...]:
            if idx < n_leaves:
                leaves_under[idx] = (idx,)
            else:
                acc: list[int] = []
                for child in self.children[idx]:
                    acc.extend(collect(child))
                leaves_under[idx] = tuple(acc)
            return leaves_under[idx]

        collect(root)
        self.leaves_under: list[tuple[int, ...]] = leaves_under
        self._routes: dict[tuple[int, int], tuple[int, ...]] = {}

    @property
    def n_nodes(self) -> int:
        """Total node count: leaves + interior nodes + the root."""
        return len(self.node_names)

    def is_leaf(self, node: int) -> bool:
        """True for shard-backed nodes (ids below ``n_leaves``)."""
        return node < self.n_leaves

    def depth(self, node: int) -> int:
        """Levels below the root (the root itself is depth 0)."""
        return len(self._paths[node])

    def path_of(self, node: int) -> tuple[str, ...]:
        """Name path of any node (empty for the root)."""
        return self._paths[node]

    def route(self, origin: int, destination: int) -> tuple[int, ...]:
        """Node-id path origin → LCA → destination, endpoints included.

        Cached — a federation routes the same leaf pairs millions of
        times. The route never leaves the LCA's subtree: it climbs
        origin's parent chain and descends destination's, touching no
        sibling subtrees.
        """
        key = (origin, destination)
        route = self._routes.get(key)
        if route is None:
            chain = []
            idx = origin
            while idx != -1:
                chain.append(idx)
                idx = self.parent[idx]
            position = {node: i for i, node in enumerate(chain)}
            down: list[int] = []
            idx = destination
            while idx not in position:
                down.append(idx)
                idx = self.parent[idx]
            route = tuple(chain[: position[idx] + 1] + down[::-1])
            self._routes[key] = route
        return route

    def edge_link(self, a: int, b: int) -> Link:
        """The physical uplink joining two *adjacent* nodes."""
        return self.hop_topology.link_between(
            self.node_names[a], self.node_names[b]
        )

    def path_transfer_energy(
        self, origin: int, destination: int, megabytes: float
    ) -> float:
        """J/MB payload cost summed over every uplink hop of the route."""
        if origin == destination:
            return 0.0
        route = self.route(origin, destination)
        return sum(
            self.edge_link(a, b).transfer_energy(megabytes)
            for a, b in zip(route, route[1:])
        )


@dataclasses.dataclass
class HierarchyView:
    """Live tree state a tree-capable gateway policy may consult.

    ``inflight_mb`` is the engine's per-leaf in-flight WAN payload
    (megabytes routed toward that leaf and not yet delivered or
    cancelled) — a live reference, updated as transfers start and end.
    """

    tree: FederationTree
    inflight_mb: Sequence[float]


class HierarchicalFederatedSimulator(FederatedSimulator):
    """Federated engine whose WAN is a tree of shared uplinks.

    Subclasses the flat engine and overrides exactly the routing surface:
    gateway arrivals walk the tree hop by hop (each hop a WAN transfer on
    the child↔parent channel), relay deliveries re-submit the next hop,
    and per-leaf attempted/delivered/cancelled counters feed the
    :class:`~repro.metrics.rollup.TreeRollup` attached to the result.
    """

    def __init__(
        self,
        spec: FederationSpec,
        eet: Any,
        workload: Any,
        **kwargs: Any,
    ) -> None:
        if spec.children is None:
            raise ConfigurationError(
                "HierarchicalFederatedSimulator needs a hierarchical "
                "FederationSpec (children set); flat federations run on "
                "FederatedSimulator"
            )
        self._tree = FederationTree(spec)
        n = len(spec.clusters)
        # Per-leaf WAN conservation counters: attempted == delivered +
        # cancelled_in_flight at every node once the run drains (checked by
        # the property suite at every interior node via the rollup).
        self._inflight_mb: list[float] = [0.0] * n
        self._wan_attempted: list[int] = [0] * n
        self._wan_delivered: list[int] = [0] * n
        self._wan_cancelled: list[int] = [0] * n
        self._hier_view = HierarchyView(
            tree=self._tree, inflight_mb=self._inflight_mb
        )
        super().__init__(spec, eet, workload, **kwargs)
        self._ctx.hierarchy = self._hier_view

    # -- construction hooks ---------------------------------------------------------

    def _make_gateway(self) -> "GatewayPolicy":
        gateway = super()._make_gateway()
        if not gateway.supports_hierarchy:
            raise ConfigurationError(
                f"gateway {gateway.name!r} does not support hierarchical "
                "federations: it compares clusters over direct links the "
                "tree does not have. Use a tree-capable policy "
                "(e.g. TREE_PRESSURE) or flatten the federation."
            )
        return gateway

    def _make_wan(self, wan_seed: int | None) -> WanManager:
        # The engine's working topology is the tree's hop topology (uplink
        # edges over the full node namespace), not the spec's: WAN routes,
        # gateway context and energy accounting all see tree edges.
        self.topology = self._tree.hop_topology
        return WanManager(
            self.topology,
            self.events,
            list(self._tree.node_names),
            seed=wan_seed,
        )

    @property
    def tree(self) -> FederationTree:
        """The compiled federation tree."""
        return self._tree

    # -- event routing ----------------------------------------------------------------

    def _dispatch(self, event: Event) -> None:
        cluster_id = event.cluster
        if type(cluster_id) is tuple:
            # A relay hop landed on an interior node; the tuple is the
            # remaining node path (current node first).
            self._on_relay(event.payload, cluster_id)
            return
        if cluster_id is not None and event.type is _ARRIVAL:
            # Final hop: the offloaded task reached its destination leaf.
            task = event.payload
            transfer = self._transfers.pop(task.id, None)
            if transfer is not None:
                self._wan.on_delivered(transfer, self.clock._now)
                self._wan.release(transfer)
            assert isinstance(cluster_id, int)
            self._inflight_mb[cluster_id] -= task.task_type.data_in
            self._wan_delivered[cluster_id] += 1
            self.shards[cluster_id]._on_arrival(task)
            return
        super()._dispatch(event)

    def _on_relay(self, task: "Task", path: tuple[int, ...]) -> None:
        """A store-and-forward hop finished; launch the next one."""
        transfer = self._transfers.pop(task.id, None)
        if transfer is None:  # pragma: no cover - defensive
            raise SimulationStateError(
                f"relay delivery for task {task.id} without a tracked "
                "WAN transfer"
            )
        self._wan.on_delivered(transfer, self.clock._now)
        self._wan.release(transfer)
        self._forward(task, path)

    def _forward(self, task: "Task", route: tuple[int, ...]) -> None:
        """Ship a task along ``route`` (``route[0]`` = node it is at now).

        Each hop is one WAN transfer on the child↔parent uplink channel.
        Intermediate hops stamp the remaining node path on their delivery
        event; the final hop stamps the destination leaf id as a plain
        ``int``, the flat wire form. Zero-delay hops return no transfer
        handle and are crossed immediately within this call.
        """
        now = self.clock._now
        last = len(route) - 1
        i = 1
        while True:
            src, dst = route[i - 1], route[i]
            tag: int | tuple[int, ...] = (
                dst if i == last else tuple(route[i:])
            )
            transfer = self._wan.submit(task, src, dst, now, tag=tag)
            if transfer is not None:
                self._transfers[task.id] = transfer
                return
            if i == last:
                # The whole remaining path crossed instantly.
                self._inflight_mb[dst] -= task.task_type.data_in
                self._wan_delivered[dst] += 1
                self.shards[dst]._on_arrival(task)
                return
            i += 1

    # -- the gateway layer -------------------------------------------------------------

    def _on_gateway_arrival(self, task: "Task") -> None:
        origin = task.origin_cluster
        if origin is None:  # pragma: no cover - defensive
            raise SimulationStateError(
                f"task {task.id} reached the gateway without an origin cluster"
            )
        ctx = self._ctx
        ctx.now = self.clock._now
        ctx.task = task
        ctx.origin = origin
        destination = self.gateway.choose_cluster(ctx)
        if not 0 <= destination < len(self.shards):
            raise SimulationStateError(
                f"{self.gateway.name}: cluster index {destination} out of "
                f"range for {len(self.shards)} leaf clusters"
            )
        task.cluster = destination
        self._routing[origin][destination] += 1
        shard = self.shards[destination]
        shard.routed += 1
        if destination == origin:
            shard._on_arrival(task)
            return
        self._offloaded += 1
        self._wan_attempted[destination] += 1
        self._inflight_mb[destination] += task.task_type.data_in
        self._forward(task, self._tree.route(origin, destination))

    def _on_deadline(self, task: "Task") -> None:
        if task.status is _CREATED and task.id in self._transfers:
            # Still hopping the tree: the WAN cancellation itself (channel
            # bookkeeping, terminal recording) is the flat path's job; only
            # the per-leaf conservation counters are ours.
            leaf = task.cluster
            assert isinstance(leaf, int)
            self._inflight_mb[leaf] -= task.task_type.data_in
            self._wan_cancelled[leaf] += 1
        super()._on_deadline(task)

    # -- results -----------------------------------------------------------------------

    def _leaf_stats(self, index: int) -> dict[str, float]:
        """The per-leaf numbers the tree rollup aggregates."""
        shard = self.shards[index]
        counts = shard.collector.counts()
        return {
            "routed": float(shard.routed),
            "completed": float(counts["completed"]),
            "missed": float(counts["missed"]),
            "cancelled": float(counts["cancelled"]),
            "wan_attempted": float(self._wan_attempted[index]),
            "wan_delivered": float(self._wan_delivered[index]),
            "wan_cancelled_in_flight": float(self._wan_cancelled[index]),
            "machines": float(len(shard.cluster.machines)),
        }

    def tree_rollup(self) -> TreeRollup:
        """Current per-level rollup (callable mid-run or at the end)."""
        return TreeRollup.from_leaves(
            self._tree.leaf_paths,
            [self._leaf_stats(i) for i in range(len(self.shards))],
        )

    def _build_result(self) -> FederatedSimulationResult:
        base = super()._build_result()
        wires = [p.wire for p in self._tree.leaf_paths]
        all_tasks: list["Task"] = []
        for shard in self.shards:
            all_tasks.extend(shard.collector.tasks())
        return dataclasses.replace(
            base,
            # Routing keys become full leaf paths: globally unambiguous,
            # and they make the level structure visible in reports.
            routing=routing_table(wires, self._routing),
            # The energy split prices each offload over its *tree path* —
            # every uplink hop pays its own J/MB — instead of a direct
            # link the topology does not have.
            energy_split=offload_energy_split(
                all_tasks,
                self.spec.names,
                self.topology,
                energy_fn=self._tree.path_transfer_energy,
            ),
            tree=self.tree_rollup(),
        )
