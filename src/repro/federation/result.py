"""Results of a federated simulation: per-cluster, global, and offload views.

Shape-compatible with :class:`repro.core.simulator.SimulationResult` where it
matters (``summary``, ``reports``, ``events_processed``, ``end_time``,
``scheduler_name``, ``completion_rate``), so campaign runners, the CLI and
the benchmark harness consume federated runs unchanged — plus the
federation-only views: per-cluster summaries, the gateway routing matrix,
and WAN/offload accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Any, Mapping

from ..metrics.collector import SummaryMetrics
from ..metrics.energy import EnergyBreakdown
from ..metrics.records import RecordsSource
from ..metrics.reports import ReportBundle
from ..metrics.rollup import MigrationStats, OffloadEnergySplit, TreeRollup
from ..net.wan import LinkUsage

__all__ = ["FederatedSimulationResult"]


@dataclass(frozen=True)
class FederatedSimulationResult:
    """Everything a finished federated run produced.

    ``wan_links`` is the per-physical-link traffic + energy account
    (:class:`~repro.net.wan.LinkUsage`, keyed by link label such as
    ``"edge<->cloud"``); ``energy_split`` is the edge-vs-cloud
    energy-per-completed-task trade-off
    (:class:`~repro.metrics.rollup.OffloadEnergySplit`). Machine energy
    (``summary.total_energy``, ``energy``) and WAN energy
    (``wan_energy_total``) are disjoint accounts;
    ``total_energy_with_wan`` is their sum.

    ``migrations`` is the mid-queue migration matrix (source × destination
    eviction counters, empty when migration is off) and
    ``migration_stats`` its conservation + energy account
    (:class:`~repro.metrics.rollup.MigrationStats`): every evicted task is
    either delivered or cancelled in flight, and completed migrated tasks
    carry an execution + migration-WAN energy split.
    """

    summary: SummaryMetrics
    per_cluster: dict[str, SummaryMetrics]
    routing: dict[str, dict[str, int]]
    offloaded: int
    wan_time_total: float
    records: RecordsSource = field(repr=False, compare=False)
    energy: EnergyBreakdown
    end_time: float
    scheduler_name: str
    gateway_name: str
    events_processed: int
    wan_links: dict[str, LinkUsage] = field(default_factory=dict)
    energy_split: OffloadEnergySplit = field(
        default_factory=lambda: OffloadEnergySplit(0, 0, 0.0, 0.0, 0.0)
    )
    migrations: dict[str, dict[str, int]] = field(default_factory=dict)
    migration_stats: MigrationStats = field(default_factory=MigrationStats)
    #: Per-level metric rollup of a *hierarchical* run
    #: (:class:`~repro.metrics.rollup.TreeRollup`); ``None`` on flat
    #: federations, whose text/report output stays byte-identical.
    tree: TreeRollup | None = field(default=None, compare=False)

    @cached_property
    def task_records(self) -> list[dict[str, Any]]:
        """Per-task report rows across all clusters (lazy, cached)."""
        return self.records.task_rows()

    @cached_property
    def machine_records(self) -> list[dict[str, Any]]:
        """Per-machine report rows across all clusters (lazy, cached)."""
        return self.records.machine_rows()

    @property
    def reports(self) -> ReportBundle:
        """The four E2C reports over the whole federation."""
        return ReportBundle(
            self.task_records, self.machine_records, self.summary.as_dict()
        )

    @property
    def completion_rate(self) -> float:
        return self.summary.completion_rate

    @property
    def offload_rate(self) -> float:
        """Fraction of routed tasks sent to a non-origin cluster."""
        total = self.summary.total_tasks
        return self.offloaded / total if total else 0.0

    @property
    def migrated(self) -> int:
        """Mid-queue migrations attempted (evictions shipped into the WAN)."""
        return self.migration_stats.attempted

    @property
    def migration_rate(self) -> float:
        """Migrations attempted per workload task (>1 moves can repeat)."""
        total = self.summary.total_tasks
        return self.migrated / total if total else 0.0

    # -- WAN energy views ---------------------------------------------------------

    @property
    def wan_energy_total(self) -> float:
        """Joules attributable to the WAN links (transfer + active + idle)."""
        return sum(usage.total_energy for usage in self.wan_links.values())

    @property
    def total_energy_with_wan(self) -> float:
        """Machine energy plus WAN link energy — the federation's bill."""
        return self.summary.total_energy + self.wan_energy_total

    @property
    def energy_per_completed_task(self) -> float:
        """Total (machine + WAN) joules per completed task."""
        completed = self.summary.completed
        return self.total_energy_with_wan / completed if completed else 0.0

    # -- routing views -----------------------------------------------------------

    def origins_by_cluster(self) -> dict[str, int]:
        """Tasks that *arrived* at each cluster (routing-matrix row sums)."""
        return {src: sum(row.values()) for src, row in self.routing.items()}

    def arrivals_by_cluster(self) -> dict[str, int]:
        """Tasks *routed to* each cluster (routing-matrix column sums)."""
        names = list(self.routing)
        return {
            dst: sum(self.routing[src][dst] for src in names) for dst in names
        }

    # -- rendering ----------------------------------------------------------------

    def to_text(self) -> str:
        """Per-cluster + global summaries, offload matrix, WAN links, energy."""
        lines = [
            "== Federation Summary ==",
            f"gateway: {self.gateway_name}    "
            f"local policy: {self.scheduler_name}    "
            f"clusters: {len(self.per_cluster)}",
            "",
            _cluster_table(self.per_cluster, self.summary),
            "",
            _routing_table_text(self.routing),
            f"offloaded: {self.offloaded}/{self.summary.total_tasks} tasks "
            f"({self.offload_rate:.1%}), total WAN transfer time "
            f"{self.wan_time_total:.2f} s",
        ]
        stats = self.migration_stats
        if stats.attempted:
            lines += [
                "",
                _routing_table_text(self.migrations, corner="migrated > dst"),
                f"migrated: {stats.attempted} evictions "
                f"({stats.delivered} delivered, "
                f"{stats.cancelled_in_flight} cancelled in flight); "
                f"{stats.completed} completed after migrating "
                f"at {stats.energy_per_migrated_task:.2f} J/task "
                f"(incl. {stats.migration_wan_energy:.1f} J migration WAN)",
            ]
        if self.wan_links:
            lines += ["", _wan_table(self.wan_links, self.end_time)]
        split = self.energy_split
        if split.local_completed or split.offloaded_completed:
            lines += [
                "",
                "energy per completed task (machine busy J, + WAN payload J "
                "for offloads):",
                f"  local     {split.local_completed:>6} tasks  "
                f"{split.energy_per_local_task:>10.2f} J/task",
                f"  offloaded {split.offloaded_completed:>6} tasks  "
                f"{split.energy_per_offloaded_task:>10.2f} J/task  "
                f"(incl. {split.wan_transfer_energy:.1f} J WAN transfer)",
            ]
        return "\n".join(lines)


def _cluster_table(
    per_cluster: Mapping[str, SummaryMetrics], total: SummaryMetrics
) -> str:
    header = (
        f"{'cluster':<14} {'tasks':>7} {'completed':>9} {'rate':>7} "
        f"{'on-time':>8} {'makespan':>9} {'energy J':>11} {'util':>6}"
    )
    rows = [header, "-" * len(header)]
    for name, summary in per_cluster.items():
        rows.append(_summary_row(name, summary))
    rows.append("-" * len(header))
    rows.append(_summary_row("GLOBAL", total))
    return "\n".join(rows)


def _summary_row(label: str, s: SummaryMetrics) -> str:
    return (
        f"{label:<14} {s.total_tasks:>7} {s.completed:>9} "
        f"{s.completion_rate:>7.1%} {s.on_time_rate:>8.1%} "
        f"{s.makespan:>9.1f} {s.total_energy:>11.1f} "
        f"{s.mean_utilization:>6.1%}"
    )


def _wan_table(wan_links: Mapping[str, LinkUsage], end_time: float) -> str:
    header = (
        f"{'WAN link':<18} {'xfers':>6} {'lost':>5} {'MB':>9} "
        f"{'busy s':>8} {'util':>6} {'xfer J':>9} {'link J':>9}"
    )
    rows = [header, "-" * len(header)]
    for label, usage in wan_links.items():
        rows.append(
            f"{label:<18} {usage.delivered:>6} {usage.abandoned:>5} "
            f"{usage.mb_delivered:>9.1f} {usage.busy_time:>8.2f} "
            f"{usage.utilization(end_time):>6.1%} "
            f"{usage.transfer_energy:>9.1f} {usage.total_energy:>9.1f}"
        )
    return "\n".join(rows)


def _routing_table_text(
    routing: Mapping[str, Mapping[str, int]], corner: str = "origin > dst"
) -> str:
    names = list(routing)
    width = max([len(n) for n in names] + [7])
    header = (
        f"{corner:<{width + 2}} " + " ".join(f"{n:>{width}}" for n in names)
    )
    lines = [header]
    for src in names:
        lines.append(
            f"{src:<{width + 2}} "
            + " ".join(f"{routing[src][dst]:>{width}}" for dst in names)
        )
    return "\n".join(lines)
