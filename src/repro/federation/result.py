"""Results of a federated simulation: per-cluster, global, and offload views.

Shape-compatible with :class:`repro.core.simulator.SimulationResult` where it
matters (``summary``, ``reports``, ``events_processed``, ``end_time``,
``scheduler_name``, ``completion_rate``), so campaign runners, the CLI and
the benchmark harness consume federated runs unchanged — plus the
federation-only views: per-cluster summaries, the gateway routing matrix,
and WAN/offload accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from ..metrics.collector import SummaryMetrics
from ..metrics.energy import EnergyBreakdown
from ..metrics.reports import ReportBundle

__all__ = ["FederatedSimulationResult"]


@dataclass(frozen=True)
class FederatedSimulationResult:
    """Everything a finished federated run produced."""

    summary: SummaryMetrics
    per_cluster: dict[str, SummaryMetrics]
    routing: dict[str, dict[str, int]]
    offloaded: int
    wan_time_total: float
    task_records: list[dict[str, Any]]
    machine_records: list[dict[str, Any]]
    energy: EnergyBreakdown
    end_time: float
    scheduler_name: str
    gateway_name: str
    events_processed: int

    @property
    def reports(self) -> ReportBundle:
        """The four E2C reports over the whole federation."""
        return ReportBundle(
            self.task_records, self.machine_records, self.summary.as_dict()
        )

    @property
    def completion_rate(self) -> float:
        return self.summary.completion_rate

    @property
    def offload_rate(self) -> float:
        """Fraction of routed tasks sent to a non-origin cluster."""
        total = self.summary.total_tasks
        return self.offloaded / total if total else 0.0

    # -- routing views -----------------------------------------------------------

    def origins_by_cluster(self) -> dict[str, int]:
        """Tasks that *arrived* at each cluster (routing-matrix row sums)."""
        return {src: sum(row.values()) for src, row in self.routing.items()}

    def arrivals_by_cluster(self) -> dict[str, int]:
        """Tasks *routed to* each cluster (routing-matrix column sums)."""
        names = list(self.routing)
        return {
            dst: sum(self.routing[src][dst] for src in names) for dst in names
        }

    # -- rendering ----------------------------------------------------------------

    def to_text(self) -> str:
        """Per-cluster + global summaries and the offload matrix."""
        lines = [
            "== Federation Summary ==",
            f"gateway: {self.gateway_name}    "
            f"local policy: {self.scheduler_name}    "
            f"clusters: {len(self.per_cluster)}",
            "",
            _cluster_table(self.per_cluster, self.summary),
            "",
            _routing_table_text(self.routing),
            f"offloaded: {self.offloaded}/{self.summary.total_tasks} tasks "
            f"({self.offload_rate:.1%}), total WAN transfer time "
            f"{self.wan_time_total:.2f} s",
        ]
        return "\n".join(lines)


def _cluster_table(
    per_cluster: Mapping[str, SummaryMetrics], total: SummaryMetrics
) -> str:
    header = (
        f"{'cluster':<14} {'tasks':>7} {'completed':>9} {'rate':>7} "
        f"{'on-time':>8} {'makespan':>9} {'energy J':>11} {'util':>6}"
    )
    rows = [header, "-" * len(header)]
    for name, summary in per_cluster.items():
        rows.append(_summary_row(name, summary))
    rows.append("-" * len(header))
    rows.append(_summary_row("GLOBAL", total))
    return "\n".join(rows)


def _summary_row(label: str, s: SummaryMetrics) -> str:
    return (
        f"{label:<14} {s.total_tasks:>7} {s.completed:>9} "
        f"{s.completion_rate:>7.1%} {s.on_time_rate:>8.1%} "
        f"{s.makespan:>9.1f} {s.total_energy:>11.1f} "
        f"{s.mean_utilization:>6.1%}"
    )


def _routing_table_text(routing: Mapping[str, Mapping[str, int]]) -> str:
    names = list(routing)
    width = max([len(n) for n in names] + [7])
    corner = "origin > dst"
    header = (
        f"{corner:<{width + 2}} " + " ".join(f"{n:>{width}}" for n in names)
    )
    lines = [header]
    for src in names:
        lines.append(
            f"{src:<{width + 2}} "
            + " ".join(f"{routing[src][dst]:>{width}}" for dst in names)
        )
    return "\n".join(lines)
