"""Declarative description of a federated (multi-cluster) deployment.

A :class:`FederationSpec` partitions a scenario's machine population into
named cluster shards, wires them with an inter-cluster WAN topology, and
names the gateway (offloading) policy that routes arriving tasks between
them. It plugs into :class:`repro.core.config.Scenario` (its ``federation``
field) and round-trips through JSON like every other scenario ingredient, so
a federated experiment stays a reproducible artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..core.errors import ConfigurationError
from ..net.topology import InterClusterTopology, Link

__all__ = ["ClusterSpec", "MigrationSpec", "RegionSpec", "FederationSpec"]


@dataclass
class MigrationSpec:
    """Mid-queue cross-cluster migration: when and what to rebalance.

    When set on a :class:`FederationSpec`, the federated simulator runs a
    periodic rebalance pass (every ``interval`` simulated seconds): for each
    cluster whose batch queue holds at least ``min_queue`` tasks and whose
    pressure exceeds the least-loaded remote cluster's by at least
    ``pressure_gap``, up to ``batch_max`` tasks are evicted (chosen by the
    registered eviction ``policy``) and shipped over the WAN — contending
    with ordinary offloads for the same link channels and paying the same
    per-megabyte energy.

    Attributes
    ----------
    policy / policy_params:
        Registered eviction policy (see
        :mod:`repro.scheduling.federation.eviction`): ``LONGEST_WAIT``,
        ``DEADLINE_SLACK``, ``EET_GAIN``, or your own.
    interval:
        Simulated seconds between rebalance passes (> 0).
    pressure_gap:
        Minimum source-minus-destination pressure difference (outstanding
        tasks per live machine) before any eviction happens; the damping
        knob between "never migrate" (large) and thrashing (zero).
    batch_max:
        Maximum tasks evicted per source cluster per pass.
    min_queue:
        Sources with fewer batch-queued tasks than this are left alone.
    high_watermark / low_watermark:
        Optional hysteresis on the trigger (set both or neither). A source
        *starts* shedding only once its pressure gap crosses
        ``high_watermark`` and keeps shedding until the gap falls to
        ``low_watermark``; the dead band in between never starts a shed.
        Replaces the single ``pressure_gap`` threshold (which is ignored
        while watermarks are set); unset, the trigger is the original
        fixed threshold and the event stream is bit-identical to pre-
        hysteresis builds.
    """

    policy: str = "LONGEST_WAIT"
    policy_params: dict[str, Any] = field(default_factory=dict)
    interval: float = 20.0
    pressure_gap: float = 1.0
    batch_max: int = 4
    min_queue: int = 2
    high_watermark: float | None = None
    low_watermark: float | None = None

    def __post_init__(self) -> None:
        if not self.policy:
            raise ConfigurationError("migration policy must be non-empty")
        if not self.interval > 0:
            raise ConfigurationError(
                f"migration interval must be > 0, got {self.interval}"
            )
        if self.pressure_gap < 0:
            raise ConfigurationError(
                f"pressure_gap must be >= 0, got {self.pressure_gap}"
            )
        if self.batch_max < 1:
            raise ConfigurationError(
                f"batch_max must be >= 1, got {self.batch_max}"
            )
        if self.min_queue < 1:
            raise ConfigurationError(
                f"min_queue must be >= 1, got {self.min_queue}"
            )
        if (self.high_watermark is None) != (self.low_watermark is None):
            raise ConfigurationError(
                "high_watermark and low_watermark must be set together"
            )
        if self.high_watermark is not None and self.low_watermark is not None:
            if self.low_watermark < 0:
                raise ConfigurationError(
                    f"low_watermark must be >= 0, got {self.low_watermark}"
                )
            if self.high_watermark < self.low_watermark:
                raise ConfigurationError(
                    f"high_watermark ({self.high_watermark}) must be >= "
                    f"low_watermark ({self.low_watermark})"
                )

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (omits empty policy params)."""
        out: dict[str, Any] = {
            "policy": self.policy,
            "interval": self.interval,
            "pressure_gap": self.pressure_gap,
            "batch_max": self.batch_max,
            "min_queue": self.min_queue,
        }
        if self.policy_params:
            out["policy_params"] = dict(self.policy_params)
        if self.high_watermark is not None:
            out["high_watermark"] = self.high_watermark
            out["low_watermark"] = self.low_watermark
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MigrationSpec":
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"migration spec must be a JSON object, got "
                f"{type(data).__name__}"
            )
        unknown = set(data) - {
            "policy",
            "policy_params",
            "interval",
            "pressure_gap",
            "batch_max",
            "min_queue",
            "high_watermark",
            "low_watermark",
        }
        if unknown:
            raise ConfigurationError(
                f"migration spec has unknown key(s) {sorted(unknown)}"
            )
        high = data.get("high_watermark")
        low = data.get("low_watermark")
        return cls(
            policy=str(data.get("policy", "LONGEST_WAIT")),
            policy_params=dict(data.get("policy_params", {})),
            interval=float(data.get("interval", 20.0)),
            pressure_gap=float(data.get("pressure_gap", 1.0)),
            batch_max=int(data.get("batch_max", 4)),
            min_queue=int(data.get("min_queue", 2)),
            high_watermark=None if high is None else float(high),
            low_watermark=None if low is None else float(low),
        )


@dataclass
class ClusterSpec:
    """One cluster shard of a federation.

    Attributes
    ----------
    name:
        Cluster identifier — the node label of the inter-cluster topology
        and the key of per-cluster results.
    machine_counts:
        Machines per machine type inside this cluster, e.g.
        ``{"edge_cpu": 4}``. Type names must be EET columns.
    scheduler / scheduler_params:
        Local scheduling policy for this cluster; ``None`` inherits the
        scenario-level policy (so ``--policy`` sweeps apply everywhere).
    queue_capacity:
        Machine-queue capacity override for this cluster (``None`` inherits
        the scenario's capacity; immediate policies force unbounded).
    weight:
        Relative share of workload arrivals originating at this cluster
        (0 means tasks never *arrive* here, though the gateway may still
        *offload* to it).
    """

    name: str
    machine_counts: dict[str, int]
    scheduler: str | None = None
    scheduler_params: dict[str, Any] = field(default_factory=dict)
    queue_capacity: float | None = None
    weight: float = 1.0
    #: Link to this cluster's parent node in a *hierarchical* federation
    #: (see :attr:`FederationSpec.children`); ``None`` inherits the
    #: topology's default link. Ignored — and omitted from JSON — in flat
    #: federations, so legacy specs round-trip byte-identically.
    uplink: Link | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("cluster name must be non-empty")
        if "->" in self.name:
            # '->' is the serialised topology-link separator ("src->dst");
            # allowing it in a name would break the JSON round-trip.
            raise ConfigurationError(
                f"cluster name {self.name!r} must not contain '->'"
            )
        if not self.machine_counts:
            raise ConfigurationError(
                f"cluster {self.name!r} needs at least one machine type"
            )
        counts = {str(k): int(v) for k, v in self.machine_counts.items()}
        if any(c < 0 for c in counts.values()):
            raise ConfigurationError(
                f"cluster {self.name!r}: machine counts must be >= 0"
            )
        if sum(counts.values()) == 0:
            raise ConfigurationError(
                f"cluster {self.name!r} needs at least one machine"
            )
        self.machine_counts = counts
        if self.weight < 0:
            raise ConfigurationError(
                f"cluster {self.name!r}: weight must be >= 0, got {self.weight}"
            )
        if self.uplink is not None and not isinstance(self.uplink, Link):
            self.uplink = Link.from_spec(self.uplink)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (omits unset optional fields)."""
        out: dict[str, Any] = {
            "name": self.name,
            "machine_counts": dict(self.machine_counts),
            "weight": self.weight,
        }
        if self.scheduler is not None:
            out["scheduler"] = self.scheduler
        if self.scheduler_params:
            out["scheduler_params"] = dict(self.scheduler_params)
        if self.queue_capacity is not None:
            out["queue_capacity"] = self.queue_capacity
        if self.uplink is not None:
            out["uplink"] = self.uplink.to_spec()
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ClusterSpec":
        try:
            name = data["name"]
            machine_counts = data["machine_counts"]
        except KeyError as exc:
            raise ConfigurationError(
                f"cluster spec is missing required key {exc.args[0]!r}"
            ) from None
        uplink = data.get("uplink")
        return cls(
            name=str(name),
            machine_counts=dict(machine_counts),
            scheduler=data.get("scheduler"),
            scheduler_params=dict(data.get("scheduler_params", {})),
            queue_capacity=data.get("queue_capacity"),
            weight=float(data.get("weight", 1.0)),
            uplink=None if uplink is None else Link.from_spec(uplink),
        )


@dataclass
class RegionSpec:
    """An interior node of a *hierarchical* federation.

    A region groups child nodes — further regions or :class:`ClusterSpec`
    leaves — behind one **uplink**: the physical link joining this node to
    its parent. Every WAN path between two leaves climbs child→parent
    uplinks to the lowest common ancestor and descends again, so a region's
    uplink is shared by *all* traffic entering or leaving its subtree
    (a congested region uplink back-pressures every site beneath it).

    Attributes
    ----------
    name:
        Node identifier; globally unique across the whole tree (it is a
        path segment of :class:`~repro.federation.hierarchy.ClusterPath`
        wire forms, so ``/`` is forbidden).
    children:
        Child nodes, in order (leaf order defines shard indices).
    uplink:
        Link to the parent node; ``None`` inherits the federation
        topology's default link.
    """

    name: str
    children: "list[RegionSpec | ClusterSpec]" = field(default_factory=list)
    uplink: Link | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("region name must be non-empty")
        self.children = [_coerce_node(c) for c in self.children]
        if not self.children:
            raise ConfigurationError(
                f"region {self.name!r} needs at least one child node"
            )
        if self.uplink is not None and not isinstance(self.uplink, Link):
            self.uplink = Link.from_spec(self.uplink)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (child leaves keep their ClusterSpec shape)."""
        out: dict[str, Any] = {
            "name": self.name,
            "children": [c.to_dict() for c in self.children],
        }
        if self.uplink is not None:
            out["uplink"] = self.uplink.to_spec()
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RegionSpec":
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"region spec must be a JSON object, got {type(data).__name__}"
            )
        try:
            name = data["name"]
            children = data["children"]
        except KeyError as exc:
            raise ConfigurationError(
                f"region spec is missing required key {exc.args[0]!r}"
            ) from None
        uplink = data.get("uplink")
        return cls(
            name=str(name),
            children=[_coerce_node(c) for c in children],
            uplink=None if uplink is None else Link.from_spec(uplink),
        )


def _coerce_node(data: Any) -> "RegionSpec | ClusterSpec":
    """Accept node objects or their JSON forms (``children`` ⇒ region)."""
    if isinstance(data, (RegionSpec, ClusterSpec)):
        return data
    if isinstance(data, Mapping):
        if "children" in data:
            return RegionSpec.from_dict(data)
        return ClusterSpec.from_dict(data)
    raise ConfigurationError(
        f"federation tree node must be a RegionSpec, ClusterSpec or JSON "
        f"object, got {type(data).__name__}"
    )


def _walk_leaves(
    node: "RegionSpec | ClusterSpec", out: list[ClusterSpec]
) -> None:
    if isinstance(node, ClusterSpec):
        out.append(node)
        return
    for child in node.children:
        _walk_leaves(child, out)


def _walk_names(node: "RegionSpec | ClusterSpec", out: list[str]) -> None:
    out.append(node.name)
    if isinstance(node, RegionSpec):
        for child in node.children:
            _walk_names(child, out)


@dataclass
class FederationSpec:
    """The multi-cluster layer of a scenario.

    Attributes
    ----------
    clusters:
        The cluster shards, in federation order (shard indices follow it).
        Derived — pre-order leaf order — when ``children`` is set.
    gateway / gateway_params:
        Registered gateway policy routing arrivals between clusters (see
        :mod:`repro.scheduling.federation`).
    topology:
        Inter-cluster WAN links; offloaded tasks pay
        ``topology.wan_delay(origin, destination, task.data_in)`` before
        entering the destination's batch queue. Hierarchical federations
        derive their links from node uplinks instead (``topology.default``
        backs any node without an explicit uplink), so explicit link
        entries are rejected when ``children`` is set.
    migration:
        Mid-queue migration configuration (:class:`MigrationSpec`), or
        ``None`` (the default) for arrival-time-only routing. Refused for
        hierarchical federations (the rebalancer ships over direct
        leaf-to-leaf links, which a tree topology does not have).
    children:
        Optional hierarchy: a list of top-level :class:`RegionSpec` /
        :class:`ClusterSpec` nodes under an implicit federation root.
        When set, ``clusters`` is derived from the tree's leaves and runs
        execute on :class:`~repro.federation.hierarchy.
        HierarchicalFederatedSimulator` — path routing over shared parent
        uplinks. ``None`` (the default) is the flat, byte-identical
        legacy form.
    """

    clusters: list[ClusterSpec] = field(default_factory=list)
    gateway: str = "LEAST_LOADED"
    gateway_params: dict[str, Any] = field(default_factory=dict)
    topology: InterClusterTopology = field(default_factory=InterClusterTopology)
    migration: MigrationSpec | None = None
    children: "list[RegionSpec | ClusterSpec] | None" = None

    def __post_init__(self) -> None:
        self.clusters = [
            c if isinstance(c, ClusterSpec) else ClusterSpec.from_dict(c)
            for c in self.clusters
        ]
        if self.migration is not None and not isinstance(
            self.migration, MigrationSpec
        ):
            self.migration = MigrationSpec.from_dict(self.migration)
        if self.children is not None:
            self.children = [_coerce_node(c) for c in self.children]
            self._validate_tree()
        if not self.clusters:
            raise ConfigurationError("a federation needs at least one cluster")
        names = [c.name for c in self.clusters]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate cluster names: {names}")
        if sum(c.weight for c in self.clusters) <= 0:
            raise ConfigurationError(
                "at least one cluster needs a positive arrival weight"
            )
        for src, dst in self.topology.links:
            for endpoint in (src, dst):
                if endpoint not in names:
                    raise ConfigurationError(
                        f"topology link references unknown cluster "
                        f"{endpoint!r}; clusters: {names}"
                    )

    def _validate_tree(self) -> None:
        """Hierarchy invariants; also derives ``clusters`` from the leaves."""
        assert self.children is not None
        if not self.children:
            raise ConfigurationError(
                "a hierarchical federation needs at least one child node"
            )
        node_names: list[str] = []
        for node in self.children:
            _walk_names(node, node_names)
        for name in node_names:
            if "/" in name:
                raise ConfigurationError(
                    f"federation tree node {name!r} must not contain '/' "
                    "(the cluster-path wire separator)"
                )
            if "->" in name:
                raise ConfigurationError(
                    f"federation tree node {name!r} must not contain '->' "
                    "(the serialised topology-link separator)"
                )
            if name == "*":
                raise ConfigurationError(
                    "'*' is reserved for the federation root node"
                )
        if len(set(node_names)) != len(node_names):
            dupes = sorted(
                {n for n in node_names if node_names.count(n) > 1}
            )
            raise ConfigurationError(
                f"federation tree node names must be globally unique; "
                f"duplicated: {dupes}"
            )
        leaves: list[ClusterSpec] = []
        for node in self.children:
            _walk_leaves(node, leaves)
        if self.clusters and [c.name for c in self.clusters] != [
            c.name for c in leaves
        ]:
            raise ConfigurationError(
                "clusters of a hierarchical federation are derived from the "
                "tree's leaves; omit the clusters field (or pass exactly the "
                "pre-order leaf list)"
            )
        self.clusters = leaves
        if self.topology.links:
            raise ConfigurationError(
                "hierarchical federations derive WAN links from node "
                "uplinks; explicit topology links are not allowed "
                "(set per-node uplink= instead)"
            )
        if self.migration is not None:
            raise ConfigurationError(
                "hierarchical federations do not support mid-queue "
                "migration: the rebalancer ships tasks over direct "
                "leaf-to-leaf links, which a tree topology does not have"
            )

    # -- views ---------------------------------------------------------------------

    @property
    def names(self) -> list[str]:
        return [c.name for c in self.clusters]

    def index_of(self, name: str) -> int:
        """Shard index of the cluster called *name*."""
        for i, cluster in enumerate(self.clusters):
            if cluster.name == name:
                return i
        raise ConfigurationError(
            f"unknown cluster {name!r}; clusters: {self.names}"
        )

    def total_machine_counts(self) -> dict[str, int]:
        """Machines per machine type summed across all clusters.

        A scenario's global ``machine_counts`` must equal this total — the
        federation is a partition of the population, not a second one.
        """
        totals: dict[str, int] = {}
        for cluster in self.clusters:
            for name, count in cluster.machine_counts.items():
                totals[name] = totals.get(name, 0) + count
        return totals

    def arrival_weights(self) -> list[float]:
        """Per-cluster arrival weights, in federation order."""
        return [c.weight for c in self.clusters]

    # -- JSON round-trip ---------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form of the whole federation.

        Hierarchical federations emit ``children`` and omit ``clusters``
        (the leaf list is derived, so serialising it twice would invite
        divergence); flat federations keep their exact legacy shape.
        """
        out: dict[str, Any]
        if self.children is not None:
            out = {
                "children": [c.to_dict() for c in self.children],
                "gateway": self.gateway,
                "gateway_params": dict(self.gateway_params),
                "topology": self.topology.to_dict(),
            }
            return out
        out = {
            "clusters": [c.to_dict() for c in self.clusters],
            "gateway": self.gateway,
            "gateway_params": dict(self.gateway_params),
            "topology": self.topology.to_dict(),
        }
        if self.migration is not None:
            out["migration"] = self.migration.to_dict()
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FederationSpec":
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"federation spec must be a JSON object, got "
                f"{type(data).__name__}"
            )
        children = data.get("children")
        if children is None and "clusters" not in data:
            raise ConfigurationError(
                "federation spec is missing required key 'clusters' "
                "(or 'children' for a hierarchical federation)"
            )
        clusters = data.get("clusters", [])
        topology = data.get("topology")
        migration = data.get("migration")
        return cls(
            clusters=[ClusterSpec.from_dict(c) for c in clusters],
            gateway=str(data.get("gateway", "LEAST_LOADED")),
            gateway_params=dict(data.get("gateway_params", {})),
            topology=(
                InterClusterTopology()
                if topology is None
                else InterClusterTopology.from_dict(topology)
            ),
            migration=(
                None if migration is None else MigrationSpec.from_dict(migration)
            ),
            children=(
                None if children is None else [_coerce_node(c) for c in children]
            ),
        )
