"""One cluster shard of a federated simulation.

A :class:`ClusterShard` is the single-cluster engine
(:class:`repro.core.simulator.Simulator`) re-hosted inside a federation: it
keeps its own cluster, batch queue, local scheduling policy, metrics
collector and per-type statistics — the full PR-2 vectorised hot path — but
shares the federation's event heap and clock instead of owning a loop.
Every event it schedules is stamped with its shard index (``Event.cluster``)
so the federation loop can route the event straight back to this shard's
inherited handlers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..core.simulator import Simulator
from ..machines.cluster import Cluster
from ..machines.execution import DeterministicExecution, ExecutionTimeModel
from ..machines.machine_queue import UNBOUNDED
from ..metrics.collector import MetricsCollector
from ..queues.batch_queue import BatchQueue
from ..scheduling.base import Scheduler, SchedulingMode
from ..scheduling.context import LiveTypeStats, SchedulingContext
from ..scheduling.overhead import SchedulingOverhead

if TYPE_CHECKING:  # pragma: no cover
    from ..core.clock import SimulationClock
    from ..core.event_queue import EventQueue
    from ..machines.failures import FailureModel
    from .simulator import FederatedSimulator

__all__ = ["ClusterShard"]


class ClusterShard(Simulator):
    """A :class:`Simulator` whose loop, clock and event heap live elsewhere.

    The federation owns stepping and termination; the shard contributes the
    per-cluster event handlers (arrival, completion, deadline, delivery,
    failure, repair) it inherits unchanged from :class:`Simulator` —
    including the incremental ``ClusterState`` planning arrays and the
    columnar metrics path — so per-shard scheduling work is identical to a
    standalone single-cluster run.
    """

    # Deliberately does NOT call Simulator.__init__: a shard neither owns a
    # workload (arrivals are routed in by the gateway) nor builds its own
    # clock/event queue (both are the federation's).
    def __init__(  # pylint: disable=super-init-not-called
        self,
        index: int,
        name: str,
        cluster: Cluster,
        scheduler: Scheduler,
        *,
        federation: "FederatedSimulator",
        clock: "SimulationClock",
        events: "EventQueue",
        rng: np.random.Generator,
        weight: float = 1.0,
        drop_on_deadline: bool = True,
        execution_model: ExecutionTimeModel | None = None,
        queue_capacity: float = UNBOUNDED,
        enable_network: bool = False,
        failure_model: "FailureModel | None" = None,
        scheduling_overhead: SchedulingOverhead | None = None,
    ) -> None:
        self._shard_id = index
        self.index = index
        self.name = name
        self.weight = weight
        self.cluster = cluster
        self.scheduler = scheduler
        self._federation = federation
        self.clock = clock
        self.events = events
        self.rng = rng
        self.drop_on_deadline = drop_on_deadline
        self.execution_model = execution_model or DeterministicExecution()
        self._deterministic_execution = (
            type(self.execution_model) is DeterministicExecution
        )
        self.enable_network = enable_network
        self.failure_model = failure_model
        self.scheduling_overhead = (
            scheduling_overhead
            if scheduling_overhead is not None
            else SchedulingOverhead()
        )
        self._overhead_free = self.scheduling_overhead.is_free
        self._immediate_fast = (
            scheduler.mode is SchedulingMode.IMMEDIATE
            and self._overhead_free
            and not enable_network
        )
        self.observers = []

        if scheduler.mode is SchedulingMode.IMMEDIATE:
            cluster.set_queue_capacity(UNBOUNDED)
        elif queue_capacity != UNBOUNDED:
            cluster.set_queue_capacity(queue_capacity)

        self.batch_queue = BatchQueue()
        self.collector = MetricsCollector()
        self.type_stats = LiveTypeStats()
        self.scheduler.reset()
        self._arrived = 0
        self._n_machines = len(cluster.machines)
        #: Tasks the gateway routed to this shard (local or via WAN).
        self.routed = 0
        self._ctx = SchedulingContext(
            now=0.0,
            pending=(),
            cluster=self.cluster,
            type_stats=self.type_stats,
            rng=self.rng,
        )

    # -- federation-facing surface -------------------------------------------------

    @property
    def in_system(self) -> int:
        """Routed-but-not-terminal tasks (WAN transit + queued + running)."""
        return self.routed - self.collector.recorded

    def pressure(self) -> float:
        """Outstanding tasks per live machine (the gateway load signal).

        Same arithmetic as :func:`repro.scheduling.federation.base.shard_pressure`
        with the attribute chains flattened — this runs several times per
        routing decision.
        """
        state = self.cluster._state
        alive = self._n_machines - state.n_down
        if alive <= 0:
            return float("inf")
        return (self.routed - self.collector.recorded) / alive

    def start_failure_process(self) -> None:
        """Schedule the first failure event for every machine of this shard."""
        if self.failure_model is None:
            return
        for machine in self.cluster:
            self._schedule_failure(machine)

    def finalize(self, now: float) -> None:
        """Close the trailing energy interval of every machine."""
        for machine in self.cluster:
            machine.finalize_energy(now)

    # -- overridden Simulator hooks -----------------------------------------------

    def _all_tasks_terminal(self) -> bool:
        # Repairs keep the failure process alive only while the *federation*
        # still has work anywhere: an idle shard must stay repairable because
        # the gateway may offload to it later.
        return self._federation.all_tasks_terminal()

    def _finish(self) -> None:  # pragma: no cover - defensive
        raise NotImplementedError(
            "shards do not finish individually; the federation terminates"
        )
