"""Shard-parallel federated execution with conservative lookahead windows.

:class:`ParallelFederatedSimulator` runs a federation across worker
processes and reproduces the serial :class:`~repro.federation.simulator.
FederatedSimulator` **bit-identically** — same summaries, same energy, same
``events_processed``, same end time. The design is classic conservative
parallel discrete-event simulation (PDES) specialised to this engine's
structure:

* **Partition.** Cluster shards are the units of parallelism: all machine,
  queue, collector and RNG state of a shard is private to exactly one
  worker process. The coordinator (parent process) owns everything
  federation-level — the workload arrival stream, the gateway policy and
  its RNG, the WAN manager (link channels, cross-traffic, transfers) and
  the routing/offload accounting.

* **Lookahead.** Every effect one site has on another is mediated by a WAN
  transfer, so it lands at least ``topology.min_link_lookahead(names)``
  seconds in the future. That latency is the conservative lookahead: the
  granularity at which boundary events are exchanged. A zero-latency link
  collapses the window and is rejected at construction.

* **Windows.** Execution advances in windows ``[W, W + L)`` over the
  coordinator's event stream: the coordinator processes *its* events in
  the window (gateway arrivals, WAN serialisation milestones, cross-traffic
  epochs, deadlines of in-WAN tasks), accumulating the boundary events each
  worker needs (routed/delivered task arrivals, forwarded deadlines, in-WAN
  cancellation records); at the window edge it publishes each worker's
  batch, and the workers merge it into their local heaps and process
  everything below the edge. Boundary events are compact id-tuples — the
  forked workers already hold every task object, so nothing heavyweight
  crosses a pipe.

* **Why this is exact.** Shard-local events in different shards touch
  disjoint state, so their cross-shard interleaving is irrelevant; within a
  shard (and within the coordinator) events run in the serial engine's
  ``(time, priority, seq)`` order; and every cross-boundary effect is
  delivered as an event with its exact serial timestamp and priority before
  the receiving side passes that time — the coordinator finishes its half
  of each window before any worker may enter that window. The one
  structural requirement is that the gateway's routing decisions must not
  read live shard state — the coordinator routes arrivals ahead of the
  shards reaching those timestamps. Policies declare this via
  :attr:`~repro.scheduling.federation.base.GatewayPolicy.reads_shard_state`;
  state-reading gateways (pressure- or EET-based) are refused with a clear
  error, because under windowed execution their inputs would be stale —
  exactly the zero-lookahead feedback loop conservative PDES cannot
  parallelise. With a state-blind gateway the federation layer is closed
  (shards never influence the coordinator), so window publication is
  one-directional and pipelines: the coordinator streams windows at its
  own pace while workers consume them concurrently, and the only barriers
  in a run are the final drain and result collection.

Failure models, observers and mid-queue migration are likewise refused:
failure/repair processes are shard-local but gated on *global* progress,
observers see a single serial event stream by contract, and the rebalancer
reads every shard's batch queue at each tick — all zero-lookahead
couplings. The serial engine remains the fully general path.
"""

from __future__ import annotations

import heapq
import multiprocessing
from typing import Any

from ..core.errors import ConfigurationError, SchedulingError, SimulationStateError
from ..core.event_queue import EventQueue
from ..core.events import Event, EventType
from ..net.wan import TransferPhase, WanManager
from ..tasks.task import Task
from .result import FederatedSimulationResult
from .simulator import FederatedSimulator

__all__ = ["ParallelFederatedSimulator"]

_ARRIVAL = EventType.TASK_ARRIVAL
_COMPLETION = EventType.TASK_COMPLETION
_DEADLINE = EventType.TASK_DEADLINE
_LINK_TRANSFER = EventType.LINK_TRANSFER
_CROSS_TRAFFIC = EventType.CROSS_TRAFFIC


class ParallelFederatedSimulator:
    """Window-parallel drop-in for :class:`FederatedSimulator`.

    Accepts the serial engine's constructor arguments plus ``workers`` and
    produces a bit-identical :class:`FederatedSimulationResult`. Worker
    processes are forked lazily in :meth:`run` — construction builds the
    ordinary serial engine, so specs, seeds and workloads behave exactly
    as they do serially.
    """

    def __init__(
        self,
        spec: Any,
        eet: Any,
        workload: Any,
        *,
        workers: int = 2,
        **kwargs: Any,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if kwargs.get("failure_model") is not None:
            raise ConfigurationError(
                "parallel federated execution does not support failure "
                "models: repair scheduling is gated on global progress "
                "(zero lookahead); run serially instead"
            )
        if kwargs.get("observers"):
            raise ConfigurationError(
                "parallel federated execution does not support observers: "
                "they contract a single serial event stream; run serially"
            )
        if spec.migration is not None:
            raise ConfigurationError(
                "parallel federated execution does not support mid-queue "
                "migration: the rebalancer reads every shard's batch queue "
                "at each tick (zero lookahead); run serially instead"
            )
        if getattr(spec, "children", None) is not None:
            raise ConfigurationError(
                "parallel federated execution does not support hierarchical "
                "federations: relay hops share parent uplink channels, so "
                "one shard's transfer reorders another's deliveries inside "
                "any lookahead window (the per-pair link bound no longer "
                "holds); run hierarchical federations serially instead"
            )
        # Positive-lookahead check first: its error explains the windowing.
        self.lookahead = spec.topology.min_link_lookahead(spec.names)
        self.workers = workers
        self._fed = FederatedSimulator(spec, eet, workload, **kwargs)
        gateway = self._fed.gateway
        if gateway.reads_shard_state:
            raise ConfigurationError(
                f"gateway {gateway.name!r} reads live shard state, so its "
                "routing decisions cannot be reproduced a lookahead window "
                "ahead of the shards; parallel federated execution needs a "
                "state-blind gateway (e.g. RANDOM_SPLIT) — run this "
                "federation serially instead"
            )
        self._result: FederatedSimulationResult | None = None

    # -- coordinator ---------------------------------------------------------------

    def run(self) -> FederatedSimulationResult:
        if self._result is not None:
            return self._result
        fed = self._fed
        n_shards = len(fed.shards)
        n_workers = min(self.workers, n_shards)
        owner = [i % n_workers for i in range(n_shards)]

        # Handles of the upfront per-task deadline events: the coordinator
        # keeps a task's deadline only while the task is in the WAN (for
        # exact in-flight cancellation); once the task reaches a shard, the
        # deadline moves with it and this copy is cancelled.
        deadline_events: dict[int, Event] = {
            entry[1].payload.id: entry[1]
            for entry in fed.events._heap
            if entry[1].type is _DEADLINE
        }

        ctx = multiprocessing.get_context("fork")
        conns: list[Any] = []
        procs: list[Any] = []
        try:
            for w in range(n_workers):
                parent_conn, child_conn = ctx.Pipe()
                shard_ids = [i for i in range(n_shards) if owner[i] == w]
                proc = ctx.Process(
                    target=_worker_main,
                    args=(child_conn, fed, shard_ids),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                conns.append(parent_conn)
                procs.append(proc)

            result = self._coordinate(conns, owner, deadline_events)
        finally:
            for conn in conns:
                conn.close()
            for proc in procs:
                proc.join(timeout=30)
                if proc.is_alive():  # pragma: no cover - defensive
                    proc.terminate()
        self._result = result
        return result

    def _coordinate(
        self,
        conns: list[Any],
        owner: list[int],
        deadline_events: dict[int, Event],
    ) -> FederatedSimulationResult:
        fed = self._fed
        lookahead = self.lookahead
        n_workers = len(conns)
        outboxes: list[list[tuple[Any, ...]]] = [[] for _ in range(n_workers)]
        coord_last = 0.0
        coord_processed = 0

        events = fed.events
        heap = events._heap
        cancelled = events._cancelled

        # The federation layer is closed (nothing a shard does feeds back
        # into the coordinator's event stream), so windows publish
        # one-directionally: each edge crossed flushes the accumulated
        # boundary events and the workers pipeline behind the coordinator.
        next_time = events.next_time()
        while next_time is not None:
            w_end = next_time + lookahead
            while heap and heap[0][0][0] < w_end:
                event = heapq.heappop(heap)[1]
                if cancelled and event.seq in cancelled:
                    cancelled.discard(event.seq)
                    continue
                events._live -= 1
                now = event.time
                fed.clock._now = now
                coord_last = now
                etype = event.type
                cluster_id = event.cluster
                if cluster_id is None:
                    if etype is _ARRIVAL:
                        self._route(event.payload, now, outboxes, owner,
                                    deadline_events)
                    elif etype is _DEADLINE:
                        self._deadline_in_wan(
                            event.payload, now, outboxes, owner
                        )
                    elif etype is _LINK_TRANSFER:
                        WanManager.on_link_event(event, now)
                    elif etype is _CROSS_TRAFFIC:
                        WanManager.on_cross_traffic(event, now)
                    else:  # pragma: no cover - defensive
                        raise SimulationStateError(
                            f"unexpected coordinator event {etype}"
                        )
                elif etype is _ARRIVAL:
                    # A WAN delivery: account it, then hand the task (and
                    # its deadline) to the owning worker at this timestamp.
                    task = event.payload
                    transfer = fed._transfers.pop(task.id, None)
                    if transfer is not None:
                        fed._wan.on_delivered(transfer, now)
                        fed._wan.release(transfer)
                    self._forward(task, now, cluster_id, outboxes, owner,
                                  deadline_events)
                else:  # pragma: no cover - defensive
                    raise SimulationStateError(
                        f"shard event {etype} reached the parallel "
                        "coordinator"
                    )
                # Every live coordinator pop is a serial-engine event; the
                # forwarded continuations are bookkeeping, counted nowhere.
                coord_processed += 1
            for w, conn in enumerate(conns):
                conn.send(("window", w_end, outboxes[w]))
                outboxes[w] = []
            next_time = events.next_time()

        # The coordinator's stream is exhausted: no further boundary events
        # can exist, so the workers may drain unboundedly. Their replies are
        # the run's only barriers.
        for conn in conns:
            conn.send(("drain",))
        worker_last = [conn.recv()[1] for conn in conns]
        end_time = max([coord_last, *worker_last])
        fed.clock._now = end_time
        total_processed = coord_processed
        for conn in conns:
            conn.send(("finalize", end_time))
        for conn in conns:
            tag, payloads, processed = conn.recv()
            assert tag == "result"
            total_processed += processed
            for shard_id, (collector, cluster) in payloads.items():
                shard = fed.shards[shard_id]
                shard.collector = collector
                shard.cluster = cluster

        fed._events_processed = total_processed
        result = fed._build_result()
        expected = len(fed.workload)
        if fed.drop_on_deadline and fed.recorded != expected:
            raise SimulationStateError(
                f"conservation violated: {fed.recorded} terminal tasks "
                f"out of {expected} across {len(fed.shards)} clusters"
            )
        fed._finished = True
        fed._result = result
        return result

    # -- coordinator event handlers ------------------------------------------------

    def _route(
        self,
        task: Task,
        now: float,
        outboxes: list[list[tuple[Any, ...]]],
        owner: list[int],
        deadline_events: dict[int, Event],
    ) -> None:
        """The gateway decision for one arriving task (serial semantics)."""
        fed = self._fed
        origin = task.origin_cluster
        if origin is None:  # pragma: no cover - defensive
            raise SimulationStateError(
                f"task {task.id} reached the gateway without an origin"
            )
        ctx = fed._ctx
        ctx.now = now
        ctx.task = task
        ctx.origin = origin
        destination = fed.gateway.choose_cluster(ctx)
        if not 0 <= destination < len(fed.shards):
            raise SchedulingError(
                f"{fed.gateway.name}: cluster index {destination} out of "
                f"range for {len(fed.shards)} clusters"
            )
        task.cluster = destination
        fed._routing[origin][destination] += 1
        fed.shards[destination].routed += 1
        if destination != origin:
            fed._offloaded += 1
            transfer = fed._wan.submit(task, origin, destination, now)
            if transfer is not None:
                # In the WAN: the coordinator keeps the deadline until the
                # delivery (or in-flight cancellation) resolves it.
                fed._transfers[task.id] = transfer
                return
        self._forward(task, now, destination, outboxes, owner,
                      deadline_events)

    def _forward(
        self,
        task: Task,
        now: float,
        destination: int,
        outboxes: list[list[tuple[Any, ...]]],
        owner: list[int],
        deadline_events: dict[int, Event],
    ) -> None:
        """Hand a task to its destination shard's worker at time *now*."""
        fed = self._fed
        with_deadline = False
        handle = deadline_events.pop(task.id, None)
        if handle is not None and fed.events.cancel(handle):
            with_deadline = True
        outboxes[owner[destination]].append(
            ("arr", now, destination, task.id, with_deadline)
        )

    def _deadline_in_wan(
        self,
        task: Task,
        now: float,
        outboxes: list[list[tuple[Any, ...]]],
        owner: list[int],
    ) -> None:
        """A deadline fired at the coordinator: the task must be in the WAN.

        Mirrors the serial engine's CREATED branch — abandon the transfer,
        cancel the task — then ships a record entry so the destination
        shard's collector books the terminal task in event order.
        """
        fed = self._fed
        transfer = fed._transfers.pop(task.id, None)
        if transfer is None:  # pragma: no cover - defensive
            raise SimulationStateError(
                f"coordinator deadline for task {task.id} which is not "
                "in the WAN (its deadline should live with its shard)"
            )
        in_fifo = transfer.phase is TransferPhase.QUEUED
        fed._wan.cancel(transfer, now)
        if not in_fifo:
            fed._wan.release(transfer)
        task.cancel(now)
        destination = task.cluster
        assert destination is not None
        outboxes[owner[destination]].append(("rec", now, destination, task.id))


# -- worker process ---------------------------------------------------------------


def _worker_main(conn: Any, fed: FederatedSimulator, shard_ids: list[int]) -> None:
    """Event loop of one worker process (entered via fork).

    The forked image contains the fully built federation; the worker swaps
    in a fresh event queue (dropping the coordinator-owned arrival and
    deadline population) and advances only its shards, window by window.
    Boundary events arrive as id-tuples and are re-materialised against the
    worker's own (forked) task objects, replaying the coordinator-side
    mutations — destination stamp, WAN cancellation — deterministically.
    """
    events = EventQueue()
    fed.events = events
    for shard in fed.shards:
        shard.events = events
    shards = fed.shards
    by_id = {task.id: task for task in fed.workload}
    clock = fed.clock
    heap = events._heap
    cancelled = events._cancelled
    push = events.push
    processed = 0
    last_time = 0.0
    draining = False

    while True:
        if not draining:
            message = conn.recv()
            tag = message[0]
            if tag == "window":
                w_end = message[1]
                for item in message[2]:
                    kind, when, destination, task_id = item[:4]
                    task = by_id[task_id]
                    task.cluster = destination
                    if kind == "arr":
                        push(Event(when, _ARRIVAL, task, cluster=destination))
                        if item[4]:
                            push(
                                Event(task.deadline, _DEADLINE, task,
                                      cluster=destination)
                            )
                    else:  # "rec": replay the coordinator's in-WAN cancel
                        task.cancel(when)
                        push(
                            Event(when, _DEADLINE, (task,), cluster=destination)
                        )
            elif tag == "drain":
                draining = True
                w_end = float("inf")
            else:  # pragma: no cover - defensive
                raise SimulationStateError(f"unknown worker message {tag!r}")
        while heap and heap[0][0][0] < w_end:
            event = heapq.heappop(heap)[1]
            if cancelled and event.seq in cancelled:
                cancelled.discard(event.seq)
                continue
            events._live -= 1
            now = event.time
            clock._now = now
            last_time = now
            etype = event.type
            if etype is _COMPLETION:
                shards[event.cluster]._on_completion(event.payload)
            elif etype is _ARRIVAL:
                # The continuation of a coordinator-counted arrival or
                # delivery event — dispatch it, but do not count it.
                shards[event.cluster]._on_arrival(event.payload)
                continue
            elif etype is _DEADLINE:
                payload = event.payload
                if type(payload) is tuple:
                    # Cancelled in the WAN by the coordinator (which
                    # already counted the deadline event): record the
                    # terminal task at its destination, in event order.
                    task = payload[0]
                    shard = shards[event.cluster]
                    shard.collector.record_terminal(task)
                    shard.type_stats.record(task.task_type.name, False)
                    continue
                if payload.status.is_terminal:
                    processed += 1
                    continue
                shards[payload.cluster]._on_deadline(payload)
            else:
                shards[event.cluster]._dispatch(event)
            processed += 1
        if draining:
            conn.send(("drained", last_time))
            message = conn.recv()
            assert message[0] == "finalize"
            end_time = message[1]
            payloads: dict[int, tuple[Any, Any]] = {}
            for shard_id in shard_ids:
                shard = shards[shard_id]
                shard.finalize(end_time)
                payloads[shard_id] = (shard.collector, shard.cluster)
            conn.send(("result", payloads, processed))
            conn.close()
            return
