"""Communication extension: star/inter-cluster topologies and transfer delays."""

from .topology import InterClusterTopology, Link, StarTopology
from .transfer import output_return_delay, transfer_delay

__all__ = [
    "Link",
    "StarTopology",
    "InterClusterTopology",
    "transfer_delay",
    "output_return_delay",
]
