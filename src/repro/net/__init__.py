"""Communication extension: topologies, transfer delays, WAN queueing.

Star and inter-cluster topologies (:mod:`repro.net.topology`), the Fig-1
scheduler→machine delivery delays (:mod:`repro.net.transfer`), and the WAN
contention + energy layer that turns federation links into queueing
resources (:mod:`repro.net.wan`).
"""

from .topology import CONTENTION_MODES, InterClusterTopology, Link, StarTopology
from .transfer import output_return_delay, transfer_delay
from .wan import LinkChannel, LinkUsage, TransferPhase, WanManager, WanTransfer

__all__ = [
    "Link",
    "StarTopology",
    "InterClusterTopology",
    "CONTENTION_MODES",
    "transfer_delay",
    "output_return_delay",
    "WanManager",
    "LinkChannel",
    "LinkUsage",
    "WanTransfer",
    "TransferPhase",
]
