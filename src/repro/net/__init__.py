"""Communication extension: star topology and transfer-delay model."""

from .topology import Link, StarTopology
from .transfer import output_return_delay, transfer_delay

__all__ = ["Link", "StarTopology", "transfer_delay", "output_return_delay"]
