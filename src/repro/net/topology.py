"""Star topology description for the communication extension.

E2C's architecture (Fig. 1) is a star: one scheduler node fanning out to all
machines. :class:`StarTopology` is the declarative description — per
machine-type link latency and bandwidth — that plugs into
:meth:`repro.core.config.Scenario` (its ``network`` field) and feeds
:func:`repro.net.transfer.transfer_delay`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..core.errors import ConfigurationError

__all__ = ["Link", "StarTopology"]


@dataclass(frozen=True)
class Link:
    """One scheduler→machine-type link."""

    latency: float = 0.0       # seconds
    bandwidth: float = 0.0     # MB/s; 0 = latency-only link

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ConfigurationError(f"latency must be >= 0: {self.latency}")
        if self.bandwidth < 0:
            raise ConfigurationError(f"bandwidth must be >= 0: {self.bandwidth}")

    def delay_for(self, megabytes: float) -> float:
        """Transfer time of a payload over this link."""
        if megabytes < 0:
            raise ConfigurationError(f"payload must be >= 0: {megabytes}")
        if self.bandwidth > 0 and megabytes > 0:
            return self.latency + megabytes / self.bandwidth
        return self.latency


@dataclass
class StarTopology:
    """Scheduler-to-machines star with per-machine-type links."""

    links: dict[str, Link] = field(default_factory=dict)
    default: Link = field(default_factory=Link)

    def link_for(self, machine_type_name: str) -> Link:
        return self.links.get(machine_type_name, self.default)

    def set_link(
        self, machine_type_name: str, latency: float, bandwidth: float = 0.0
    ) -> "StarTopology":
        self.links[machine_type_name] = Link(latency, bandwidth)
        return self

    def as_scenario_network(self) -> dict[str, tuple[float, float]]:
        """The ``network=`` mapping a Scenario expects."""
        return {
            name: (link.latency, link.bandwidth)
            for name, link in self.links.items()
        }

    @classmethod
    def uniform(
        cls,
        machine_type_names: Mapping[str, object] | list[str],
        latency: float,
        bandwidth: float = 0.0,
    ) -> "StarTopology":
        """Same link characteristics toward every machine type."""
        names = list(machine_type_names)
        topo = cls()
        for name in names:
            topo.set_link(str(name), latency, bandwidth)
        return topo
