"""Network topology descriptions for the communication extensions.

E2C's architecture (Fig. 1) is a star: one scheduler node fanning out to all
machines. :class:`StarTopology` is the declarative description — per
machine-type link latency and bandwidth — that plugs into
:meth:`repro.core.config.Scenario` (its ``network`` field) and feeds
:func:`repro.net.transfer.transfer_delay`.

The federation layer (:mod:`repro.federation`) generalises the star into
:class:`InterClusterTopology`: per cluster-*pair* WAN links, so offloading a
task from its origin cluster to a remote one pays a transfer delay before the
remote cluster's local policy even sees it. A star is the special case where
every pair routes through one hub (:meth:`InterClusterTopology.from_star`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from ..core.errors import ConfigurationError

__all__ = ["Link", "StarTopology", "InterClusterTopology"]


@dataclass(frozen=True)
class Link:
    """One scheduler→machine-type link."""

    latency: float = 0.0       # seconds
    bandwidth: float = 0.0     # MB/s; 0 = latency-only link

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ConfigurationError(f"latency must be >= 0: {self.latency}")
        if self.bandwidth < 0:
            raise ConfigurationError(f"bandwidth must be >= 0: {self.bandwidth}")

    def delay_for(self, megabytes: float) -> float:
        """Transfer time of a payload over this link."""
        if megabytes < 0:
            raise ConfigurationError(f"payload must be >= 0: {megabytes}")
        if self.bandwidth > 0 and megabytes > 0:
            return self.latency + megabytes / self.bandwidth
        return self.latency


@dataclass
class StarTopology:
    """Scheduler-to-machines star with per-machine-type links."""

    links: dict[str, Link] = field(default_factory=dict)
    default: Link = field(default_factory=Link)

    def link_for(self, machine_type_name: str) -> Link:
        return self.links.get(machine_type_name, self.default)

    def set_link(
        self, machine_type_name: str, latency: float, bandwidth: float = 0.0
    ) -> "StarTopology":
        self.links[machine_type_name] = Link(latency, bandwidth)
        return self

    def as_scenario_network(
        self, machine_type_names: Iterable[str] | None = None
    ) -> dict[str, tuple[float, float]]:
        """The ``network=`` mapping a Scenario expects.

        Pass *machine_type_names* (the EET columns) to materialise an entry
        for **every** machine type, explicit or defaulted — a round-trip
        through :class:`~repro.core.config.Scenario` only preserves the
        entries of this mapping, so machine types that silently fell back to
        ``self.default`` would otherwise come back with a zero link.
        Without the names, a non-trivial default cannot be exported and this
        raises instead of silently dropping it.
        """
        if machine_type_names is not None:
            names = list(dict.fromkeys(machine_type_names))
            out = {
                name: (link.latency, link.bandwidth)
                for name, link in self.links.items()
            }
            for name in names:
                link = self.link_for(name)
                out.setdefault(name, (link.latency, link.bandwidth))
            return out
        if self.default.latency > 0 or self.default.bandwidth > 0:
            raise ConfigurationError(
                "StarTopology has a non-trivial default link; pass "
                "machine_type_names to as_scenario_network() so machine "
                "types without an explicit link keep the default instead "
                "of dropping to a zero link"
            )
        return {
            name: (link.latency, link.bandwidth)
            for name, link in self.links.items()
        }

    @classmethod
    def uniform(
        cls,
        machine_type_names: Mapping[str, object] | list[str],
        latency: float,
        bandwidth: float = 0.0,
    ) -> "StarTopology":
        """Same link characteristics toward every machine type."""
        names = list(machine_type_names)
        topo = cls()
        for name in names:
            topo.set_link(str(name), latency, bandwidth)
        return topo


_ZERO_LINK = Link()


@dataclass
class InterClusterTopology:
    """WAN links between named cluster sites (federation extension).

    ``links`` maps directed ``(src, dst)`` cluster-name pairs to
    :class:`Link` parameters; with ``symmetric=True`` (the default) a lookup
    for ``(a, b)`` falls back to ``(b, a)`` before the ``default`` link, so
    one entry per unordered pair suffices. Intra-cluster traffic
    (``src == dst``) is always free — the local dispatch never pays a WAN
    delay.
    """

    links: dict[tuple[str, str], Link] = field(default_factory=dict)
    default: Link = field(default_factory=Link)
    symmetric: bool = True

    def link_between(self, src: str, dst: str) -> Link:
        """Effective link from cluster *src* to cluster *dst*."""
        if src == dst:
            return _ZERO_LINK
        link = self.links.get((src, dst))
        if link is None and self.symmetric:
            link = self.links.get((dst, src))
        return link if link is not None else self.default

    def set_link(
        self, src: str, dst: str, latency: float, bandwidth: float = 0.0
    ) -> "InterClusterTopology":
        if src == dst:
            raise ConfigurationError(
                f"intra-cluster link {src!r}->{dst!r} is implicit and free"
            )
        self.links[(src, dst)] = Link(latency, bandwidth)
        return self

    def wan_delay(self, src: str, dst: str, megabytes: float) -> float:
        """Transfer time of a payload offloaded from *src* to *dst*."""
        if src == dst:
            return 0.0
        return self.link_between(src, dst).delay_for(megabytes)

    @classmethod
    def uniform(
        cls,
        cluster_names: Iterable[str],
        latency: float,
        bandwidth: float = 0.0,
    ) -> "InterClusterTopology":
        """Same WAN characteristics between every pair of clusters.

        Expressed purely through the ``default`` link — ``link_between``
        already falls back to it for every pair, so no per-pair entries are
        materialised (or serialised). ``cluster_names`` is accepted for
        symmetry with :meth:`StarTopology.uniform` but only documents intent.
        """
        return cls(default=Link(latency, bandwidth))

    @classmethod
    def from_star(
        cls, star: StarTopology, cluster_names: Iterable[str], hub: str
    ) -> "InterClusterTopology":
        """Lift a scheduler-centric star into a cluster-pair topology.

        Every cluster keeps the link it had toward the star hub; traffic
        between two non-hub clusters pays both spoke links in sequence,
        approximated here as the sum of latencies over the minimum
        bandwidth (the bottleneck spoke).
        """
        names = [str(n) for n in cluster_names]
        topo = cls(default=star.default)
        for name in names:
            if name == hub:
                continue
            spoke = star.link_for(name)
            topo.set_link(hub, name, spoke.latency, spoke.bandwidth)
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                if hub in (a, b):
                    continue
                la, lb = star.link_for(a), star.link_for(b)
                bandwidths = [x for x in (la.bandwidth, lb.bandwidth) if x > 0]
                topo.set_link(
                    a,
                    b,
                    la.latency + lb.latency,
                    min(bandwidths) if bandwidths else 0.0,
                )
        return topo

    # -- JSON round-trip ----------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "links": {
                f"{src}->{dst}": [link.latency, link.bandwidth]
                for (src, dst), link in sorted(self.links.items())
            },
            "default": [self.default.latency, self.default.bandwidth],
            "symmetric": self.symmetric,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "InterClusterTopology":
        links: dict[tuple[str, str], Link] = {}
        for key, value in dict(data.get("links", {})).items():
            src, sep, dst = str(key).partition("->")
            if not sep or not src or not dst:
                raise ConfigurationError(
                    f"inter-cluster link key must be 'src->dst', got {key!r}"
                )
            links[(src, dst)] = Link(float(value[0]), float(value[1]))
        default = data.get("default", [0.0, 0.0])
        return cls(
            links=links,
            default=Link(float(default[0]), float(default[1])),
            symmetric=bool(data.get("symmetric", True)),
        )
