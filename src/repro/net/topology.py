"""Network topology descriptions for the communication extensions.

E2C's architecture (Fig. 1) is a star: one scheduler node fanning out to all
machines. :class:`StarTopology` is the declarative description — per
machine-type link latency and bandwidth — that plugs into
:meth:`repro.core.config.Scenario` (its ``network`` field) and feeds
:func:`repro.net.transfer.transfer_delay`.

The federation layer (:mod:`repro.federation`) generalises the star into
:class:`InterClusterTopology`: per cluster-*pair* WAN links, so offloading a
task from its origin cluster to a remote one pays a transfer delay before the
remote cluster's local policy even sees it. A star is the special case where
every pair routes through one hub (:meth:`InterClusterTopology.from_star`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from ..core.errors import ConfigurationError
from .crosstraffic import DiurnalTraffic, MmppTraffic, cross_traffic_from_spec

__all__ = ["Link", "StarTopology", "InterClusterTopology", "CONTENTION_MODES"]

#: Either cross-traffic spec a WAN link may carry (see crosstraffic.py).
CrossTraffic = DiurnalTraffic | MmppTraffic


#: Contention disciplines a WAN link may run (see :mod:`repro.net.wan`).
CONTENTION_MODES = ("none", "fifo", "ps")


@dataclass(frozen=True)
class Link:
    """One network link: scheduler→machine-type or cluster→cluster (WAN).

    ``latency`` and ``bandwidth`` describe the pipe. The remaining fields
    only matter for inter-cluster (WAN) links used by the federation layer:

    ``contention``
        How concurrent transfers over this link share it. ``"none"``
        (default) keeps the legacy model — every transfer independently
        pays ``latency + size/bandwidth`` and overlapping transfers do not
        interact. ``"fifo"`` serialises transfers one at a time in arrival
        order; ``"ps"`` (processor sharing) divides the bandwidth equally
        among all in-flight transfers. Both queueing disciplines require a
        finite ``bandwidth``. See :class:`repro.net.wan.LinkChannel`.
    ``energy_per_mb``
        Joules consumed per megabyte pushed across the link (NIC + haul
        cost); charged to the link as payload bytes are serialised.
    ``idle_watts`` / ``busy_watts``
        Electrical power the link port draws while idle and while actively
        serialising at least one transfer; integrated over the run into the
        per-link energy report (:class:`repro.net.wan.LinkUsage`).
    ``cross_traffic``
        Optional background-utilisation process
        (:class:`~repro.net.crosstraffic.DiurnalTraffic` or
        :class:`~repro.net.crosstraffic.MmppTraffic`): simulated transfers
        then serve at the time-varying residual capacity
        ``bandwidth * (1 - u(t))``. Requires a queueing discipline
        (``contention`` of ``"fifo"`` or ``"ps"``) — the legacy ``"none"``
        model has no shared pipe for the background load to occupy.
    """

    latency: float = 0.0       # seconds
    bandwidth: float = 0.0     # MB/s; 0 = latency-only link
    contention: str = "none"   # "none" | "fifo" | "ps"
    energy_per_mb: float = 0.0  # J/MB serialised
    idle_watts: float = 0.0
    busy_watts: float = 0.0
    cross_traffic: "CrossTraffic | None" = None

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ConfigurationError(f"latency must be >= 0: {self.latency}")
        if self.bandwidth < 0:
            raise ConfigurationError(f"bandwidth must be >= 0: {self.bandwidth}")
        if self.contention not in CONTENTION_MODES:
            raise ConfigurationError(
                f"contention must be one of {CONTENTION_MODES}, "
                f"got {self.contention!r}"
            )
        if self.contention != "none" and self.bandwidth <= 0:
            raise ConfigurationError(
                f"contention {self.contention!r} needs a finite bandwidth; "
                "a latency-only link has no serialisation to contend for"
            )
        if self.energy_per_mb < 0:
            raise ConfigurationError(
                f"energy_per_mb must be >= 0: {self.energy_per_mb}"
            )
        if self.idle_watts < 0 or self.busy_watts < 0:
            raise ConfigurationError(
                f"link power must be >= 0: idle={self.idle_watts}, "
                f"busy={self.busy_watts}"
            )
        if self.cross_traffic is not None and self.contention == "none":
            raise ConfigurationError(
                "cross_traffic needs a queueing discipline (contention "
                "'fifo' or 'ps'): the 'none' model lets transfers overlap "
                "for free, so there is no shared pipe for background "
                "traffic to occupy"
            )

    def delay_for(self, megabytes: float) -> float:
        """Transfer time of a payload over this link (uncontended)."""
        if megabytes < 0:
            raise ConfigurationError(f"payload must be >= 0: {megabytes}")
        if self.bandwidth > 0 and megabytes > 0:
            return self.latency + megabytes / self.bandwidth
        return self.latency

    def service_time(self, megabytes: float) -> float:
        """Serialisation time of a payload: the part transfers contend for."""
        if self.bandwidth > 0 and megabytes > 0:
            return megabytes / self.bandwidth
        return 0.0

    def transfer_energy(self, megabytes: float) -> float:
        """Joules to push a payload across this link (J/MB cost only)."""
        return self.energy_per_mb * megabytes

    @property
    def is_contended(self) -> bool:
        """True when concurrent transfers queue instead of overlapping."""
        return self.contention != "none"

    @property
    def has_energy_model(self) -> bool:
        """True when the link accounts energy (J/MB or electrical power)."""
        return (
            self.energy_per_mb > 0
            or self.idle_watts > 0
            or self.busy_watts > 0
        )

    # -- JSON round-trip ----------------------------------------------------------

    def to_spec(self) -> Any:
        """Compact JSON form: ``[latency, bandwidth]`` for plain links, a
        mapping once contention or energy parameters are set (so legacy
        scenario files round-trip byte-identically)."""
        if self.contention == "none" and not self.has_energy_model:
            return [self.latency, self.bandwidth]
        out: dict[str, Any] = {
            "latency": self.latency,
            "bandwidth": self.bandwidth,
            "contention": self.contention,
        }
        if self.energy_per_mb:
            out["energy_per_mb"] = self.energy_per_mb
        if self.idle_watts:
            out["idle_watts"] = self.idle_watts
        if self.busy_watts:
            out["busy_watts"] = self.busy_watts
        if self.cross_traffic is not None:
            out["cross_traffic"] = self.cross_traffic.to_spec()
        return out

    _SPEC_KEYS = frozenset(
        ("latency", "bandwidth", "contention", "energy_per_mb",
         "idle_watts", "busy_watts", "cross_traffic")
    )

    @classmethod
    def from_spec(cls, spec: Any) -> "Link":
        """Inverse of :meth:`to_spec` (accepts both forms)."""
        if isinstance(spec, Mapping):
            unknown = set(spec) - cls._SPEC_KEYS
            if unknown:
                raise ConfigurationError(
                    f"unknown link spec key(s) {sorted(unknown)}; "
                    f"allowed: {sorted(cls._SPEC_KEYS)}"
                )
            raw_traffic = spec.get("cross_traffic")
            return cls(
                latency=float(spec.get("latency", 0.0)),
                bandwidth=float(spec.get("bandwidth", 0.0)),
                contention=str(spec.get("contention", "none")),
                energy_per_mb=float(spec.get("energy_per_mb", 0.0)),
                idle_watts=float(spec.get("idle_watts", 0.0)),
                busy_watts=float(spec.get("busy_watts", 0.0)),
                cross_traffic=(
                    None
                    if raw_traffic is None
                    else cross_traffic_from_spec(raw_traffic)
                ),
            )
        return cls(float(spec[0]), float(spec[1]))


@dataclass
class StarTopology:
    """Scheduler-to-machines star with per-machine-type links."""

    links: dict[str, Link] = field(default_factory=dict)
    default: Link = field(default_factory=Link)

    def link_for(self, machine_type_name: str) -> Link:
        """Effective link toward one machine type (falls back to default)."""
        return self.links.get(machine_type_name, self.default)

    def set_link(
        self, machine_type_name: str, latency: float, bandwidth: float = 0.0
    ) -> "StarTopology":
        """Set the link toward one machine type (chainable)."""
        self.links[machine_type_name] = Link(latency, bandwidth)
        return self

    def as_scenario_network(
        self, machine_type_names: Iterable[str] | None = None
    ) -> dict[str, tuple[float, float]]:
        """The ``network=`` mapping a Scenario expects.

        Pass *machine_type_names* (the EET columns) to materialise an entry
        for **every** machine type, explicit or defaulted — a round-trip
        through :class:`~repro.core.config.Scenario` only preserves the
        entries of this mapping, so machine types that silently fell back to
        ``self.default`` would otherwise come back with a zero link.
        Without the names, a non-trivial default cannot be exported and this
        raises instead of silently dropping it.
        """
        if machine_type_names is not None:
            names = list(dict.fromkeys(machine_type_names))
            out = {
                name: (link.latency, link.bandwidth)
                for name, link in self.links.items()
            }
            for name in names:
                link = self.link_for(name)
                out.setdefault(name, (link.latency, link.bandwidth))
            return out
        if self.default.latency > 0 or self.default.bandwidth > 0:
            raise ConfigurationError(
                "StarTopology has a non-trivial default link; pass "
                "machine_type_names to as_scenario_network() so machine "
                "types without an explicit link keep the default instead "
                "of dropping to a zero link"
            )
        return {
            name: (link.latency, link.bandwidth)
            for name, link in self.links.items()
        }

    @classmethod
    def uniform(
        cls,
        machine_type_names: Mapping[str, object] | list[str],
        latency: float,
        bandwidth: float = 0.0,
    ) -> "StarTopology":
        """Same link characteristics toward every machine type."""
        names = list(machine_type_names)
        topo = cls()
        for name in names:
            topo.set_link(str(name), latency, bandwidth)
        return topo


_ZERO_LINK = Link()


@dataclass
class InterClusterTopology:
    """WAN links between named cluster sites (federation extension).

    ``links`` maps directed ``(src, dst)`` cluster-name pairs to
    :class:`Link` parameters; with ``symmetric=True`` (the default) a lookup
    for ``(a, b)`` falls back to ``(b, a)`` before the ``default`` link, so
    one entry per unordered pair suffices. Intra-cluster traffic
    (``src == dst``) is always free — the local dispatch never pays a WAN
    delay.
    """

    links: dict[tuple[str, str], Link] = field(default_factory=dict)
    default: Link = field(default_factory=Link)
    symmetric: bool = True

    def link_between(self, src: str, dst: str) -> Link:
        """Effective link from cluster *src* to cluster *dst*."""
        if src == dst:
            return _ZERO_LINK
        link = self.links.get((src, dst))
        if link is None and self.symmetric:
            link = self.links.get((dst, src))
        return link if link is not None else self.default

    def link_key(self, src: str, dst: str) -> tuple[str, str]:
        """Identity of the *physical* link carrying ``src → dst`` traffic.

        Contention and energy state (:mod:`repro.net.wan`) is tracked per
        physical link, not per direction of traffic: with ``symmetric=True``
        both directions of a cluster pair share one pipe, so this returns
        one canonical key for either direction. Distinct directed entries
        (or an asymmetric topology) keep separate keys — two one-way pipes.
        """
        if (src, dst) in self.links:
            return (src, dst)
        if self.symmetric:
            if (dst, src) in self.links:
                return (dst, src)
            return (src, dst) if src <= dst else (dst, src)
        return (src, dst)

    def set_link(
        self,
        src: str,
        dst: str,
        latency: float,
        bandwidth: float = 0.0,
        *,
        contention: str = "none",
        energy_per_mb: float = 0.0,
        idle_watts: float = 0.0,
        busy_watts: float = 0.0,
        cross_traffic: "CrossTraffic | None" = None,
    ) -> "InterClusterTopology":
        """Set the directed src→dst link, with contention/energy (chainable)."""
        if src == dst:
            raise ConfigurationError(
                f"intra-cluster link {src!r}->{dst!r} is implicit and free"
            )
        self.links[(src, dst)] = Link(
            latency,
            bandwidth,
            contention=contention,
            energy_per_mb=energy_per_mb,
            idle_watts=idle_watts,
            busy_watts=busy_watts,
            cross_traffic=cross_traffic,
        )
        return self

    def wan_delay(self, src: str, dst: str, megabytes: float) -> float:
        """Transfer time of a payload offloaded from *src* to *dst*."""
        if src == dst:
            return 0.0
        return self.link_between(src, dst).delay_for(megabytes)

    def min_link_lookahead(self, cluster_names: Sequence[str]) -> float:
        """Minimum latency over every effective inter-cluster link.

        This is the *conservative lookahead* of parallel federated
        execution: any event one site causes at another is mediated by a
        WAN transfer, so it lands at least this far in the future — shards
        may therefore advance through a window of this width without
        waiting on each other.

        Raises :class:`~repro.core.errors.ConfigurationError` when any
        effective link between the given sites has zero latency: a
        zero-delay link collapses the lookahead window to nothing (remote
        effects become instantaneous), so conservative windowed execution
        is impossible — run such federations serially.
        """
        names = list(cluster_names)
        if len(names) < 2:
            raise ConfigurationError(
                "lookahead needs at least two clusters; got "
                f"{names!r}"
            )
        lookahead = float("inf")
        for i, src in enumerate(names):
            for dst in names[i + 1:]:
                for a, b in ((src, dst), (dst, src)):
                    latency = self.link_between(a, b).latency
                    if latency <= 0.0:
                        raise ConfigurationError(
                            f"link {a!r}->{b!r} has zero latency: "
                            "conservative parallel execution needs a "
                            "positive lookahead window (every WAN link "
                            "must have latency > 0); run this federation "
                            "serially instead"
                        )
                    lookahead = min(lookahead, latency)
        return lookahead

    @classmethod
    def uniform(
        cls,
        cluster_names: Iterable[str],
        latency: float,
        bandwidth: float = 0.0,
        *,
        contention: str = "none",
        energy_per_mb: float = 0.0,
        idle_watts: float = 0.0,
        busy_watts: float = 0.0,
        cross_traffic: "CrossTraffic | None" = None,
    ) -> "InterClusterTopology":
        """Same WAN characteristics between every pair of clusters.

        Expressed purely through the ``default`` link — ``link_between``
        already falls back to it for every pair, so no per-pair entries are
        materialised (or serialised). ``cluster_names`` is accepted for
        symmetry with :meth:`StarTopology.uniform` but only documents intent.
        Each cluster pair still gets its *own* contention/energy state
        (falling back to one shared parameter set is not one shared pipe).
        """
        return cls(
            default=Link(
                latency,
                bandwidth,
                contention=contention,
                energy_per_mb=energy_per_mb,
                idle_watts=idle_watts,
                busy_watts=busy_watts,
                cross_traffic=cross_traffic,
            )
        )

    @classmethod
    def from_star(
        cls, star: StarTopology, cluster_names: Iterable[str], hub: str
    ) -> "InterClusterTopology":
        """Lift a scheduler-centric star into a cluster-pair topology.

        Every cluster keeps the link it had toward the star hub; traffic
        between two non-hub clusters pays both spoke links in sequence,
        approximated here as the sum of latencies over the minimum
        bandwidth (the bottleneck spoke).
        """
        names = [str(n) for n in cluster_names]
        topo = cls(default=star.default)
        for name in names:
            if name == hub:
                continue
            spoke = star.link_for(name)
            topo.set_link(hub, name, spoke.latency, spoke.bandwidth)
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                if hub in (a, b):
                    continue
                la, lb = star.link_for(a), star.link_for(b)
                bandwidths = [x for x in (la.bandwidth, lb.bandwidth) if x > 0]
                topo.set_link(
                    a,
                    b,
                    la.latency + lb.latency,
                    min(bandwidths) if bandwidths else 0.0,
                )
        return topo

    # -- JSON round-trip ----------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (links in the compact or mapping spec form)."""
        return {
            "links": {
                f"{src}->{dst}": link.to_spec()
                for (src, dst), link in sorted(self.links.items())
            },
            "default": self.default.to_spec(),
            "symmetric": self.symmetric,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "InterClusterTopology":
        links: dict[tuple[str, str], Link] = {}
        for key, value in dict(data.get("links", {})).items():
            src, sep, dst = str(key).partition("->")
            if not sep or not src or not dst:
                raise ConfigurationError(
                    f"inter-cluster link key must be 'src->dst', got {key!r}"
                )
            links[(src, dst)] = Link.from_spec(value)
        return cls(
            links=links,
            default=Link.from_spec(data.get("default", [0.0, 0.0])),
            symmetric=bool(data.get("symmetric", True)),
        )
