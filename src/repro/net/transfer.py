"""Data-transfer delay model (communication extension, DESIGN.md S17).

The paper's future work (§7) names "various communication paradigms". This
extension models the scheduler→machine links of the Fig-1 star topology:
assigning a task to a machine incurs a delivery delay

    delay = link_latency + data_in / link_bandwidth        (bandwidth > 0)
    delay = link_latency                                    (latency-only link)

during which the task occupies its machine-queue slot but cannot start
(``Task.available_at``). Delays use each machine type's link parameters and
each task type's input payload size.
"""

from __future__ import annotations

from ..machines.machine_type import MachineType
from ..tasks.task_type import TaskType

__all__ = ["transfer_delay", "output_return_delay"]


def transfer_delay(task_type: TaskType, machine_type: MachineType) -> float:
    """Seconds from mapping decision to the task being runnable on the machine."""
    delay = machine_type.network_latency
    if machine_type.network_bandwidth > 0 and task_type.data_in > 0:
        delay += task_type.data_in / machine_type.network_bandwidth
    return delay


def output_return_delay(task_type: TaskType, machine_type: MachineType) -> float:
    """Seconds to ship the task's results back over the same link.

    Not on the critical path of the machine (the machine is free once
    execution ends); exposed for end-to-end latency studies.
    """
    delay = machine_type.network_latency
    if machine_type.network_bandwidth > 0 and task_type.data_out > 0:
        delay += task_type.data_out / machine_type.network_bandwidth
    return delay
