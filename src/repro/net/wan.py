"""WAN links as queueing resources: contention + energy for federations.

PR 3's federation layer charged every offload an *independent*
``latency + size/bandwidth`` delay: two transfers entering the same WAN link
at the same instant overlapped for free, and moving a megabyte cost no
energy. This module turns each inter-cluster link into a first-class
simulated resource:

* :class:`LinkChannel` — the per-physical-link state machine. Transfers are
  split into a **serialisation** phase (payload bytes occupy the pipe; this
  is what concurrent transfers contend for) followed by a **propagation**
  phase (the link's latency; propagation always overlaps). The channel runs
  the link's configured discipline (:attr:`repro.net.topology.Link.contention`):

  - ``"none"`` — the legacy model, kept bit-identical: one delivery event per
    transfer at ``submit + latency + size/bandwidth``, no interaction.
  - ``"fifo"`` — transfers serialise one at a time in arrival order; the
    channel keeps a queue and one in-service transfer whose completion is a
    :attr:`~repro.core.events.EventType.LINK_TRANSFER` event on the shared
    federation heap.
  - ``"ps"`` — processor sharing: all in-flight transfers split the
    bandwidth equally; on every membership change the channel re-integrates
    remaining payloads and reschedules the next finisher.

* :class:`WanManager` — owns every channel of a federation (lazily, keyed by
  :meth:`~repro.net.topology.InterClusterTopology.link_key` so symmetric
  traffic shares one pipe), submits/cancels/delivers transfers, accumulates
  WAN time, and produces the per-link usage + energy report.

Energy model (per link): ``energy_per_mb`` joules are charged as payload
megabytes are serialised (cancelled transfers pay only for the fraction
that crossed); ``busy_watts`` accrues while the link is serialising at least
one transfer and ``idle_watts`` for the rest of the run. For ``"none"``
links the busy time is the *sum* of individual serialisation times (the
discipline lets transfers overlap for free, so there is no shared busy
interval to integrate — documented approximation).

Links may additionally carry a background **cross-traffic** process (see
:mod:`repro.net.crosstraffic`): the channel then serves transfers at the
residual capacity ``bandwidth * (1 - u(t))``, re-integrating in-flight
payloads at every utilisation epoch via ``CROSS_TRAFFIC`` tick events that
exist only while the pipe is busy. Channels without cross-traffic take the
exact legacy arithmetic paths, so historical runs stay bit-identical.

Deadline cancellation is exact for every phase: a queued transfer is lazily
removed, an in-service transfer frees the link immediately (FIFO starts the
next queued transfer; PS re-shares the bandwidth), and a propagating
transfer's delivery event is cancelled. Conservation — every routed task
reaches a terminal state — is unchanged because the federation records the
cancelled task exactly as the uncontended path did.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..core.errors import SimulationStateError
from ..core.events import Event, EventType
from ..core.rng import derive_seed
from .crosstraffic import CrossTrafficState
from .topology import InterClusterTopology, Link

if TYPE_CHECKING:  # pragma: no cover
    from ..core.event_queue import EventQueue
    from ..tasks.task import Task

__all__ = [
    "TransferPhase",
    "WanTransfer",
    "LinkChannel",
    "LinkUsage",
    "WanManager",
]

#: Residual-payload tolerance (MB) under which a PS transfer counts as done.
_EPS_MB = 1e-9

#: Transfers a WanManager keeps pooled for slot reuse (bounds pool memory).
_POOL_MAX = 512

# Enum member access costs an attribute lookup per hit on CPython; the WAN
# channel machinery sits on the contended-federation hot path, so the members
# it tests/schedules with are bound once at module level.
_LINK_TRANSFER = EventType.LINK_TRANSFER
_CROSS_TRAFFIC_EVENT = EventType.CROSS_TRAFFIC


class TransferPhase(enum.Enum):
    """Lifecycle of one WAN transfer inside its link channel."""

    DIRECT = "direct"            # legacy "none" discipline: single delivery event
    QUEUED = "queued"            # FIFO: waiting for the pipe
    SERVING = "serving"          # serialising (FIFO head, or PS member)
    PROPAGATING = "propagating"  # serialised; latency left before delivery
    DELIVERED = "delivered"      # reached the destination shard
    CANCELLED = "cancelled"      # deadline fired while still in the WAN


class WanTransfer:
    """One task crossing one WAN link (the unit the channels queue).

    Mutable bookkeeping object; the federation holds it as the cancellation
    handle for a task that is still in the WAN (the contended twin of the
    bare delivery :class:`~repro.core.events.Event` PR 3 stored).
    """

    __slots__ = (
        "task",
        "megabytes",
        "dst_index",
        "submitted_at",
        "started_at",
        "remaining_mb",
        "phase",
        "channel",
        "service_event",
        "delivery_event",
        "kind",
        "tag",
    )

    def __init__(
        self,
        task: "Task",
        megabytes: float,
        dst_index: int,
        submitted_at: float,
        channel: "LinkChannel",
        kind: EventType = EventType.TASK_ARRIVAL,
        tag: int | tuple[int, ...] | None = None,
    ) -> None:
        self.task = task
        self.megabytes = megabytes
        self.dst_index = dst_index
        self.submitted_at = submitted_at
        self.started_at = submitted_at
        self.remaining_mb = megabytes
        self.phase = TransferPhase.QUEUED
        self.channel = channel
        self.service_event: Event | None = None
        self.delivery_event: Event | None = None
        #: Event kind of the delivery (TASK_ARRIVAL for gateway offloads,
        #: TASK_MIGRATION for mid-queue migrations); both kinds share the
        #: link's pipe and pay the same energy — only dispatch differs.
        self.kind = kind
        #: ``Event.cluster`` value stamped on the delivery event. Defaults
        #: to ``dst_index`` (the flat, single-hop form); hierarchical
        #: federations tag intermediate hops with the remaining node path
        #: instead (:mod:`repro.federation.hierarchy`).
        self.tag: int | tuple[int, ...] = dst_index if tag is None else tag

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WanTransfer(task={self.task.id}, mb={self.megabytes}, "
            f"phase={self.phase.value}, link={self.channel.label})"
        )


@dataclass(frozen=True)
class LinkUsage:
    """Traffic + energy account of one physical WAN link over a run.

    ``busy_time`` is the time the link spent serialising at least one
    transfer (for ``"none"`` links: the sum of serialisation times, since
    that discipline lets transfers overlap). ``transfer_energy`` is the
    J/MB payload cost; ``active_energy``/``idle_energy`` integrate the
    link's electrical power over busy/idle time.
    """

    delivered: int
    abandoned: int
    mb_delivered: float
    mb_abandoned: float
    busy_time: float
    wait_time: float
    transfer_energy: float
    active_energy: float
    idle_energy: float

    @property
    def total_energy(self) -> float:
        """All joules attributable to this link."""
        return self.transfer_energy + self.active_energy + self.idle_energy

    def utilization(self, end_time: float) -> float:
        """Fraction of the run the link spent serialising."""
        return self.busy_time / end_time if end_time > 0 else 0.0

    def as_dict(self) -> dict[str, float]:
        """Flat numeric form for CSV/JSON reporting."""
        out = {
            "delivered": float(self.delivered),
            "abandoned": float(self.abandoned),
            "mb_delivered": self.mb_delivered,
            "mb_abandoned": self.mb_abandoned,
            "busy_time": self.busy_time,
            "wait_time": self.wait_time,
            "transfer_energy": self.transfer_energy,
            "active_energy": self.active_energy,
            "idle_energy": self.idle_energy,
            "total_energy": self.total_energy,
        }
        return out


class LinkChannel:
    """Contention + energy state of one physical WAN link.

    Created lazily by :class:`WanManager` the first time traffic touches a
    link; keyed by the topology's canonical
    :meth:`~repro.net.topology.InterClusterTopology.link_key`, so with a
    symmetric topology both directions of a cluster pair share this state —
    one pipe, as on a real WAN.
    """

    __slots__ = (
        "key",
        "label",
        "link",
        "_events",
        "_fifo_mode",
        "_ps_mode",
        "_serving",
        "_fifo",
        "_queued_mb",
        "_active",
        "_last_update",
        "_next_finish",
        "_rate",
        "_traffic",
        "_tick",
        "_drained_at",
        "busy_time",
        "wait_time",
        "transfer_energy",
        "mb_delivered",
        "mb_abandoned",
        "delivered",
        "abandoned",
    )

    def __init__(
        self,
        key: tuple[str, str],
        link: Link,
        events: "EventQueue",
        label: str | None = None,
        cross_traffic: "CrossTrafficState | None" = None,
    ) -> None:
        self.key = key
        self.label = label if label is not None else f"{key[0]}->{key[1]}"
        self.link = link
        self._events = events
        # The discipline never changes after construction; every hot method
        # branches on it, so the string compare is resolved once here.
        self._fifo_mode = link.contention == "fifo"
        self._ps_mode = link.contention == "ps"
        # FIFO state
        self._serving: WanTransfer | None = None
        self._fifo: deque[WanTransfer] = deque()
        self._queued_mb = 0.0
        # PS state
        self._active: list[WanTransfer] = []
        self._last_update = 0.0
        self._next_finish: Event | None = None
        # Cross-traffic state. ``_rate`` is the residual capacity (MB/s)
        # simulated transfers currently serve at; without cross-traffic it
        # is exactly ``link.bandwidth`` forever, so the drain/reschedule
        # arithmetic below is bit-identical to the unmodulated engine.
        self._rate = link.bandwidth
        self._traffic = cross_traffic
        self._tick: Event | None = None
        self._drained_at = 0.0
        # accounting
        self.busy_time = 0.0
        self.wait_time = 0.0
        self.transfer_energy = 0.0
        self.mb_delivered = 0.0
        self.mb_abandoned = 0.0
        self.delivered = 0
        self.abandoned = 0

    # -- signals for gateway policies ------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Transfers currently occupying or waiting for the pipe."""
        if self._fifo_mode:
            waiting = sum(
                1 for t in self._fifo if t.phase is TransferPhase.QUEUED
            )
            return waiting + (1 if self._serving is not None else 0)
        if self._ps_mode:
            return len(self._active)
        return 0

    def estimated_delay(self, megabytes: float, now: float) -> float:
        """Expected in-WAN time of a payload submitted now (backlog-aware).

        FIFO: remaining service of the head + queued payloads + own
        serialisation + latency. PS: own serialisation stretched by the
        current sharing factor + latency (optimistic — departures speed it
        up, joiners slow it down). ``"none"``: the static
        :meth:`~repro.net.topology.Link.delay_for`.
        """
        link = self.link
        if self._fifo_mode:
            backlog = self._queued_mb / self._rate
            head = self._serving
            if head is not None and head.service_event is not None:
                backlog += max(0.0, head.service_event.time - now)
            return backlog + link.latency + self._service_time(megabytes)
        if self._ps_mode:
            share = len(self._active) + 1
            return link.latency + self._service_time(megabytes) * share
        return link.delay_for(megabytes)

    def _service_time(self, megabytes: float) -> float:
        """Serialisation time at the current residual capacity.

        Identical to :meth:`~repro.net.topology.Link.service_time` while no
        cross-traffic is attached (the rate then equals the bandwidth).
        """
        if self._rate > 0 and megabytes > 0:
            return megabytes / self._rate
        return 0.0

    # -- background cross-traffic -------------------------------------------------------

    def _sync_cross_traffic(self, now: float) -> None:
        """Apply the background utilisation in effect at *now*.

        Called before any submit/tick under the old rate has been integrated
        up to *now*; cheap no-op while the utilisation epoch is unchanged.
        """
        traffic = self._traffic
        if traffic is None:
            return
        rate = self.link.bandwidth * (1.0 - traffic.utilisation_at(now))
        if rate != self._rate:
            self._set_rate(rate, now)

    def _set_rate(self, rate: float, now: float) -> None:
        """Switch the residual capacity, re-integrating in-flight payloads."""
        if self._ps_mode:
            self._elapse(now)  # drain under the outgoing rate first
            self._rate = rate
            if self._active:
                self._reschedule(now)
            return
        # FIFO: drain the serving transfer under the outgoing rate, then
        # re-plan its completion at the new one.
        serving = self._serving
        if serving is not None:
            self._drain_serving(now)
        self._rate = rate
        if serving is not None:
            when = now + self._service_time(max(serving.remaining_mb, 0.0))
            stale = serving.service_event
            if stale is not None:
                if stale.time == when:
                    # Coalesced: the rate change leaves the completion where
                    # it already is (e.g. the payload has fully drained) —
                    # keep the scheduled event, skip the cancel + re-push.
                    return
                self._events.cancel(stale)
            serving.service_event = self._events.push(
                Event(when, _LINK_TRANSFER, self)
            )

    def _drain_serving(self, now: float) -> None:
        """Integrate the FIFO head's payload drain since the last update."""
        serving = self._serving
        if serving is not None:
            dt = now - self._drained_at
            if dt > 0:
                serving.remaining_mb = max(
                    serving.remaining_mb - dt * self._rate, 0.0
                )
        self._drained_at = now

    def _busy(self) -> bool:
        """At least one transfer is serialising on this pipe."""
        return self._serving is not None or bool(self._active)

    def _schedule_tick(self, now: float) -> None:
        """Plan the next utilisation-change event while the pipe is busy.

        An idle channel schedules nothing — the process is advanced lazily
        at the next submit — so cross-traffic never keeps the future-event
        list non-empty after the workload drains.
        """
        traffic = self._traffic
        if traffic is None or self._tick is not None or not self._busy():
            return
        self._tick = self._events.push(
            Event(traffic.next_boundary(now), _CROSS_TRAFFIC_EVENT, self)
        )

    def _cancel_tick(self) -> None:
        if self._tick is not None:
            self._events.cancel(self._tick)
            self._tick = None

    def on_traffic_tick(self, now: float) -> None:
        """A CROSS_TRAFFIC event fired: enter the next utilisation epoch."""
        self._tick = None
        self._sync_cross_traffic(now)
        self._schedule_tick(now)

    # -- submission --------------------------------------------------------------------

    def submit(self, transfer: WanTransfer, now: float) -> None:
        """Admit a transfer; schedules whatever event its discipline needs."""
        if self._traffic is not None:
            self._sync_cross_traffic(now)
        if self._fifo_mode:
            if self._serving is None:
                self._start_service(transfer, now)
            else:
                transfer.phase = TransferPhase.QUEUED
                self._fifo.append(transfer)
                self._queued_mb += transfer.megabytes
            self._schedule_tick(now)
            return
        if self._ps_mode:
            self._elapse(now)
            transfer.phase = TransferPhase.SERVING
            transfer.started_at = now
            self._active.append(transfer)
            self._reschedule(now)
            self._schedule_tick(now)
            return
        # "none": the legacy single delivery event, scheduled by the caller
        # (WanManager) so the event creation order matches PR 3 exactly.
        transfer.phase = TransferPhase.DIRECT

    # -- FIFO machinery ---------------------------------------------------------------

    def _start_service(self, transfer: WanTransfer, now: float) -> None:
        transfer.phase = TransferPhase.SERVING
        transfer.started_at = now
        self.wait_time += now - transfer.submitted_at
        self._drained_at = now
        transfer.service_event = self._events.push(
            Event(
                now + self._service_time(transfer.remaining_mb),
                _LINK_TRANSFER,
                self,
            )
        )
        self._serving = transfer

    def _start_next(self, now: float) -> None:
        while self._fifo:
            candidate = self._fifo.popleft()
            if candidate.phase is TransferPhase.CANCELLED:
                continue
            self._queued_mb -= candidate.megabytes
            self._start_service(candidate, now)
            return

    # -- PS machinery -----------------------------------------------------------------

    def _elapse(self, now: float) -> None:
        """Integrate payload drain (and busy time) since the last update."""
        active = self._active
        if active:
            dt = now - self._last_update
            if dt > 0:
                drained = dt * self._rate / len(active)
                for transfer in active:
                    transfer.remaining_mb -= drained
                self.busy_time += dt
        self._last_update = now

    def _reschedule(self, now: float) -> None:
        stale = self._next_finish
        active = self._active
        if active:
            min_remaining = min(t.remaining_mb for t in active)
            dt = max(min_remaining, 0.0) * len(active) / self._rate
            when = now + dt
            if stale is not None:
                if stale.time == when:
                    # Coalesced: the membership/rate change did not move the
                    # next serialisation milestone (e.g. a joiner with zero
                    # payload) — keep the scheduled event as-is.
                    return
                self._events.cancel(stale)
            self._next_finish = self._events.push(
                Event(when, _LINK_TRANSFER, self)
            )
        elif stale is not None:
            self._events.cancel(stale)
            self._next_finish = None

    # -- the LINK_TRANSFER event handler ------------------------------------------------

    def on_fire(self, now: float) -> None:
        """A serialisation milestone on this link fired."""
        if self._fifo_mode:
            transfer = self._serving
            if transfer is None:  # pragma: no cover - defensive
                raise SimulationStateError(
                    f"link {self.label}: serialisation event fired while idle"
                )
            transfer.service_event = None
            self._serving = None
            self.busy_time += now - transfer.started_at
            self._finish_serialisation(transfer, now)
            self._start_next(now)
            if self._traffic is not None and self._serving is None:
                self._cancel_tick()
            return
        if self._ps_mode:
            self._next_finish = None
            self._elapse(now)
            finished = [
                t for t in self._active if t.remaining_mb <= _EPS_MB
            ]
            if not finished and self._active:  # float residue guard
                finished = [min(self._active, key=lambda t: t.remaining_mb)]
            for transfer in finished:
                self._active.remove(transfer)
                self._finish_serialisation(transfer, now)
            self._reschedule(now)
            if self._traffic is not None and not self._active:
                self._cancel_tick()
            return
        raise SimulationStateError(  # pragma: no cover - defensive
            f"link {self.label}: discipline {self.link.contention!r} "
            "schedules no serialisation events"
        )

    def _finish_serialisation(self, transfer: WanTransfer, now: float) -> None:
        """Payload fully across the pipe; propagate, then deliver."""
        self.transfer_energy += self.link.transfer_energy(transfer.megabytes)
        self.mb_delivered += transfer.megabytes
        transfer.remaining_mb = 0.0
        transfer.phase = TransferPhase.PROPAGATING
        transfer.delivery_event = self._events.push(
            Event(
                now + self.link.latency,
                transfer.kind,
                transfer.task,
                cluster=transfer.tag,
            )
        )

    # -- delivery / cancellation --------------------------------------------------------

    def on_delivered(self, transfer: WanTransfer) -> None:
        """The transfer's task reached its destination shard."""
        if transfer.phase is TransferPhase.DIRECT:
            # Legacy discipline: all accounting happens at delivery.
            serial = self.link.service_time(transfer.megabytes)
            self.busy_time += serial
            self.transfer_energy += self.link.transfer_energy(
                transfer.megabytes
            )
            self.mb_delivered += transfer.megabytes
        transfer.phase = TransferPhase.DELIVERED
        transfer.delivery_event = None
        self.delivered += 1

    def record_instant(self, megabytes: float) -> None:
        """A zero-delay offload (no event): count payload + energy only."""
        self.transfer_energy += self.link.transfer_energy(megabytes)
        self.mb_delivered += megabytes
        self.delivered += 1

    def cancel(self, transfer: WanTransfer, now: float) -> None:
        """Deadline fired while the transfer was still in the WAN."""
        link = self.link
        phase = transfer.phase
        self.abandoned += 1
        if phase is TransferPhase.QUEUED:
            # Lazily removed from the FIFO by _start_next.
            self._queued_mb -= transfer.megabytes
            self.mb_abandoned += transfer.megabytes
            self.wait_time += now - transfer.submitted_at
        elif phase is TransferPhase.SERVING:
            if self._fifo_mode:
                elapsed = now - transfer.started_at
                if self._traffic is None:
                    # Legacy arithmetic, kept verbatim: golden runs compare
                    # these energies bit-for-bit.
                    service = link.service_time(transfer.megabytes)
                    fraction = elapsed / service if service > 0 else 1.0
                    energy = link.transfer_energy(transfer.megabytes) * fraction
                else:
                    # Residual capacity varied mid-service: the drained
                    # payload, not elapsed/service, is what crossed.
                    self._drain_serving(now)
                    crossed = transfer.megabytes - max(
                        transfer.remaining_mb, 0.0
                    )
                    energy = link.energy_per_mb * crossed
                self.busy_time += elapsed
                self.transfer_energy += energy
                self.mb_abandoned += transfer.megabytes
                if transfer.service_event is not None:
                    self._events.cancel(transfer.service_event)
                    transfer.service_event = None
                self._serving = None
                self._start_next(now)
            else:  # ps
                self._elapse(now)
                self._active.remove(transfer)
                crossed = transfer.megabytes - max(transfer.remaining_mb, 0.0)
                self.transfer_energy += link.energy_per_mb * crossed
                self.mb_abandoned += transfer.megabytes
                self._reschedule(now)
            if self._traffic is not None and not self._busy():
                self._cancel_tick()
        elif phase is TransferPhase.PROPAGATING:
            # Payload already crossed (and was charged); only the delivery
            # is abandoned.
            if transfer.delivery_event is not None:
                self._events.cancel(transfer.delivery_event)
                transfer.delivery_event = None
        elif phase is TransferPhase.DIRECT:
            if transfer.delivery_event is not None:
                self._events.cancel(transfer.delivery_event)
                transfer.delivery_event = None
            serial = link.service_time(transfer.megabytes)
            elapsed = now - transfer.submitted_at
            crossed_time = min(elapsed, serial)
            fraction = crossed_time / serial if serial > 0 else 1.0
            self.busy_time += crossed_time
            self.transfer_energy += (
                link.transfer_energy(transfer.megabytes) * fraction
            )
            self.mb_abandoned += transfer.megabytes
        else:  # pragma: no cover - defensive
            raise SimulationStateError(
                f"cannot cancel transfer of task {transfer.task.id} "
                f"in phase {phase.value}"
            )
        transfer.phase = TransferPhase.CANCELLED

    # -- reporting ---------------------------------------------------------------------

    def usage(self, end_time: float) -> LinkUsage:
        """Snapshot this link's traffic + energy account at *end_time*."""
        busy = self.busy_time
        # A partial-run snapshot may catch a transfer mid-serialisation;
        # integrate the open interval without mutating state.
        if self._active and end_time > self._last_update:
            busy += end_time - self._last_update
        if self._serving is not None and end_time > self._serving.started_at:
            busy += end_time - self._serving.started_at
        idle = max(end_time - busy, 0.0)
        return LinkUsage(
            delivered=self.delivered,
            abandoned=self.abandoned,
            mb_delivered=self.mb_delivered,
            mb_abandoned=self.mb_abandoned,
            busy_time=busy,
            wait_time=self.wait_time,
            transfer_energy=self.transfer_energy,
            active_energy=self.link.busy_watts * busy,
            idle_energy=self.link.idle_watts * idle,
        )


class WanManager:
    """Every WAN link channel of one federated run, plus totals.

    The federation submits each offloaded task here; the manager resolves
    the physical link (lazily creating its :class:`LinkChannel`), runs the
    link's discipline, and keeps the WAN-time total the federation reports.
    For ``"none"`` links it reproduces PR 3's event stream exactly — one
    delivery event per transfer, scheduled at submit — so golden runs
    recorded before contention existed stay bit-identical.
    """

    def __init__(
        self,
        topology: InterClusterTopology,
        events: "EventQueue",
        names: list[str],
        seed: int | None = None,
    ) -> None:
        self._topology = topology
        self._events = events
        self._names = names
        #: Root seed of the per-link cross-traffic substreams (each link's
        #: MMPP dwell sequence is derived from it by link key, so adding a
        #: link never perturbs another link's bursts).
        self._seed = seed
        self._channels: dict[tuple[str, str], LinkChannel] = {}
        #: Per-(origin, destination) resolved route — ``(channel, link,
        #: is_contended)`` memoized on first use so the submit/estimate hot
        #: paths skip the name → link_key → dict resolution chain. Entries
        #: appear only once traffic (or an estimate against an existing
        #: channel) touches the pair; channel creation stays exactly as lazy
        #: as before.
        n = len(names)
        self._route: list[list[tuple[LinkChannel, Link, bool] | None]] = [
            [None] * n for _ in range(n)
        ]
        #: Finished transfers parked for slot reuse (see :meth:`release`).
        self._pool: list[WanTransfer] = []
        #: Sum of every transfer's in-WAN time ("none": planned delay at
        #: submit, PR 3 semantics; contended: actual time, at delivery or
        #: cancellation).
        self.total_time = 0.0
        # Materialise channels for every energy-bearing link up front: an
        # idle WAN port burns joules whether or not traffic ever arrives,
        # so zero-traffic links must still appear in the energy report
        # (and idle power must not be discontinuous in the first offload).
        # Plain links stay lazy — no energy to account, no report row.
        for (src, dst), link in topology.links.items():
            if link.has_energy_model and src in names and dst in names:
                self.channel_between(src, dst)
        if topology.default.has_energy_model:
            for i, a in enumerate(names):
                for b in names[i + 1:]:
                    # Only pairs whose *effective* link carries the energy
                    # model: an explicit plain link overrides the default
                    # and must not produce an all-zero report row.
                    if topology.link_between(a, b).has_energy_model:
                        self.channel_between(a, b)
                    if not topology.symmetric and topology.link_between(
                        b, a
                    ).has_energy_model:
                        self.channel_between(b, a)

    # -- channel resolution ------------------------------------------------------------

    def channel_between(self, src: str, dst: str) -> LinkChannel:
        """The (lazily created) physical-link state for src→dst traffic."""
        key = self._topology.link_key(src, dst)
        channel = self._channels.get(key)
        if channel is None:
            shared = self._topology.symmetric and (
                key[1],
                key[0],
            ) not in self._topology.links
            link = self._topology.link_between(src, dst)
            state = None
            if link.cross_traffic is not None:
                state = link.cross_traffic.make_state(
                    derive_seed(self._seed, "crosstraffic", key[0], key[1])
                )
            channel = LinkChannel(
                key,
                link,
                self._events,
                label=(
                    f"{key[0]}<->{key[1]}" if shared else f"{key[0]}->{key[1]}"
                ),
                cross_traffic=state,
            )
            self._channels[key] = channel
        return channel

    def _route_to(
        self, origin: int, destination: int
    ) -> tuple[LinkChannel, Link, bool]:
        """The memoized physical route for origin→destination traffic."""
        route = self._route[origin][destination]
        if route is None:
            channel = self.channel_between(
                self._names[origin], self._names[destination]
            )
            route = (channel, channel.link, channel.link.is_contended)
            self._route[origin][destination] = route
        return route

    # -- gateway-facing signals ---------------------------------------------------------

    def estimated_delay(
        self, src: str, dst: str, megabytes: float, now: float
    ) -> float:
        """Backlog-aware expected in-WAN time of a payload src→dst at *now*."""
        if src == dst:
            return 0.0
        channel = self._channels.get(self._topology.link_key(src, dst))
        if channel is None:
            return self._topology.wan_delay(src, dst, megabytes)
        return channel.estimated_delay(megabytes, now)

    def estimated_delay_by_index(
        self, origin: int, destination: int, megabytes: float, now: float
    ) -> float:
        """Index-keyed twin of :meth:`estimated_delay` (the gateway hot path).

        Resolves the route through the memoized table instead of the
        name → link_key → dict chain. A pair whose channel does not exist
        yet still answers with the static topology delay — estimating never
        materialises a channel, exactly like the name-keyed path.
        """
        if origin == destination:
            return 0.0
        route = self._route[origin][destination]
        if route is None:
            src, dst = self._names[origin], self._names[destination]
            channel = self._channels.get(self._topology.link_key(src, dst))
            if channel is None:
                return self._topology.wan_delay(src, dst, megabytes)
            route = (channel, channel.link, channel.link.is_contended)
            self._route[origin][destination] = route
        return route[0].estimated_delay(megabytes, now)

    def queue_depth(self, src: str, dst: str) -> int:
        """Transfers occupying/waiting for the src→dst physical link."""
        if src == dst:
            return 0
        channel = self._channels.get(self._topology.link_key(src, dst))
        return 0 if channel is None else channel.queue_depth

    # -- transfer lifecycle -------------------------------------------------------------

    def submit(
        self,
        task: "Task",
        origin: int,
        destination: int,
        now: float,
        kind: EventType = EventType.TASK_ARRIVAL,
        tag: int | tuple[int, ...] | None = None,
    ) -> WanTransfer | None:
        """Route an offloaded (or migrated) task into the WAN.

        ``kind`` is the delivery event's type: ``TASK_ARRIVAL`` for gateway
        offloads, ``TASK_MIGRATION`` for mid-queue migrations — both contend
        for the same physical link. ``tag`` overrides the ``Event.cluster``
        value stamped on the delivery (hierarchical federations tag relay
        hops with the remaining node path; the default is ``destination``,
        the flat single-hop form). Returns the :class:`WanTransfer` handle
        the federation keeps for deadline cancellation, or ``None`` when the
        task crosses instantly (zero-delay link) and was already accounted.
        """
        channel, link, contended = self._route_to(origin, destination)
        megabytes = task.task_type.data_in
        if not contended:
            delay = link.delay_for(megabytes)
            if delay <= 0.0:
                channel.record_instant(megabytes)
                return None
            self.total_time += delay
            transfer = self._make_transfer(
                task, megabytes, destination, now, channel, kind, tag
            )
            channel.submit(transfer, now)
            transfer.delivery_event = self._events.push(
                Event(
                    now + delay,
                    kind,
                    task,
                    cluster=transfer.tag,
                )
            )
            return transfer
        transfer = self._make_transfer(
            task, megabytes, destination, now, channel, kind, tag
        )
        channel.submit(transfer, now)
        return transfer

    def _make_transfer(
        self,
        task: "Task",
        megabytes: float,
        destination: int,
        now: float,
        channel: LinkChannel,
        kind: EventType,
        tag: int | tuple[int, ...] | None = None,
    ) -> WanTransfer:
        """A fresh transfer handle, reusing a released slot when one exists."""
        pool = self._pool
        if pool:
            transfer = pool.pop()
            transfer.task = task
            transfer.megabytes = megabytes
            transfer.dst_index = destination
            transfer.submitted_at = now
            transfer.started_at = now
            transfer.remaining_mb = megabytes
            transfer.phase = TransferPhase.QUEUED
            transfer.channel = channel
            transfer.kind = kind
            transfer.tag = destination if tag is None else tag
            return transfer
        return WanTransfer(task, megabytes, destination, now, channel, kind, tag)

    def release(self, transfer: WanTransfer) -> None:
        """Park a finished transfer's slot for reuse by a later submit.

        Only call once no other component holds the handle (the federation
        does so after the delivery/cancellation bookkeeping ran). Transfers
        still in flight are ignored defensively; pooled slots drop their
        task/channel references so the pool never pins simulation state.
        """
        if transfer.phase not in (
            TransferPhase.DELIVERED,
            TransferPhase.CANCELLED,
        ):  # pragma: no cover - defensive
            return
        pool = self._pool
        if len(pool) < _POOL_MAX:
            transfer.task = None  # type: ignore[assignment]
            transfer.channel = None  # type: ignore[assignment]
            transfer.service_event = None
            transfer.delivery_event = None
            pool.append(transfer)

    def on_delivered(self, transfer: WanTransfer, now: float) -> None:
        """A WAN delivery event fired: the task is at its destination."""
        if transfer.phase is not TransferPhase.DIRECT:
            self.total_time += now - transfer.submitted_at
        transfer.channel.on_delivered(transfer)

    def cancel(self, transfer: WanTransfer, now: float) -> None:
        """Deadline fired mid-WAN; free the link and account the abandon."""
        if transfer.phase in (
            TransferPhase.QUEUED,
            TransferPhase.SERVING,
            TransferPhase.PROPAGATING,
        ):
            self.total_time += now - transfer.submitted_at
        transfer.channel.cancel(transfer, now)

    # -- event dispatch -----------------------------------------------------------------

    @staticmethod
    def on_link_event(event: Event, now: float) -> None:
        """Handle a LINK_TRANSFER event (payload is the owning channel)."""
        channel = event.payload
        if not isinstance(channel, LinkChannel):  # pragma: no cover
            raise SimulationStateError(
                f"LINK_TRANSFER event carries {type(channel).__name__}, "
                "expected a LinkChannel"
            )
        channel.on_fire(now)

    @staticmethod
    def on_cross_traffic(event: Event, now: float) -> None:
        """Handle a CROSS_TRAFFIC event (payload is the owning channel)."""
        channel = event.payload
        if not isinstance(channel, LinkChannel):  # pragma: no cover
            raise SimulationStateError(
                f"CROSS_TRAFFIC event carries {type(channel).__name__}, "
                "expected a LinkChannel"
            )
        channel.on_traffic_tick(now)

    # -- reporting ----------------------------------------------------------------------

    def usage(self, end_time: float) -> dict[str, LinkUsage]:
        """Per-link traffic/energy report, keyed by link label."""
        return {
            channel.label: channel.usage(end_time)
            for _, channel in sorted(self._channels.items())
        }
