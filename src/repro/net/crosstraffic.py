"""Background cross-traffic models for WAN links.

A federated simulation never has the WAN to itself: on a real inter-site
link the simulated offloads and migrations share the pipe with everyone
else's traffic. This module models that *background utilisation* as a
piecewise-constant process ``u(t) ∈ [0, MAX_UTILISATION]`` attached to a
:class:`~repro.net.topology.Link`; the link's
:class:`~repro.net.wan.LinkChannel` then serves simulated transfers at the
**residual capacity** ``bandwidth * (1 - u(t))``, re-integrating in-flight
payloads at every utilisation change.

Two generator families (both deterministic under a seed):

* :class:`DiurnalTraffic` — a sinusoidal day/night cycle
  ``u(t) = base + amplitude * sin(2π (t - phase) / period)``, sampled onto
  piecewise-constant epochs of length ``step``. Needs no randomness: the
  same spec always produces the same utilisation profile.
* :class:`MmppTraffic` — a two-state Markov-modulated process (the classic
  bursty-traffic model): the link alternates between a *quiet* and a
  *burst* utilisation level with exponentially distributed dwell times,
  drawn from a derived-seed RNG so replays are bit-identical.

Specs serialise to plain-JSON mappings (``to_spec`` /
:func:`cross_traffic_from_spec`) and ride on the link's JSON form
backwards-compatibly: links without cross-traffic keep their exact legacy
spec encoding.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass
from typing import Any, Mapping, Protocol

from ..core.errors import ConfigurationError
from ..core.rng import make_rng

__all__ = [
    "MAX_UTILISATION",
    "CrossTrafficState",
    "DiurnalTraffic",
    "MmppTraffic",
    "cross_traffic_from_spec",
]

#: Hard cap on background utilisation: the residual capacity never drops
#: below 5% of the nominal bandwidth, so every in-flight transfer keeps
#: making progress and serialisation events stay finite.
MAX_UTILISATION = 0.95


class CrossTrafficState(Protocol):
    """Runtime driver of one link's background-utilisation process.

    A state answers two monotone-time queries the
    :class:`~repro.net.wan.LinkChannel` needs: the piecewise-constant
    utilisation in effect at *t*, and the next instant it changes (so the
    channel can schedule a ``CROSS_TRAFFIC`` tick while transfers are in
    flight — an idle link needs no events at all).
    """

    def utilisation_at(self, t: float) -> float:
        """Background utilisation in effect at time *t* (in [0, MAX])."""
        ...

    def next_boundary(self, t: float) -> float:
        """First instant strictly after *t* where the utilisation changes."""
        ...


def _check_utilisation(name: str, value: float) -> None:
    if not 0.0 <= value <= MAX_UTILISATION:
        raise ConfigurationError(
            f"{name} must be within [0, {MAX_UTILISATION}], got {value}"
        )


@dataclass(frozen=True)
class DiurnalTraffic:
    """Sinusoidal day/night background load (deterministic).

    ``u(t) = base + amplitude * sin(2π (t - phase) / period)``, clipped to
    ``[0, MAX_UTILISATION]`` and held constant over epochs of length
    ``step`` (each epoch uses the sinusoid's value at its start). The
    default ``step`` of ``period / 24`` gives one "hour" per simulated
    "day".
    """

    period: float
    base: float = 0.3
    amplitude: float = 0.3
    phase: float = 0.0
    step: float = 0.0  # 0 ⇒ period / 24

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ConfigurationError(
                f"diurnal period must be > 0, got {self.period}"
            )
        if self.amplitude < 0:
            raise ConfigurationError(
                f"diurnal amplitude must be >= 0, got {self.amplitude}"
            )
        _check_utilisation("diurnal base", self.base)
        if self.step < 0:
            raise ConfigurationError(
                f"diurnal step must be >= 0, got {self.step}"
            )

    @property
    def effective_step(self) -> float:
        """Epoch length actually used (``period / 24`` when step is 0)."""
        return self.step if self.step > 0 else self.period / 24.0

    def utilisation(self, t: float) -> float:
        """The continuous sinusoid at *t*, clipped to the legal band."""
        raw = self.base + self.amplitude * math.sin(
            2.0 * math.pi * (t - self.phase) / self.period
        )
        return min(max(raw, 0.0), MAX_UTILISATION)

    # -- CrossTrafficState (the spec is stateless, so it drives itself) ----

    def utilisation_at(self, t: float) -> float:
        step = self.effective_step
        return self.utilisation(math.floor(t / step) * step)

    def next_boundary(self, t: float) -> float:
        step = self.effective_step
        return (math.floor(t / step) + 1) * step

    def make_state(self, seed: int | None) -> "CrossTrafficState":
        """Diurnal traffic needs no randomness; the spec is its own state."""
        return self

    # -- JSON round-trip ---------------------------------------------------

    def to_spec(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "kind": "diurnal",
            "period": self.period,
            "base": self.base,
            "amplitude": self.amplitude,
        }
        if self.phase:
            out["phase"] = self.phase
        if self.step:
            out["step"] = self.step
        return out


@dataclass(frozen=True)
class MmppTraffic:
    """Two-state Markov-modulated (bursty) background load.

    The link alternates between utilisation ``quiet`` and ``burst``;
    dwell times in each state are exponential with means ``mean_quiet``
    and ``mean_burst``. The realised switch times come from a derived-seed
    RNG (see :meth:`make_state`), so the same scenario seed always replays
    the same burst pattern.
    """

    quiet: float = 0.05
    burst: float = 0.7
    mean_quiet: float = 60.0
    mean_burst: float = 15.0

    def __post_init__(self) -> None:
        _check_utilisation("mmpp quiet utilisation", self.quiet)
        _check_utilisation("mmpp burst utilisation", self.burst)
        if self.mean_quiet <= 0 or self.mean_burst <= 0:
            raise ConfigurationError(
                "mmpp dwell-time means must be > 0, got "
                f"mean_quiet={self.mean_quiet}, mean_burst={self.mean_burst}"
            )

    def make_state(self, seed: int | None) -> "CrossTrafficState":
        """A fresh dwell-sequence driver seeded for this link."""
        return _MmppState(self, seed)

    # -- JSON round-trip ---------------------------------------------------

    def to_spec(self) -> dict[str, Any]:
        return {
            "kind": "mmpp",
            "quiet": self.quiet,
            "burst": self.burst,
            "mean_quiet": self.mean_quiet,
            "mean_burst": self.mean_burst,
        }


class _MmppState:
    """Lazily materialised switch-time sequence of one MMPP link.

    Breakpoints are drawn on demand as simulation time advances; a sorted
    list plus binary search keeps arbitrary-time queries exact (gateway
    signal probes are not strictly monotone with event times).
    """

    __slots__ = ("_spec", "_rng", "_times", "_levels")

    def __init__(self, spec: MmppTraffic, seed: int | None) -> None:
        self._spec = spec
        self._rng = make_rng(seed)
        self._times = [0.0]          # state-change instants (sorted)
        self._levels = [spec.quiet]  # utilisation from _times[i] onward

    def _extend_past(self, t: float) -> None:
        spec = self._spec
        while self._times[-1] <= t:
            in_burst = self._levels[-1] == spec.burst
            mean = spec.mean_burst if in_burst else spec.mean_quiet
            dwell = float(self._rng.exponential(mean))
            self._times.append(self._times[-1] + max(dwell, 1e-9))
            self._levels.append(spec.quiet if in_burst else spec.burst)

    def utilisation_at(self, t: float) -> float:
        self._extend_past(t)
        return self._levels[bisect_right(self._times, t) - 1]

    def next_boundary(self, t: float) -> float:
        self._extend_past(t)
        return self._times[bisect_right(self._times, t)]


_KINDS: dict[str, Any] = {
    "diurnal": DiurnalTraffic,
    "mmpp": MmppTraffic,
}


def cross_traffic_from_spec(spec: Any) -> "DiurnalTraffic | MmppTraffic":
    """Inverse of ``to_spec`` for either cross-traffic family."""
    if isinstance(spec, (DiurnalTraffic, MmppTraffic)):
        return spec
    if not isinstance(spec, Mapping):
        raise ConfigurationError(
            f"cross-traffic spec must be a mapping, got {type(spec).__name__}"
        )
    data = dict(spec)
    kind = data.pop("kind", None)
    if kind not in _KINDS:
        raise ConfigurationError(
            f"unknown cross-traffic kind {kind!r}; "
            f"known: {sorted(_KINDS)}"
        )
    klass = _KINDS[kind]
    try:
        return klass(**{k: float(v) for k, v in data.items()})
    except TypeError as exc:
        raise ConfigurationError(
            f"bad cross-traffic spec for kind {kind!r}: {exc}"
        ) from exc
