"""Command-line interface: the GUI workflow for terminals.

Subcommands mirror the E2C GUI surface:

* ``e2c-sim run`` — load a scenario (JSON, or EET+workload CSVs), pick a
  policy, run, print/save reports; ``--animate`` streams the live Fig-1 view.
* ``e2c-sim generate`` — the workload component: synthesise a workload CSV
  for an EET at a chosen intensity.
* ``e2c-sim schedulers`` — the policy drop-down: list registered policies.
* ``e2c-sim scenarios`` — list registered scenario presets.
* ``e2c-sim sweep`` — run an experiment campaign (scenario grid x scheduler
  list x seed list) over worker processes and print the comparison table.
* ``e2c-sim serve`` — run the campaign service over a spool directory:
  watch ``inbox/`` for submitted specs, execute unique work once on the
  persistent worker pool, serve repeats from the canonical-hash result
  cache, and publish receipts/status/results as JSON files.
* ``e2c-sim submit`` — drop a scenario/campaign spec (or preset name) into
  a service directory; optionally wait for and print the result
  (``--status``/``--result`` query existing jobs).
* ``e2c-sim trace`` — the cluster-trace ingestion layer: ``inspect`` a raw
  Google/Azure-style CSV export, ``convert`` it into the canonical workload
  format against an EET, or ``replay`` a trace-driven scenario.
* ``e2c-sim bench`` — engine-throughput benchmark over registered scenarios
  (defaults to the scale tier).
* ``e2c-sim assignment`` — regenerate the class-assignment figures (5/6/7).
* ``e2c-sim table1`` — the positioning table.
* ``e2c-sim quiz`` — print a quiz sheet (and, with ``--key``, its answers).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from . import __version__
from .core.config import Scenario
from .core.errors import ConfigurationError, E2CError
from .machines.eet import EETMatrix
from .scheduling.base import SchedulingMode
from .scheduling.registry import available_schedulers, scheduler_class
from .tasks.generator import WorkloadGenerator
from .tasks.trace_io import write_workload_csv

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="e2c-sim",
        description=(
            "E2C-Repro: discrete-event simulation of heterogeneous "
            "computing systems (reproduction of Mokhtari et al., IPDPSW'23)"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a simulation scenario")
    run.add_argument(
        "--scenario",
        help="scenario JSON file, or a registered preset name "
        "(see 'scenarios')",
    )
    run.add_argument("--eet", type=Path, help="EET CSV (with --workload)")
    run.add_argument("--workload", type=Path, help="workload trace CSV")
    run.add_argument(
        "--scheduler", "--policy", dest="scheduler", default=None,
        help="local policy name (see 'schedulers'); overrides the scenario's",
    )
    run.add_argument(
        "--gateway", default=None,
        help="inter-cluster offloading policy for federated presets "
        "(see 'schedulers' for the registry, e.g. ADAPTIVE, EET_AWARE_REMOTE)",
    )
    run.add_argument(
        "--migration", default=None, metavar="POLICY",
        help="enable mid-queue migration on a federated scenario with this "
        "eviction policy (LONGEST_WAIT, DEADLINE_SLACK, EET_GAIN); "
        "'off' disables a preset's migration spec",
    )
    run.add_argument(
        "--migration-interval", type=float, default=None, metavar="SECONDS",
        help="with --migration: simulated seconds between rebalance passes",
    )
    run.add_argument(
        "--queue-size",
        type=int,
        default=None,
        help="machine queue capacity for batch policies (default unbounded)",
    )
    run.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="default relative deadline for workload rows lacking one",
    )
    run.add_argument("--seed", type=int, default=None)
    run.add_argument(
        "--parallel-shards", type=int, default=None, metavar="N",
        help="run a federated scenario on N worker processes (conservative "
        "lookahead windows; bit-identical to the serial engine; needs a "
        "state-blind gateway such as RANDOM_SPLIT)",
    )
    run.add_argument(
        "--report",
        choices=["full", "task", "machine", "summary"],
        default="summary",
        help="which report to print",
    )
    run.add_argument(
        "--save-reports", type=Path, default=None, metavar="DIR",
        help="write all four reports as CSVs into DIR",
    )
    run.add_argument(
        "--tree", action="store_true",
        help="for hierarchical federations: print the per-level rollup "
        "table (routed / completed / missed / WAN counters at every tree "
        "node) after the run",
    )
    run.add_argument(
        "--animate", action="store_true",
        help="stream the live system view while running",
    )
    run.add_argument(
        "--frame-every", type=int, default=10,
        help="with --animate: render every N-th event",
    )

    gen = sub.add_parser("generate", help="generate a workload CSV for an EET")
    gen.add_argument("--eet", type=Path, required=True, help="EET CSV")
    gen.add_argument("--out", type=Path, required=True, help="output workload CSV")
    gen.add_argument(
        "--intensity", default="medium",
        help="low / medium / high or an oversubscription ratio",
    )
    gen.add_argument("--duration", type=float, default=600.0)
    gen.add_argument("--seed", type=int, default=None)
    gen.add_argument(
        "--machines-per-type", type=int, default=1,
        help="capacity calibration: machines per EET column",
    )

    sched = sub.add_parser("schedulers", help="list available policies")
    sched.add_argument(
        "--mode", choices=["immediate", "batch"], default=None
    )

    sub.add_parser(
        "scenarios", help="list registered scenario presets (for 'sweep')"
    )

    sweep = sub.add_parser(
        "sweep",
        help="run an experiment campaign across scenarios, policies and seeds",
        description=(
            "Expand a campaign grid (scenarios x schedulers x seeds), run "
            "every cell over worker processes, and print a per-scenario "
            "cross-policy comparison. The grid comes from a JSON spec file "
            "(--spec) or inline flags; the same campaign seed always "
            "reproduces the identical result table."
        ),
    )
    sweep.add_argument(
        "--spec", type=Path, default=None,
        help="campaign spec JSON (as written by --save-spec)",
    )
    sweep.add_argument(
        "--scenarios", default=None, metavar="NAME[,NAME...]",
        help="comma-separated registered scenario names (see 'scenarios')",
    )
    sweep.add_argument(
        "--schedulers", default=None, metavar="POLICY[,POLICY...]",
        help="comma-separated policy names (see 'schedulers')",
    )
    sweep.add_argument(
        "--seeds", default=None, metavar="INT[,INT...]",
        help="comma-separated grid seeds; each gives every policy a fresh "
        "shared workload (default: 0)",
    )
    sweep.add_argument(
        "--seed", type=int, default=None,
        help="campaign master seed all per-run seeds derive from (default 0)",
    )
    sweep.add_argument(
        "--metrics", default=None, metavar="M[,M...]",
        help="summary metrics to report (default: completion_rate, "
        "mean_response_time, total_energy)",
    )
    sweep.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default: one per CPU, capped at grid size)",
    )
    sweep.add_argument(
        "--serial", action="store_true",
        help="run in-process without worker processes (same table, slower)",
    )
    sweep.add_argument(
        "--save-table", type=Path, default=None, metavar="CSV",
        help="write the tidy per-run table (one row per run) to CSV",
    )
    sweep.add_argument(
        "--save-spec", type=Path, default=None, metavar="JSON",
        help="write the expanded campaign spec to JSON (reload with --spec)",
    )

    tournament = sub.add_parser(
        "tournament",
        help="rank every gateway x eviction policy pair on a preset grid",
        description=(
            "Run the federation policy tournament: every gateway routing "
            "policy paired with every mid-queue eviction policy, across a "
            "grid of federated presets and repetition seeds, fanned out "
            "over worker processes. Prints the ranked leaderboard; the "
            "JSON written by --out is byte-identical for the same spec "
            "whatever the worker count."
        ),
    )
    tournament.add_argument(
        "--presets", default=None, metavar="NAME[,NAME...]",
        help="comma-separated federated preset names "
        "(default: fed_rebalance,fed_adaptive)",
    )
    tournament.add_argument(
        "--gateways", default=None, metavar="NAME[,NAME...]",
        help="gateway policies to enter (default: all registered)",
    )
    tournament.add_argument(
        "--evictions", default=None, metavar="NAME[,NAME...]",
        help="eviction policies to enter (default: all registered)",
    )
    tournament.add_argument(
        "--scheduler", default="MM",
        help="local scheduling policy inside every cluster (default MM)",
    )
    tournament.add_argument(
        "--repetitions", type=int, default=1,
        help="grid seeds per pairing; each gives every pairing a fresh "
        "shared workload (default 1)",
    )
    tournament.add_argument(
        "--seed", type=int, default=0,
        help="tournament master seed all per-run seeds derive from "
        "(default 0)",
    )
    tournament.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default: one per CPU, capped at grid size)",
    )
    tournament.add_argument(
        "--serial", action="store_true",
        help="run in-process without worker processes (same leaderboard, "
        "slower)",
    )
    tournament.add_argument(
        "--out", type=Path, default=None, metavar="JSON",
        help="write the canonical leaderboard JSON to FILE",
    )
    tournament.add_argument(
        "--save-table", type=Path, default=None, metavar="CSV",
        help="write the tidy per-run campaign table to CSV",
    )

    serve = sub.add_parser(
        "serve",
        help="run the campaign service (job queue + result cache) over a "
        "spool directory",
        description=(
            "Run a long-lived simulation service. Specs dropped into "
            "DIR/inbox (by 'e2c-sim submit') are keyed by their canonical "
            "content hash, executed once each on a pool of persistent "
            "worker processes (with job states, bounded crash retries and "
            "a progress journal), and answered through DIR/receipts and "
            "DIR/jobs; identical submissions are served from the result "
            "cache without re-simulating."
        ),
    )
    serve.add_argument(
        "--dir", type=Path, required=True, metavar="DIR",
        help="service directory (inbox/, receipts/, jobs/, cache/, state/)",
    )
    serve.add_argument(
        "--workers", type=int, default=2,
        help="persistent worker processes (default 2)",
    )
    serve.add_argument(
        "--max-attempts", type=int, default=3,
        help="executions allowed per job before a crashing job fails "
        "(default 3)",
    )
    serve.add_argument(
        "--poll", type=float, default=0.2, metavar="SECONDS",
        help="inbox poll interval (default 0.2s)",
    )
    serve.add_argument(
        "--max-jobs", type=int, default=None, metavar="N",
        help="exit after N submissions of this session reach a terminal "
        "state (smoke tests / CI)",
    )
    serve.add_argument(
        "--idle-exit", type=float, default=None, metavar="SECONDS",
        help="exit once the inbox has been empty and no job live for this "
        "long (default: serve forever)",
    )

    submit = sub.add_parser(
        "submit",
        help="submit a spec to (or query) a campaign-service directory",
        description=(
            "Drop a scenario JSON file, campaign spec, JSON literal, or "
            "registered preset name into a service directory's inbox for a "
            "running 'e2c-sim serve' to pick up. --wait polls until the "
            "job finishes and prints the result; --status/--result query "
            "a previously submitted job."
        ),
    )
    submit.add_argument(
        "--dir", type=Path, required=True, metavar="DIR",
        help="service directory shared with 'e2c-sim serve'",
    )
    submit.add_argument(
        "spec", nargs="?", default=None,
        help="scenario/campaign JSON file, JSON literal, or a registered "
        "preset name (see 'scenarios')",
    )
    submit.add_argument(
        "--wait", type=float, default=None, metavar="SECONDS",
        help="wait up to SECONDS for the job to finish and print its result",
    )
    submit.add_argument(
        "--status", default=None, metavar="JOB_ID",
        help="print the status record of an existing job and exit",
    )
    submit.add_argument(
        "--result", dest="result_job", default=None, metavar="JOB_ID",
        help="print the result of a finished job and exit",
    )

    trace = sub.add_parser(
        "trace",
        help="inspect, convert or replay cluster-trace CSVs",
        description=(
            "Work with raw cluster-trace exports (Google/Azure-style "
            "CSVs). 'inspect' summarises a file before you commit to an "
            "import recipe; 'convert' runs the full TraceSpec pipeline "
            "against an EET and writes a canonical workload CSV; 'replay' "
            "runs a trace-driven scenario (a preset such as trace_replay, "
            "or a scenario JSON with a \"trace\" section) end to end."
        ),
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    def _add_spec_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "trace", metavar="TRACE",
            help="trace CSV path, or data:NAME for a bundled sample "
            "(e.g. data:google_cluster_sample.csv)",
        )
        p.add_argument(
            "--columns", default=None, metavar="ROLE=COL[,ROLE=COL...]",
            help="map canonical roles (task_id, task_type, arrival_time, "
            "deadline) to source column names, e.g. "
            "arrival_time=submit_time_us,task_id=job_id",
        )
        p.add_argument(
            "--time-unit", type=float, default=1.0, metavar="SECONDS",
            help="seconds per source time unit (1e-6 for microsecond "
            "timestamps; default 1)",
        )
        p.add_argument(
            "--time-offset", type=float, default=None, metavar="SECONDS",
            help="rebase: subtract this many rescaled seconds "
            "(default: earliest arrival)",
        )
        p.add_argument(
            "--window", default=None, metavar="START:END",
            help="keep arrivals in [START, END) rebased seconds and "
            "re-shift to 0",
        )
        p.add_argument(
            "--time-scale", type=float, default=1.0, metavar="FACTOR",
            help="compress (<1) or stretch (>1) the kept arrival span",
        )
        p.add_argument(
            "--bin-column", default=None, metavar="COL",
            help="numeric source column to quantile-bin into EET task "
            "types when the trace has no task-type column",
        )
        p.add_argument(
            "--slack-factor", type=float, default=1.0,
            help="deadline synthesis: deadline = arrival + slack * "
            "relative_deadline (default 1)",
        )
        p.add_argument(
            "--deadline", type=float, default=None, metavar="SECONDS",
            help="default relative deadline for task types lacking one",
        )
        p.add_argument(
            "--sample", type=float, default=1.0, metavar="FRACTION",
            help="keep each row with this probability (deterministic "
            "under --seed; default 1)",
        )
        p.add_argument(
            "--max-tasks", type=int, default=None, metavar="N",
            help="truncate to the first N kept tasks",
        )

    t_inspect = trace_sub.add_parser(
        "inspect", help="summarise a raw trace CSV (rows, columns, spans)"
    )
    _add_spec_args(t_inspect)

    t_convert = trace_sub.add_parser(
        "convert",
        help="import a trace into a canonical workload CSV against an EET",
    )
    _add_spec_args(t_convert)
    t_convert.add_argument(
        "--eet", type=Path, required=True,
        help="EET CSV giving the task-type universe",
    )
    t_convert.add_argument(
        "--out", type=Path, required=True, help="output workload CSV"
    )
    t_convert.add_argument(
        "--seed", type=int, default=None,
        help="seed for deterministic down-sampling (--sample)",
    )

    t_replay = trace_sub.add_parser(
        "replay",
        help="run a trace-driven scenario and print its summary",
    )
    t_replay.add_argument(
        "--scenario", default="trace_replay",
        help="trace-driven preset name or scenario JSON file "
        "(default: trace_replay)",
    )
    t_replay.add_argument(
        "--scheduler", default=None,
        help="override the scenario's scheduling policy",
    )
    t_replay.add_argument("--seed", type=int, default=None)
    t_replay.add_argument(
        "--report",
        choices=["full", "task", "machine", "summary"],
        default="summary",
        help="which report to print",
    )

    bench = sub.add_parser(
        "bench",
        help="benchmark engine throughput on registered scenarios",
        description=(
            "Run registered scenario presets end-to-end and report engine "
            "throughput (events/second). Defaults to the scale tier "
            "(scale_campus), whose hundreds of machines and tens of "
            "thousands of tasks exercise the hot path the way the "
            "benchmark-regression CI gate does."
        ),
    )
    bench.add_argument(
        "--scenarios", default="scale_campus", metavar="NAME[,NAME...]",
        help="comma-separated registered scenario names (see 'scenarios'); "
        "default: scale_campus",
    )
    bench.add_argument(
        "--scheduler", default=None,
        help="override the preset's scheduling policy",
    )
    bench.add_argument(
        "--repeat", type=int, default=3,
        help="runs per scenario; best and mean are reported (default 3)",
    )
    bench.add_argument(
        "--json", type=Path, default=None, metavar="FILE",
        help="also write machine-readable results to FILE",
    )
    bench.add_argument(
        "--parallel-shards", type=int, default=None, metavar="N",
        help="bench federated scenarios on N worker processes "
        "(window-parallel engine) instead of the serial engine",
    )
    bench.add_argument(
        "--profile", type=Path, default=None, metavar="FILE",
        help="cProfile one extra (untimed) run per scenario, write the "
        ".pstats to FILE and print the top-20 functions by cumulative "
        "time; see docs/PERFORMANCE.md for the analysis recipe",
    )

    assign = sub.add_parser(
        "assignment", help="regenerate the class-assignment figures (5/6/7)"
    )
    assign.add_argument(
        "--figure", choices=["5", "6", "7", "all"], default="all"
    )
    assign.add_argument("--replications", type=int, default=3)
    assign.add_argument("--duration", type=float, default=400.0)
    assign.add_argument("--seed", type=int, default=2023)

    sub.add_parser("table1", help="print the simulator positioning table")

    quiz = sub.add_parser("quiz", help="print a scheduling quiz sheet")
    quiz.add_argument("--seed", type=int, default=None)
    quiz.add_argument(
        "--key", action="store_true", help="also print the answer key"
    )

    return parser


def _resolve_run_scenario(args: argparse.Namespace) -> Scenario:
    """--scenario is a JSON path or a registered preset name."""
    from dataclasses import replace

    source = Path(args.scenario)
    if source.exists() or source.suffix == ".json":
        scenario = Scenario.from_json(source)
        if args.scheduler is not None:
            scenario = replace(
                scenario, scheduler=args.scheduler, scheduler_params={}
            )
        if args.gateway is not None:
            scenario = scenario.with_gateway(args.gateway)
        if args.seed is not None:
            scenario = replace(scenario, seed=args.seed)
        return scenario
    from .scenarios import build_scenario

    overrides: dict = {}
    if args.scheduler is not None:
        overrides["scheduler"] = args.scheduler
    if args.gateway is not None:
        overrides["gateway"] = args.gateway
    if args.seed is not None:
        overrides["seed"] = args.seed
    try:
        return build_scenario(str(args.scenario), **overrides)
    except TypeError as exc:
        raise ConfigurationError(
            f"scenario preset {args.scenario!r} does not accept these "
            f"options: {exc}"
        ) from exc


def _cmd_run(args: argparse.Namespace) -> int:
    if args.scenario is not None:
        scenario = _resolve_run_scenario(args)
    elif args.eet is not None and args.workload is not None:
        extra = {}
        if args.queue_size is not None:
            extra["queue_capacity"] = args.queue_size
        scenario = Scenario.from_csv_files(
            args.eet,
            args.workload,
            args.scheduler if args.scheduler is not None else "MECT",
            default_relative_deadline=args.deadline,
            seed=args.seed,
            **extra,
        )
    else:
        print(
            "error: provide --scenario (JSON file or preset name) or both "
            "--eet and --workload CSVs",
            file=sys.stderr,
        )
        return 2

    if args.migration is not None:
        if args.migration.lower() in ("off", "none"):
            if args.migration_interval is not None:
                print(
                    "error: --migration-interval conflicts with "
                    "--migration off",
                    file=sys.stderr,
                )
                return 2
            scenario = scenario.with_migration(None)
        else:
            options = {}
            if args.migration_interval is not None:
                options["interval"] = args.migration_interval
            scenario = scenario.with_migration(args.migration, **options)
    elif args.migration_interval is not None:
        print(
            "error: --migration-interval requires --migration POLICY",
            file=sys.stderr,
        )
        return 2

    if args.parallel_shards is not None:
        if args.animate:
            print(
                "error: --animate renders the serial event stream; drop it "
                "to use --parallel-shards",
                file=sys.stderr,
            )
            return 2
        if scenario.federation is None:
            print(
                f"error: --parallel-shards needs a federated scenario; "
                f"{scenario.name!r} is single-cluster",
                file=sys.stderr,
            )
            return 2

    if args.tree and (
        scenario.federation is None or scenario.federation.children is None
    ):
        kind = (
            "a flat federation"
            if scenario.federation is not None
            else "single-cluster"
        )
        print(
            f"error: --tree prints the hierarchical rollup, but scenario "
            f"{scenario.name!r} is {kind}; pick a preset with nested "
            "'children' (e.g. --scenario hier_3region).",
            file=sys.stderr,
        )
        return 2

    if args.animate:
        if scenario.federation is not None:
            n = len(scenario.federation.clusters)
            shape = (
                f"this hierarchical federation has {n} leaf cluster "
                "shards under a multi-level tree"
                if scenario.federation.children is not None
                else f"this federation has {n} cluster shards"
            )
            print(
                f"error: --animate cannot render scenario "
                f"{scenario.name!r}: the terminal renderer draws one "
                f"cluster's machine panel, and {shape} (a per-shard "
                "panel layout — flat and hierarchical — is an open "
                "ROADMAP item, 'Renderer support for federations').\n"
                "Instead you can:\n"
                "  - drop --animate to run it headless; the per-cluster "
                "summary table, routing matrix and WAN link report are "
                "printed at the end (add --tree on a hierarchical "
                "scenario for the per-level rollup), or\n"
                "  - animate a single-cluster preset (e.g. --scenario "
                "satellite_imaging; see 'e2c-sim scenarios').",
                file=sys.stderr,
            )
            return 2
        from .viz.animation import Animator

        animator = Animator(
            scenario.build_simulator,
            stream=sys.stdout,
            frame_every=args.frame_every,
        )
        animator.play()
        result = animator.simulator.result()
    elif args.parallel_shards is not None:
        result = scenario.build_simulator(
            parallel_workers=args.parallel_shards
        ).run()
    else:
        result = scenario.run()

    bundle = result.reports
    # Save before printing: stdout may be a pager/head that closes early,
    # and a BrokenPipeError must not cost the user their report CSVs.
    paths = bundle.save_all(args.save_reports) if args.save_reports else None
    if hasattr(result, "per_cluster"):
        # Federated run: per-cluster + global summaries and the offload
        # matrix, then any non-summary report the user asked for.
        print(result.to_text())
        if args.tree:
            tree = getattr(result, "tree", None)
            assert tree is not None  # guarded before the run
            print()
            print("per-level rollup")
            print(tree.to_text())
        if args.report != "summary":
            print()
            print(bundle.by_name(args.report).to_text())
    else:
        print(bundle.by_name(args.report).to_text())
    if paths is not None:
        print(f"\nsaved: {', '.join(str(p) for p in paths)}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    eet = EETMatrix.read_csv(args.eet)
    generator = WorkloadGenerator(
        eet, machine_counts=[args.machines_per_type] * eet.n_machine_types
    )
    try:
        intensity: str | float = float(args.intensity)
    except ValueError:
        intensity = args.intensity
    workload = generator.generate(
        args.duration, intensity=intensity, seed=args.seed
    )
    write_workload_csv(workload, args.out)
    print(f"wrote {len(workload)} tasks to {args.out}")
    return 0


def _policy_params(klass: type) -> str:
    """Constructor-kwarg suffix for a policy listing row.

    Renders ``(threshold=2.0, seed=0)`` from the class ``__init__``
    signature so the listing doubles as the reference for what
    ``--gateway-params`` / ``scheduler_params`` / ``policy_params`` accept.
    Empty string for parameterless policies.
    """
    import inspect

    try:
        signature = inspect.signature(klass.__init__)
    except (TypeError, ValueError):  # pragma: no cover - builtins only
        return ""
    parts = []
    for parameter in signature.parameters.values():
        if parameter.name == "self" or parameter.kind in (
            inspect.Parameter.VAR_POSITIONAL,
            inspect.Parameter.VAR_KEYWORD,
        ):
            continue
        if parameter.default is inspect.Parameter.empty:
            parts.append(parameter.name)
        else:
            parts.append(f"{parameter.name}={parameter.default!r}")
    return f" ({', '.join(parts)})" if parts else ""


def _cmd_schedulers(args: argparse.Namespace) -> int:
    mode = SchedulingMode(args.mode) if args.mode else None
    for name in available_schedulers(mode):
        klass = scheduler_class(name)
        print(
            f"{name:<10} [{klass.mode.value}] {klass.description}"
            f"{_policy_params(klass)}"
        )
    if mode is None:
        from .scheduling.federation import (
            available_evictions,
            available_gateways,
            eviction_class,
            gateway_class,
        )

        print()
        print("gateway policies (federated scenarios, --gateway):")
        for name in available_gateways():
            gateway = gateway_class(name)
            print(
                f"{name:<18} [gateway] {gateway.description}"
                f"{_policy_params(gateway)}"
            )
        print()
        print("eviction policies (mid-queue migration, --migration):")
        for name in available_evictions():
            eviction = eviction_class(name)
            print(
                f"{name:<18} [eviction] {eviction.description}"
                f"{_policy_params(eviction)}"
            )
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    from .scenarios import scenario_summaries

    for name, summary in scenario_summaries():
        print(f"{name:<24} {summary}")
    return 0


def _split_csv(value: str) -> list[str]:
    return [item.strip() for item in value.split(",") if item.strip()]


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .experiments import CampaignSpec, run_campaign

    if args.spec is not None:
        if (
            args.scenarios
            or args.schedulers
            or args.seeds is not None
            or args.seed is not None
        ):
            print(
                "error: --spec and the inline grid flags "
                "(--scenarios/--schedulers/--seeds/--seed) are mutually "
                "exclusive; edit the spec file instead",
                file=sys.stderr,
            )
            return 2
        spec = CampaignSpec.from_json(args.spec)
    elif args.scenarios and args.schedulers:
        try:
            seeds = [int(s) for s in _split_csv(args.seeds or "0")]
        except ValueError:
            print(
                f"error: --seeds must be comma-separated integers, "
                f"got {args.seeds!r}",
                file=sys.stderr,
            )
            return 2
        extra = {}
        if args.metrics:
            extra["metrics"] = _split_csv(args.metrics)
        spec = CampaignSpec(
            scenarios=_split_csv(args.scenarios),
            schedulers=_split_csv(args.schedulers),
            seeds=seeds,
            seed=args.seed if args.seed is not None else 0,
            **extra,
        )
    else:
        print(
            "error: provide --spec JSON or both --scenarios and --schedulers",
            file=sys.stderr,
        )
        return 2

    result = run_campaign(
        spec, parallel=not args.serial, workers=args.workers
    )
    # Save before printing: stdout may be a pager/head that closes early,
    # and a BrokenPipeError must not cost the user their artifacts.
    if args.save_table is not None:
        result.to_csv(args.save_table)
    if args.save_spec is not None:
        spec.to_json(args.save_spec)
    metrics = _split_csv(args.metrics) if args.metrics else None
    print(result.to_text(metrics))
    if args.save_table is not None:
        print(f"\nsaved table: {args.save_table}")
    if args.save_spec is not None:
        print(f"saved spec: {args.save_spec}")
    return 0


def _cmd_tournament(args: argparse.Namespace) -> int:
    from .experiments import TournamentSpec, run_tournament

    kwargs: dict = {}
    if args.presets:
        kwargs["presets"] = tuple(_split_csv(args.presets))
    if args.gateways:
        kwargs["gateways"] = tuple(_split_csv(args.gateways))
    if args.evictions:
        kwargs["evictions"] = tuple(_split_csv(args.evictions))
    spec = TournamentSpec(
        scheduler=args.scheduler,
        repetitions=args.repetitions,
        seed=args.seed,
        **kwargs,
    )
    result = run_tournament(
        spec, parallel=not args.serial, workers=args.workers
    )
    # Save before printing: stdout may be a pager/head that closes early,
    # and a BrokenPipeError must not cost the user their artifacts.
    if args.out is not None:
        args.out.write_text(result.to_json())
    if args.save_table is not None:
        result.campaign.to_csv(args.save_table)
    print(result.to_text())
    if args.out is not None:
        print(f"\nsaved leaderboard: {args.out}")
    if args.save_table is not None:
        print(f"saved table: {args.save_table}")
    return 0


def _spool_dirs(root: Path) -> tuple[Path, Path, Path]:
    """The spool transport's directories: inbox, receipts, job status."""
    inbox, receipts, jobs = root / "inbox", root / "receipts", root / "jobs"
    for directory in (inbox, receipts, jobs):
        directory.mkdir(parents=True, exist_ok=True)
    return inbox, receipts, jobs


def _write_json_atomic(path: Path, payload: dict) -> None:
    import json
    import os

    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2), encoding="utf-8")
    os.replace(tmp, path)


def _cmd_serve(args: argparse.Namespace) -> int:
    import json
    import time

    from .service import CampaignService

    inbox, receipts, jobs_dir = _spool_dirs(args.dir)
    service = CampaignService(
        args.dir, workers=args.workers, max_attempts=args.max_attempts
    )
    session_jobs: set[str] = set()
    published: dict[str, tuple] = {}
    idle_since = time.monotonic()
    print(f"serving {args.dir} (workers={args.workers}); ctrl-c to stop")
    try:
        while True:
            for path in sorted(inbox.glob("*.json")):
                receipt_path = receipts / path.name
                try:
                    receipt = service.submit(path)
                except E2CError as exc:
                    _write_json_atomic(receipt_path, {"error": str(exc)})
                    path.unlink()
                    print(f"rejected {path.stem}: {exc}", file=sys.stderr)
                    continue
                _write_json_atomic(
                    receipt_path,
                    {
                        "job_id": receipt.job_id,
                        "key": receipt.key,
                        "kind": receipt.kind,
                        "cached": receipt.cached,
                    },
                )
                path.unlink()
                session_jobs.add(receipt.job_id)
                print(
                    f"{path.stem} -> {receipt.job_id} [{receipt.kind}] "
                    + ("(cache hit)" if receipt.cached else "queued")
                )
            live = 0
            terminal = 0
            for job in service.queue.jobs():
                signature = (job.state.value, job.runs_done, job.attempts)
                if published.get(job.id) != signature:
                    body = job.as_dict()
                    if job.state.value == "done":
                        body["result"] = service.result(job.id)
                    _write_json_atomic(jobs_dir / f"{job.id}.json", body)
                    published[job.id] = signature
                    if job.state.is_terminal:
                        print(
                            f"{job.id}: {job.state.value} "
                            f"({job.runs_done}/{job.runs_total} runs, "
                            f"attempt {job.attempts})"
                        )
                if job.state.is_terminal:
                    if job.id in session_jobs:
                        terminal += 1
                else:
                    live += 1
            if args.max_jobs is not None and terminal >= args.max_jobs:
                print(f"served {terminal} job(s); exiting (--max-jobs)")
                return 0
            if live or any(inbox.glob("*.json")):
                idle_since = time.monotonic()
            elif (
                args.idle_exit is not None
                and time.monotonic() - idle_since >= args.idle_exit
            ):
                print("inbox idle; exiting (--idle-exit)")
                return 0
            time.sleep(args.poll)
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        print("\nstopping")
        return 0
    finally:
        service.close()


def _print_job_status(body: dict) -> None:
    import json

    view = {k: v for k, v in body.items() if k not in ("request", "result")}
    print(json.dumps(view, indent=2, sort_keys=True))


def _print_job_result(body: dict) -> int:
    result = body.get("result")
    if body.get("state") != "done" or result is None:
        print(
            f"error: job {body.get('id')} has no result "
            f"(state: {body.get('state')}"
            + (f", error: {body['error']}" if body.get("error") else "")
            + ")",
            file=sys.stderr,
        )
        return 1
    if result.get("kind") == "campaign":
        print(result["text"])
    else:
        print(f"scenario {result.get('name')!r} "
              f"[{result.get('scheduler')}] summary:")
        for metric, value in result.get("summary", {}).items():
            print(f"  {metric:<28} {value}")
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    import json
    import time
    import uuid

    inbox, receipts, jobs_dir = _spool_dirs(args.dir)

    if args.status is not None or args.result_job is not None:
        if args.spec is not None:
            print(
                "error: --status/--result query existing jobs and do not "
                "take a spec",
                file=sys.stderr,
            )
            return 2
        job_id = args.status or args.result_job
        status_path = jobs_dir / f"{job_id}.json"
        if not status_path.exists():
            print(
                f"error: no such job {job_id!r} in {args.dir}",
                file=sys.stderr,
            )
            return 1
        body = json.loads(status_path.read_text(encoding="utf-8"))
        if args.result_job is not None:
            return _print_job_result(body)
        _print_job_status(body)
        return 0

    if args.spec is None:
        print(
            "error: provide a spec (JSON file, JSON literal, or preset "
            "name), or --status/--result JOB_ID",
            file=sys.stderr,
        )
        return 2

    source = args.spec
    if not source.lstrip().startswith("{") and not Path(source).exists():
        # A bare word: treat it as a registered preset name.
        data: dict = {"preset": source}
    else:
        from .core.jsonio import load_json_source

        data = load_json_source(source, what="submission")
    submission = f"sub-{uuid.uuid4().hex[:12]}"
    _write_json_atomic(inbox / f"{submission}.json", data)
    print(f"submitted {submission} to {args.dir}")

    if args.wait is None:
        return 0
    deadline = time.monotonic() + args.wait
    receipt_path = receipts / f"{submission}.json"
    receipt = None
    while time.monotonic() < deadline:
        if receipt_path.exists():
            receipt = json.loads(receipt_path.read_text(encoding="utf-8"))
            break
        time.sleep(0.1)
    if receipt is None:
        print(
            f"error: no receipt for {submission} within {args.wait}s — "
            "is 'e2c-sim serve' running on this directory?",
            file=sys.stderr,
        )
        return 1
    if "error" in receipt:
        print(f"error: submission rejected: {receipt['error']}", file=sys.stderr)
        return 1
    job_id = receipt["job_id"]
    print(f"receipt: job {job_id} ({'cache hit' if receipt['cached'] else 'queued'})")
    status_path = jobs_dir / f"{job_id}.json"
    body = None
    while time.monotonic() < deadline:
        if status_path.exists():
            body = json.loads(status_path.read_text(encoding="utf-8"))
            if body.get("state") in ("done", "failed", "cancelled"):
                break
        time.sleep(0.1)
    if body is None or body.get("state") not in ("done", "failed", "cancelled"):
        state = "unknown" if body is None else body.get("state")
        print(
            f"error: job {job_id} not finished within {args.wait}s "
            f"(state: {state})",
            file=sys.stderr,
        )
        return 1
    return _print_job_result(body)


def _trace_spec_from_args(args: argparse.Namespace):
    from .tasks.trace_io import TraceSpec

    columns: dict[str, str] = {}
    if args.columns:
        for pair in _split_csv(args.columns):
            role, _, column = pair.partition("=")
            if not column:
                raise ConfigurationError(
                    f"--columns entries must be ROLE=COL, got {pair!r}"
                )
            columns[role.strip()] = column.strip()
    window = None
    if args.window is not None:
        start, _, end = args.window.partition(":")
        try:
            window = (float(start), float(end))
        except ValueError:
            raise ConfigurationError(
                f"--window must be START:END seconds, got {args.window!r}"
            ) from None
    return TraceSpec(
        path=args.trace,
        columns=columns,
        time_unit=args.time_unit,
        time_offset=args.time_offset,
        window=window,
        time_scale=args.time_scale,
        bin_column=args.bin_column,
        slack_factor=args.slack_factor,
        default_relative_deadline=args.deadline,
        sample=args.sample,
        max_tasks=args.max_tasks,
    )


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.trace_command == "inspect":
        info = _trace_spec_from_args(args).describe()
        print(f"trace    {info['path']}")
        print(f"rows     {info['rows']}")
        print(f"columns  {', '.join(info['columns'])}")
        print(
            f"arrivals {info['arrival_min']:.6g} .. {info['arrival_max']:.6g} "
            f"s (span {info['arrival_max'] - info['arrival_min']:.6g} s "
            "after --time-unit rescale)"
        )
        if "type_counts" in info:
            print("task types:")
            for name, count in info["type_counts"].items():
                print(f"  {name:<20} {count}")
        if "bin_quartiles" in info:
            quartiles = ", ".join(f"{q:.6g}" for q in info["bin_quartiles"])
            print(f"bin column {info['bin_column']!r} quartiles: {quartiles}")
        return 0

    if args.trace_command == "convert":
        eet = EETMatrix.read_csv(args.eet)
        spec = _trace_spec_from_args(args)
        workload = spec.build_workload(eet, seed=args.seed)
        write_workload_csv(workload, args.out)
        print(f"wrote {len(workload)} tasks to {args.out}")
        return 0

    # replay: run a trace-driven scenario (preset name or JSON file).
    source = Path(args.scenario)
    if source.exists() or source.suffix == ".json":
        from dataclasses import replace

        scenario = Scenario.from_json(source)
        if args.scheduler is not None:
            scenario = replace(
                scenario, scheduler=args.scheduler, scheduler_params={}
            )
        if args.seed is not None:
            scenario = replace(scenario, seed=args.seed)
    else:
        from .scenarios import build_scenario

        overrides: dict = {}
        if args.scheduler is not None:
            overrides["scheduler"] = args.scheduler
        if args.seed is not None:
            overrides["seed"] = args.seed
        scenario = build_scenario(args.scenario, **overrides)
    if scenario.trace is None:
        print(
            f"error: scenario {scenario.name!r} is not trace-driven "
            "(it has no \"trace\" section); use 'e2c-sim run' instead",
            file=sys.stderr,
        )
        return 2
    result = scenario.run()
    print(result.reports.by_name(args.report).to_text())
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json as json_module
    import time

    from .scenarios import build_scenario

    if args.repeat < 1:
        print("error: --repeat must be >= 1", file=sys.stderr)
        return 2
    names = _split_csv(args.scenarios)
    if not names:
        print("error: --scenarios must name at least one preset", file=sys.stderr)
        return 2
    overrides = {} if args.scheduler is None else {"scheduler": args.scheduler}

    header = (
        f"{'scenario':<20} {'sched':<8} {'tasks':>7} {'events':>8} "
        f"{'best ev/s':>10} {'mean ev/s':>10} {'wall s':>7}"
    )
    print(header)
    print("-" * len(header))
    results = []
    for name in names:
        scenario = build_scenario(name, **overrides)

        def _one_run():
            return scenario.build_simulator(
                parallel_workers=args.parallel_shards
            ).run()

        if args.profile is not None:
            # Profile an extra run that is NOT timed: instrumentation
            # overhead would poison the throughput numbers below.
            import cProfile
            import pstats

            out = args.profile
            if len(names) > 1:
                suffix = out.suffix or ".pstats"
                out = out.with_name(f"{out.stem}-{name}{suffix}")
            profiler = cProfile.Profile()
            profiler.enable()
            _one_run()
            profiler.disable()
            profiler.dump_stats(out)
            print(f"profile ({name}): top 20 by cumulative time -> {out}")
            stats = pstats.Stats(profiler, stream=sys.stdout)
            stats.sort_stats("cumulative").print_stats(20)

        walls = []
        result = None
        for _ in range(args.repeat):
            t0 = time.perf_counter()
            result = _one_run()
            walls.append(time.perf_counter() - t0)
        assert result is not None
        events = result.events_processed
        best = events / min(walls)
        mean = events / (sum(walls) / len(walls))
        row = {
            "scenario": name,
            "scheduler": result.scheduler_name,
            "tasks": result.summary.total_tasks,
            "events": events,
            "repeat": args.repeat,
            "best_events_per_sec": best,
            "mean_events_per_sec": mean,
            "mean_wall_s": sum(walls) / len(walls),
            "completion_rate": result.summary.completion_rate,
        }
        results.append(row)
        print(
            f"{name:<20} {result.scheduler_name:<8} "
            f"{row['tasks']:>7} {events:>8} {best:>10,.0f} {mean:>10,.0f} "
            f"{row['mean_wall_s']:>7.2f}"
        )
    if args.json is not None:
        args.json.write_text(
            json_module.dumps(results, indent=2), encoding="utf-8"
        )
        print(f"\nsaved: {args.json}")
    return 0


def _cmd_assignment(args: argparse.Namespace) -> int:
    from .education.assignment import (
        AssignmentConfig,
        figure5,
        figure6,
        figure7,
    )

    config = AssignmentConfig(
        replications=args.replications,
        duration=args.duration,
        seed=args.seed,
    )
    figures = {"5": figure5, "6": figure6, "7": figure7}
    chosen = figures.keys() if args.figure == "all" else [args.figure]
    for key in chosen:
        print(figures[key](config).to_text())
        print()
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from .positioning import render_table

    print(render_table())
    return 0


def _cmd_quiz(args: argparse.Namespace) -> int:
    from .education.quiz import generate_quiz

    quiz = generate_quiz(seed=args.seed)
    print(quiz.to_text())
    if args.key:
        print("\nAnswer key (machine index per task):")
        for method, mapping in quiz.answer_key().items():
            pretty = ", ".join(
                f"task {tid} -> {quiz.eet.machine_type_names[mid]}"
                for tid, mid in sorted(mapping.items())
            )
            print(f"  {method:<5} {pretty}")
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "generate": _cmd_generate,
    "schedulers": _cmd_schedulers,
    "scenarios": _cmd_scenarios,
    "sweep": _cmd_sweep,
    "tournament": _cmd_tournament,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "trace": _cmd_trace,
    "bench": _cmd_bench,
    "assignment": _cmd_assignment,
    "table1": _cmd_table1,
    "quiz": _cmd_quiz,
}


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except E2CError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Output piped into a pager/head that closed early — not an error.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
