"""Terminal visualization: bar charts, live system renderer, timelines."""

from .animation import Animator
from .barchart import BarChart, GroupedBarChart
from .histogram import Histogram
from .renderer import SystemRenderer
from .timeline import TimelineChart, timeline_from_records

__all__ = [
    "BarChart",
    "GroupedBarChart",
    "Histogram",
    "SystemRenderer",
    "TimelineChart",
    "timeline_from_records",
    "Animator",
]
