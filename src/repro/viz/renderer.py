"""Live system renderer — the Fig-1 layout in a terminal.

Draws the simulator state as the paper's overview diagram: the remaining
workload, the batch queue, the scheduler box (policy name), each machine with
its queue (tasks shown as their task-type tags, the visual analogue of the
GUI's colour coding), and the completed/cancelled/missed counters, plus the
"Current Time" display. Pure text; an optional ANSI colour mode tags task
types with stable colours.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..core.simulator import Simulator
    from ..machines.machine import Machine

__all__ = ["SystemRenderer"]

_ANSI_COLOURS = [36, 33, 35, 32, 34, 31, 96, 93, 95, 92]
_RESET = "\x1b[0m"


class SystemRenderer:
    """Renders a :class:`~repro.core.simulator.Simulator` as text frames."""

    def __init__(
        self,
        *,
        colour: bool = False,
        max_queue_display: int = 8,
        width: int = 78,
    ) -> None:
        self.colour = colour
        self.max_queue_display = max_queue_display
        self.width = width

    # -- helpers ---------------------------------------------------------------

    def _tag(self, task) -> str:
        name = task.task_type.name
        if not self.colour:
            return f"[{name}:{task.id}]"
        code = _ANSI_COLOURS[task.task_type.index % len(_ANSI_COLOURS)]
        return f"\x1b[{code}m[{name}:{task.id}]{_RESET}"

    def _queue_line(self, tasks, empty: str = "(empty)") -> str:
        tasks = list(tasks)
        if not tasks:
            return empty
        shown = tasks[: self.max_queue_display]
        suffix = (
            f" …+{len(tasks) - self.max_queue_display}"
            if len(tasks) > self.max_queue_display
            else ""
        )
        return " ".join(self._tag(t) for t in shown) + suffix

    def _machine_line(self, machine: "Machine") -> str:
        if machine.running is not None:
            running = f"▶ {self._tag(machine.running)}"
        else:
            running = "▷ idle"
        cap = machine.queue.capacity
        cap_str = "∞" if cap == float("inf") else str(int(cap))
        queue = self._queue_line(machine.queue, empty="·")
        return (
            f"  {machine.name:<12} {running:<18} "
            f"queue[{len(machine.queue)}/{cap_str}]: {queue}"
        )

    # -- frames -----------------------------------------------------------------

    def render(self, sim: "Simulator") -> str:
        """One full frame of the Fig-1 layout."""
        counts = sim.counts()
        bar = "─" * self.width
        lines = [
            bar,
            f" E2C simulator    policy: {sim.scheduler.name:<10} "
            f"current time: {sim.now:10.3f}",
            bar,
            f" workload: {sim.remaining_arrivals()} task(s) yet to arrive",
            f" batch queue ({len(sim.batch_queue)}): "
            + self._queue_line(sim.batch_queue),
            " machines:",
        ]
        for machine in sim.cluster:
            lines.append(self._machine_line(machine))
        lines.append(
            f" completed: {counts['completed']:<6} "
            f"cancelled: {counts['cancelled']:<6} "
            f"missed: {counts['missed']:<6}"
        )
        if sim.is_finished:
            lines.append(" ── simulation finished ──")
        lines.append(bar)
        return "\n".join(lines)

    def render_counts(self, sim: "Simulator") -> str:
        """Compact one-line status (for dense logs)."""
        counts = sim.counts()
        return (
            f"t={sim.now:9.3f} batch={len(sim.batch_queue)} "
            f"done={counts['completed']} cancel={counts['cancelled']} "
            f"miss={counts['missed']}"
        )

    def render_missed_tasks(self, sim: "Simulator") -> str:
        """The Missed Tasks component (Fig. 4): one row per missed task."""
        from ..tasks.task import TaskStatus

        rows = [
            t
            for t in sim.collector.tasks()
            if t.status is TaskStatus.MISSED
        ]
        header = (
            f"{'task':>6} {'type':<8} {'machine':<12} {'arrival':>10} "
            f"{'start':>10} {'missed at':>10} {'stage':<14}"
        )
        lines = ["Missed Tasks", header, "-" * len(header)]
        for t in rows:
            start = f"{t.start_time:.3f}" if t.start_time is not None else "—"
            lines.append(
                f"{t.id:>6} {t.task_type.name:<8} "
                f"{t.machine.name if t.machine else '—':<12} "
                f"{t.arrival_time:>10.3f} {start:>10} "
                f"{t.missed_time:>10.3f} "
                f"{t.drop_stage.value if t.drop_stage else '—':<14}"
            )
        if not rows:
            lines.append("(no missed tasks)")
        return "\n".join(lines)
