"""Machine execution timelines — an ASCII Gantt chart.

After a run, draws what each machine executed over time, one row per
machine, with task-type letters filling the busy intervals. Useful in the
classroom to *see* why MEET piles work on the fastest machine while MECT
spreads it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..core.errors import ConfigurationError

__all__ = ["TimelineChart", "timeline_from_records"]


@dataclass(frozen=True)
class _Interval:
    machine: str
    label: str
    start: float
    end: float


class TimelineChart:
    """ASCII Gantt chart of per-machine busy intervals."""

    def __init__(self, *, width: int = 72) -> None:
        if width < 10:
            raise ConfigurationError(f"timeline width too small: {width}")
        self.width = width
        self._intervals: list[_Interval] = []

    def add(self, machine: str, label: str, start: float, end: float) -> None:
        if end < start:
            raise ConfigurationError(
                f"interval end {end} precedes start {start}"
            )
        self._intervals.append(_Interval(machine, label, start, end))

    def to_text(self, *, t_max: float | None = None) -> str:
        if not self._intervals:
            return "(empty timeline)"
        horizon = t_max if t_max is not None else max(
            iv.end for iv in self._intervals
        )
        if horizon <= 0:
            horizon = 1.0
        machines: list[str] = []
        for iv in self._intervals:
            if iv.machine not in machines:
                machines.append(iv.machine)
        name_w = max(len(m) for m in machines)
        scale = self.width / horizon

        lines = [f"machine timeline (0 .. {horizon:.4g} s)"]
        for machine in machines:
            row = [" "] * self.width
            for iv in self._intervals:
                if iv.machine != machine:
                    continue
                lo = int(iv.start * scale)
                hi = max(lo + 1, int(iv.end * scale))
                letter = (iv.label or "?")[0]
                for x in range(lo, min(hi, self.width)):
                    row[x] = letter
            lines.append(f"{machine.ljust(name_w)} |{''.join(row)}|")
        axis = f"{'':{name_w}} 0{'':{self.width - 10}}{horizon:9.4g}"
        lines.append(axis)
        return "\n".join(lines)


def timeline_from_records(
    task_records: Sequence[Mapping], *, width: int = 72
) -> TimelineChart:
    """Build a timeline from Task-report rows (executed tasks only)."""
    chart = TimelineChart(width=width)
    for row in task_records:
        start = row.get("start_time")
        if start in (None, ""):
            continue
        end = row.get("completion_time")
        if end in (None, ""):
            end = row.get("missed_time")
        if end in (None, ""):
            continue
        chart.add(
            str(row.get("machine", "?")),
            str(row.get("task_type", "?")),
            float(start),
            float(end),
        )
    return chart
