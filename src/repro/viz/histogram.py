"""ASCII histograms — distribution views for waiting/response times.

Bar charts show means; distributions tell the queueing story (§4 asks
students to reason about *why* waits blow up at high intensity). Renders a
fixed-bin horizontal histogram with counts and percentages, plus quantile
annotations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.errors import ConfigurationError

__all__ = ["Histogram"]


@dataclass
class Histogram:
    """Fixed-bin histogram of a non-negative sample."""

    title: str
    values: Sequence[float]
    bins: int = 10
    width: int = 40
    unit: str = "s"

    def __post_init__(self) -> None:
        if self.bins < 1:
            raise ConfigurationError(f"bins must be >= 1, got {self.bins}")
        if self.width < 1:
            raise ConfigurationError(f"width must be >= 1, got {self.width}")
        self._data = np.asarray(list(self.values), dtype=float)
        if self._data.size and not np.isfinite(self._data).all():
            raise ConfigurationError("histogram values must be finite")

    @property
    def n(self) -> int:
        return int(self._data.size)

    def edges_and_counts(self) -> tuple[np.ndarray, np.ndarray]:
        if self._data.size == 0:
            return np.linspace(0.0, 1.0, self.bins + 1), np.zeros(
                self.bins, dtype=int
            )
        lo = float(self._data.min())
        hi = float(self._data.max())
        if lo == hi:
            hi = lo + 1.0
        counts, edges = np.histogram(
            self._data, bins=self.bins, range=(lo, hi)
        )
        return edges, counts

    def quantiles(
        self, qs: Sequence[float] = (0.5, 0.9, 0.99)
    ) -> dict[float, float]:
        if self._data.size == 0:
            return {q: 0.0 for q in qs}
        return {
            q: float(np.quantile(self._data, q)) for q in qs
        }

    def to_text(self) -> str:
        edges, counts = self.edges_and_counts()
        total = max(int(counts.sum()), 1)
        top = max(int(counts.max()), 1) if counts.size else 1
        label_w = max(
            len(f"{edges[i]:.3g}–{edges[i + 1]:.3g}")
            for i in range(len(counts))
        )
        lines = [self.title, "-" * max(len(self.title), 8)]
        if self.n == 0:
            lines.append("(no samples)")
            return "\n".join(lines)
        for i, count in enumerate(counts):
            label = f"{edges[i]:.3g}–{edges[i + 1]:.3g}"
            filled = int(round(count / top * self.width))
            bar = "#" * filled + " " * (self.width - filled)
            lines.append(
                f"{label.ljust(label_w)} |{bar}| "
                f"{count:>6} ({100 * count / total:5.1f}%)"
            )
        quantiles = self.quantiles()
        lines.append(
            "  ".join(
                f"p{int(100 * q)}={value:.4g}{self.unit}"
                for q, value in quantiles.items()
            )
            + f"  n={self.n}"
        )
        return "\n".join(lines)

    @classmethod
    def from_task_records(
        cls,
        records: Sequence[dict],
        field: str = "wait_time",
        *,
        title: str | None = None,
        bins: int = 10,
    ) -> "Histogram":
        """Histogram of a numeric Task-report column (skips blank cells)."""
        values = [
            float(r[field])
            for r in records
            if r.get(field) not in (None, "")
        ]
        return cls(
            title=title or f"distribution of {field}",
            values=values,
            bins=bins,
        )
