"""ASCII bar charts — the figure renderer of this reproduction.

The paper's evaluation figures are grouped bar charts (completion % per
policy per intensity, survey scores per metric). PyQt/matplotlib are not
available offline, so figures render as deterministic ASCII: horizontal bars
grouped by category, with the numeric value printed at the bar end. Every
chart also exports its series as CSV/dicts so EXPERIMENTS.md numbers come
from the same object that draws them.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from pathlib import Path
from typing import TextIO

from ..core.errors import ConfigurationError

__all__ = ["BarChart", "GroupedBarChart"]

_FULL = "#"


@dataclass
class BarChart:
    """A flat horizontal bar chart: one labelled value per bar."""

    title: str
    labels: list[str] = field(default_factory=list)
    values: list[float] = field(default_factory=list)
    max_value: float | None = None
    width: int = 40
    unit: str = ""

    def add(self, label: str, value: float) -> "BarChart":
        self.labels.append(label)
        self.values.append(float(value))
        return self

    def _scale(self) -> float:
        top = self.max_value
        if top is None:
            top = max(self.values, default=1.0)
        if top <= 0:
            top = 1.0
        return top

    def to_text(self) -> str:
        if len(self.labels) != len(self.values):
            raise ConfigurationError("labels and values must align")
        top = self._scale()
        label_w = max((len(l) for l in self.labels), default=0)
        lines = [self.title, "-" * max(len(self.title), 8)]
        for label, value in zip(self.labels, self.values):
            filled = int(round(min(value / top, 1.0) * self.width))
            bar = _FULL * filled + " " * (self.width - filled)
            lines.append(
                f"{label.ljust(label_w)} |{bar}| {value:.4g}{self.unit}"
            )
        return "\n".join(lines)

    def to_dicts(self) -> list[dict]:
        return [
            {"label": l, "value": v} for l, v in zip(self.labels, self.values)
        ]

    def to_csv(self, target: str | Path | TextIO | None = None) -> str:
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(["label", "value"])
        for label, value in zip(self.labels, self.values):
            writer.writerow([label, f"{value:.9g}"])
        text = buffer.getvalue()
        _maybe_write(text, target)
        return text


@dataclass
class GroupedBarChart:
    """Grouped horizontal bars: value per (group, series) pair.

    Matches the layout of Figures 5–7 (groups = intensity levels, series =
    scheduling policies) and Figure 8 (groups = metrics, series = cohorts).
    """

    title: str
    groups: list[str] = field(default_factory=list)
    series: list[str] = field(default_factory=list)
    _data: dict[tuple[str, str], float] = field(default_factory=dict)
    max_value: float | None = None
    width: int = 40
    unit: str = ""

    def set(self, group: str, series: str, value: float) -> "GroupedBarChart":
        if group not in self.groups:
            self.groups.append(group)
        if series not in self.series:
            self.series.append(series)
        self._data[(group, series)] = float(value)
        return self

    def get(self, group: str, series: str) -> float:
        try:
            return self._data[(group, series)]
        except KeyError:
            raise ConfigurationError(
                f"no value for group={group!r}, series={series!r}"
            ) from None

    def _scale(self) -> float:
        top = self.max_value
        if top is None:
            top = max(self._data.values(), default=1.0)
        if top <= 0:
            top = 1.0
        return top

    def to_text(self) -> str:
        top = self._scale()
        series_w = max((len(s) for s in self.series), default=0)
        lines = [self.title, "=" * max(len(self.title), 8)]
        for group in self.groups:
            lines.append(f"[{group}]")
            for series in self.series:
                value = self._data.get((group, series))
                if value is None:
                    continue
                filled = int(round(min(value / top, 1.0) * self.width))
                bar = _FULL * filled + " " * (self.width - filled)
                lines.append(
                    f"  {series.ljust(series_w)} |{bar}| {value:.4g}{self.unit}"
                )
        return "\n".join(lines)

    def to_dicts(self) -> list[dict]:
        return [
            {"group": g, "series": s, "value": self._data[(g, s)]}
            for g in self.groups
            for s in self.series
            if (g, s) in self._data
        ]

    def to_csv(self, target: str | Path | TextIO | None = None) -> str:
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(["group", "series", "value"])
        for row in self.to_dicts():
            writer.writerow(
                [row["group"], row["series"], f"{row['value']:.9g}"]
            )
        text = buffer.getvalue()
        _maybe_write(text, target)
        return text

    def series_values(self, series: str) -> list[float]:
        """Values of one series across groups (group order)."""
        return [
            self._data[(g, series)]
            for g in self.groups
            if (g, series) in self._data
        ]


def _maybe_write(text: str, target: str | Path | TextIO | None) -> None:
    if target is None:
        return
    if isinstance(target, (str, Path)):
        Path(target).write_text(text, encoding="utf-8")
    else:
        target.write(text)
