"""Terminal animation loop — "the GUI displays simulations in live time".

Couples a :class:`~repro.core.controller.SimulationController` with a
:class:`~repro.viz.renderer.SystemRenderer`: every processed event produces a
frame (optionally throttled), redrawn in place with ANSI cursor control or
appended as a scrolling log. Headless-safe: with ``stream=None`` frames are
collected in memory (used by tests and by the examples when piped).
"""

from __future__ import annotations

from typing import IO, Callable

from ..core.controller import SimulationController
from ..core.errors import ConfigurationError
from ..core.events import Event
from ..core.simulator import Simulator
from .renderer import SystemRenderer

__all__ = ["Animator"]

_CLEAR = "\x1b[2J\x1b[H"


class Animator:
    """Frame producer/driver for live simulation display."""

    def __init__(
        self,
        factory: Callable[[], Simulator],
        *,
        renderer: SystemRenderer | None = None,
        stream: IO[str] | None = None,
        in_place: bool = False,
        speed: float = 0.0,
        frame_every: int = 1,
        max_frames: int | None = None,
    ) -> None:
        """
        Parameters
        ----------
        factory:
            Builds the simulator (passed to the controller; reusable by Reset).
        renderer:
            Frame renderer (defaults to a plain :class:`SystemRenderer`).
        stream:
            Output stream; None collects frames in :attr:`frames` instead.
        in_place:
            Redraw over the previous frame with ANSI clear (interactive
            terminals); False appends frames (logs, pipes).
        speed:
            Simulated seconds per wall second (controller speed dial).
        frame_every:
            Render every N-th event (thin out dense simulations).
        max_frames:
            Stop collecting after this many frames (memory guard); the
            simulation itself still runs to completion.
        """
        if frame_every < 1:
            raise ConfigurationError(f"frame_every must be >= 1: {frame_every}")
        self.renderer = renderer or SystemRenderer()
        self.stream = stream
        self.in_place = in_place
        self.frame_every = frame_every
        self.max_frames = max_frames
        self.frames: list[str] = []
        self._event_counter = 0
        self.controller = SimulationController(
            factory, speed=speed, frame_callback=self._on_event
        )

    # -- frame plumbing ----------------------------------------------------------

    def _on_event(self, sim: Simulator, event: Event) -> None:
        self._event_counter += 1
        if self._event_counter % self.frame_every:
            return
        self._emit(self.renderer.render(sim))

    def _emit(self, frame: str) -> None:
        if self.stream is not None:
            if self.in_place:
                self.stream.write(_CLEAR)
            self.stream.write(frame + "\n")
            self.stream.flush()
        if self.max_frames is None or len(self.frames) < self.max_frames:
            self.frames.append(frame)

    # -- run control ---------------------------------------------------------------

    def play(self) -> bool:
        """Run to completion (or pause); emits a final frame. Returns finished."""
        finished = self.controller.play()
        self._emit(self.renderer.render(self.controller.simulator))
        return finished

    def step(self) -> Event | None:
        """Single event + frame (the Increment button)."""
        return self.controller.increment()

    def reset(self) -> None:
        self.frames.clear()
        self._event_counter = 0
        self.controller.reset()

    @property
    def simulator(self) -> Simulator:
        return self.controller.simulator
