#!/usr/bin/env python3
"""Satellite image processing on a CPU/GPU/FPGA cluster (paper §3's example).

"A heterogeneous system processing satellite images should support task types
for object detection, noise removal, and image enhancements to be performed
on the received images."

This example runs that system across all batch policies, prints the per-type
completion rates (does any application starve?), the machine utilisation
report, energy per policy, and an execution timeline showing where each
application actually ran.

Run:  python examples/satellite_imaging.py
"""

from repro.scenarios import satellite_imaging
from repro.viz.barchart import GroupedBarChart
from repro.viz.timeline import timeline_from_records


def main() -> None:
    policies = ("MM", "MMU", "MSD", "ELARE", "FELARE")
    chart = GroupedBarChart(
        "satellite imaging — per-task-type completion % by policy",
        max_value=100.0,
        unit="%",
    )
    energies: dict[str, float] = {}
    sample_records = None

    for policy in policies:
        scenario = satellite_imaging(
            scheduler=policy, intensity="high", duration=500.0
        )
        result = scenario.run()
        for type_name, rate in sorted(
            result.summary.completion_rate_by_type.items()
        ):
            chart.set(type_name, policy, 100.0 * rate)
        energies[policy] = result.summary.total_energy
        if policy == "MM":
            sample_records = result.task_records
            machine_report = result.reports.machine_report()

    print(chart.to_text())
    print()

    print("total energy (J) per policy:")
    for policy, joules in energies.items():
        print(f"  {policy:<8} {joules:12.0f}")
    print()

    print("machine utilisation under MM:")
    print(machine_report.to_text())
    print()

    print("execution timeline under MM (first 60 s):")
    chart = timeline_from_records(sample_records, width=70)
    print(chart.to_text(t_max=60.0))
    print()
    print(
        "Object detection (o) concentrates on the GPU, noise removal (n) on\n"
        "the FPGA — heterogeneity exploited by completion-time-aware mapping."
    )


if __name__ == "__main__":
    main()
