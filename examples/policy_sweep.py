#!/usr/bin/env python3
"""Policy sweep: a small experiment campaign over two scenarios.

The classroom question "which policy wins where?" answered the declarative
way: describe a campaign (scenario grid x scheduler list x seed list), let
``repro.experiments`` fan the 2 x 3 x 2 = 12 runs out over worker
processes, and read the per-scenario comparison. The campaign seed makes
the whole table reproducible — rerun this script (or the equivalent
``e2c-sim sweep`` line below) and you get byte-identical numbers.

Run:  python examples/policy_sweep.py

Shell equivalent:

    e2c-sim sweep --scenarios satellite_imaging,edge_ai \\
                  --schedulers FCFS,MECT,MM --seeds 1,2 --seed 2023 \\
                  --save-table campaign.csv
"""

from repro.experiments import CampaignSpec, run_campaign


def main() -> None:
    spec = CampaignSpec(
        name="policy_sweep_demo",
        scenarios=[
            # Bare names use the preset defaults; a dict form adds factory
            # overrides (shorter runs keep the demo snappy).
            {"name": "satellite_imaging", "overrides": {"duration": 300.0}},
            {"name": "edge_ai", "overrides": {"duration": 200.0}},
        ],
        schedulers=["FCFS", "MECT", "MM"],
        seeds=[1, 2],
        seed=2023,
        metrics=["completion_rate", "mean_response_time", "total_energy"],
    )

    result = run_campaign(spec)  # parallel over your cores
    print(result.to_text())
    print()

    # The tidy table has one row per run — ready for pandas/R/spreadsheets.
    csv_text = result.to_csv("policy_sweep_demo.csv")
    print(f"wrote policy_sweep_demo.csv ({len(csv_text.splitlines()) - 1} rows)")

    # Campaign specs round-trip through JSON, so a sweep is an artifact you
    # can commit next to your lab report and rerun verbatim.
    spec.to_json("policy_sweep_demo.json")
    print("wrote policy_sweep_demo.json (rerun with: "
          "e2c-sim sweep --spec policy_sweep_demo.json)")

    best = result.comparison("edge_ai").winner("completion_rate")
    print(f"\nBest completion rate on edge_ai: {best}")


if __name__ == "__main__":
    main()
