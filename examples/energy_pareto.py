#!/usr/bin/env python3
"""Energy-weight calibration: trace the Pareto front of energy-aware offloading.

``EET_AWARE_REMOTE(energy_weight=w)`` prices WAN joules in seconds: at
``w = 0`` the gateway minimises completion time alone (ship everything the
cloud finishes faster), and as ``w`` grows each offload must *buy* its
transfer energy with saved time, so energy-expensive payloads stay home.
Somewhere along that dial lives the Pareto front of the two quantities a
deadline-driven offloading study actually trades:

* **completion rate** (maximise) — the work the federation got done, and
* **energy per completed task** (minimise) — the whole bill, machines plus
  WAN meters, per unit of completed work.

That pair is survivorship-proof: a setting cannot look good by dropping
tasks, because dropped tasks lower axis one and spread the idle-power bill
over fewer completions on axis two. (Mean response time, by contrast, only
counts survivors — under deadline pressure a "faster" setting is often
just one that completed less. Try ranking on it and watch the front lie.)

This is the assignment prompt sketched in docs/FEDERATION.md §5, executed:
sweep ``energy_weight`` over the ``fed_congested`` preset (contended
fifo/ps uplinks, 0.35 J/MB links) as one campaign — each weight is a
scenario ref with a factory override, so every weight faces the identical
workloads — then report which weights are Pareto-optimal and which are
dominated. Watch the dynamics, not just the front: pricing energy keeps
the heavy 20 MB payloads home, which can saturate the edge CPUs and push
*more* of the light traffic out, so the offload column is not monotone in
``w``.

Run:  python examples/energy_pareto.py

The campaign spec is written next to the table; rerun it verbatim with:

    e2c-sim sweep --spec energy_pareto.json
"""

from repro.experiments import CampaignSpec, run_campaign

#: The J→s exchange rates to sweep. 0 is the time-only baseline; by the
#: largest weight a 20 MB model update pays a ~350 s penalty to cross and
#: effectively never leaves its edge site.
ENERGY_WEIGHTS = [0.0, 0.5, 1.0, 3.0, 10.0, 50.0]


def pareto_front(points: dict[float, tuple[float, float]]) -> list[float]:
    """Weights whose (completion ↑, J/task ↓) point nothing dominates."""
    front = []
    for weight, (completion, j_per_task) in points.items():
        dominated = any(
            (c2 >= completion and j2 <= j_per_task)
            and (c2 > completion or j2 < j_per_task)
            for w2, (c2, j2) in points.items()
            if w2 != weight
        )
        if not dominated:
            front.append(weight)
    return sorted(front)


def build_campaign() -> CampaignSpec:
    """One scenario ref per energy weight, all over the same workloads."""
    return CampaignSpec(
        name="energy_pareto",
        scenarios=[
            {
                "name": "fed_congested",
                "label": f"w={weight:g}",
                "overrides": {
                    "duration": 200.0,
                    "gateway_params": {"energy_weight": weight},
                },
            }
            for weight in ENERGY_WEIGHTS
        ],
        schedulers=["MECT"],
        seeds=[1, 2, 3],
        seed=2026,
        metrics=[
            "completion_rate",
            "mean_response_time",
            "total_energy",
        ],
    )


def main() -> None:
    spec = build_campaign()
    result = run_campaign(spec)

    # Mean over the seed axis, per weight. Energy per completed task folds
    # in the WAN meters carried by the federated extras — the whole bill.
    table: dict[float, tuple[float, float, float, float]] = {}
    for weight in ENERGY_WEIGHTS:
        rows = [r for r in result.records if r.scenario == f"w={weight:g}"]
        n = len(rows)
        table[weight] = (
            sum(r.summary.completion_rate for r in rows) / n,
            sum(
                (r.summary.total_energy + r.extras["wan_energy_total"])
                / r.summary.completed
                for r in rows
            ) / n,
            sum(r.extras["offload_rate"] for r in rows) / n,
            sum(r.summary.mean_response_time for r in rows) / n,
        )

    front = pareto_front(
        {w: (row[0], row[1]) for w, row in table.items()}
    )

    header = (
        f"{'energy_weight':>13} {'offload':>8} {'completed':>10} "
        f"{'J per completed':>16} {'mean resp s':>12}  verdict"
    )
    print(header)
    print("-" * len(header))
    for weight in ENERGY_WEIGHTS:
        completion, j_per_task, offload, resp = table[weight]
        verdict = "Pareto-optimal" if weight in front else "dominated"
        print(
            f"{weight:>13g} {offload:>8.1%} {completion:>10.1%} "
            f"{j_per_task:>16,.1f} {resp:>12.2f}  {verdict}"
        )
    print(
        f"\nPareto front: energy_weight in {front} — every other setting "
        "completes less work AND pays more joules per completed task than "
        "some point on the front. The front's ends are the assignment's "
        "answer: one weight maximises throughput of completed work, the "
        "other minimises the price per unit of it; everything between is "
        "a defensible operating point."
    )

    spec.to_json("energy_pareto.json")
    print("\nwrote energy_pareto.json (rerun with: "
          "e2c-sim sweep --spec energy_pareto.json)")


if __name__ == "__main__":
    main()
