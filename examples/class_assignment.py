#!/usr/bin/env python3
"""The full class assignment of §4, end to end.

Reproduces the student workflow: run the three intensity levels on a
homogeneous and a heterogeneous system with immediate policies (Figures 5
and 6), the heterogeneous system with batch policies (Figure 7), save the
CSV data behind each bar chart, and print the charts.

Run:  python examples/class_assignment.py [output_dir]
"""

import sys
from pathlib import Path

from repro.education.assignment import (
    AssignmentConfig,
    figure5,
    figure6,
    figure7,
)


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("assignment_out")
    out_dir.mkdir(parents=True, exist_ok=True)

    config = AssignmentConfig(duration=500.0, replications=3, seed=2023)

    for number, builder in (("5", figure5), ("6", figure6), ("7", figure7)):
        figure = builder(config)
        print(figure.to_text())
        print()
        csv_path = out_dir / f"figure{number}.csv"
        figure.chart.to_csv(csv_path)
        print(f"  -> series saved to {csv_path}")
        print()

    print("Assignment questions the data answers:")
    print(" 1. Why does completion % fall as intensity rises?   ")
    print("    (offered load exceeds capacity; queueing delay eats slack)")
    print(" 2. Why does MECT beat FCFS on the heterogeneous system?")
    print("    (FCFS ignores EETs; MECT avoids slow-machine assignments)")
    print(" 3. Why do batch policies beat immediate ones when overloaded?")
    print("    (a buffered queue lets the mapper pick task/machine pairs")
    print("     jointly instead of committing on arrival)")


if __name__ == "__main__":
    main()
