#!/usr/bin/env python3
"""Live terminal animation — the "visual" in Visual Simulator.

Streams the Fig-1 system view while a simulation runs: the batch queue, each
machine's running task and queue (task-type tags in colour), and the
completed/cancelled/missed counters, plus the Current Time readout. Then
demonstrates the Increment button (single-event stepping) and the missed-task
component (Fig. 4).

Run:  python examples/live_animation.py          # animated
      python examples/live_animation.py --fast   # no pacing
"""

import sys

from repro.scenarios import satellite_imaging
from repro.viz.animation import Animator
from repro.viz.renderer import SystemRenderer


def main() -> None:
    fast = "--fast" in sys.argv
    interactive = sys.stdout.isatty() and not fast

    scenario = satellite_imaging(
        scheduler="MM", intensity="high", duration=120.0
    )
    animator = Animator(
        scenario.build_simulator,
        renderer=SystemRenderer(colour=interactive),
        stream=sys.stdout,
        in_place=interactive,
        speed=40.0 if interactive else 0.0,   # 40 sim-seconds per wall-second
        frame_every=1 if interactive else 50,
        max_frames=10,
    )
    animator.play()

    print()
    print("Single-stepping a fresh run (the Increment button), 5 events:")
    animator.reset()
    for _ in range(5):
        event = animator.step()
        if event is None:
            break
        print(
            f"  t={event.time:8.3f}  {event.type.value:<16} "
            f"(events processed: {animator.simulator.events_processed})"
        )

    print()
    # Finish the run and show the Fig-4 missed-tasks component.
    animator.controller.play()
    renderer = SystemRenderer()
    print(renderer.render_missed_tasks(animator.simulator))


if __name__ == "__main__":
    main()
