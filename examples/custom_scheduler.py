#!/usr/bin/env python3
"""Plugging in a custom scheduling policy — the graduate assignment (§4).

"Required by the graduate students ... the third part of this assignment was
to create and implement their own scheduling method for the heterogeneous
system that enabled fairness across various task types."

This example implements exactly that: FAIR-MCT, a custom immediate policy
that biases completion-time mapping toward task types with poor historical
on-time rates, registers it with one decorator, and benchmarks it against
the built-ins on completion rate and Jain's fairness index.

Run:  python examples/custom_scheduler.py
"""

import numpy as np

from repro import (
    ImmediateScheduler,
    Scenario,
    generate_eet_cvb,
    register_scheduler,
)


@register_scheduler
class FairMCT(ImmediateScheduler):
    """MCT with a fairness boost for historically-starved task types.

    The machine score is expected completion time scaled by the task type's
    historical on-time rate: a type failing often sees effectively *smaller*
    completion times, so it wins contended fast machines more frequently.
    """

    name = "FAIR-MCT"
    description = "custom policy: completion time scaled by per-type success"

    def __init__(self, pressure: float = 1.0) -> None:
        self.pressure = pressure

    def choose_machine(self, task, ctx):
        completion = ctx.cluster.completion_times(task, ctx.now)
        success = ctx.type_stats.success_rate(task.task_type.name)
        # success 1.0 -> plain MCT; success 0.0 -> strongly prioritised.
        weight = 1.0 - self.pressure * (1.0 - success) * 0.5
        return ctx.cluster.machines[int(np.argmin(completion * weight))]


def main() -> None:
    # A skewed system: T3 is slow everywhere, so greedy policies starve it.
    rng_eet = generate_eet_cvb(
        3, 4, mean_task=18.0, v_task=0.9, v_machine=0.5, seed=23
    )
    scenario = Scenario(
        eet=rng_eet,
        machine_counts={n: 1 for n in rng_eet.machine_type_names},
        scheduler="MECT",
        generator={"duration": 600.0, "intensity": 1.6},
        seed=5,
        name="custom-policy-demo",
    )

    print("policy     completion%   fairness(Jain)  per-type completion %")
    print("-" * 72)
    for policy in ("FCFS", "MECT", "FAIR-MCT"):
        result = scenario.with_scheduler(policy).run()
        s = result.summary
        by_type = "  ".join(
            f"{name}:{100 * rate:5.1f}"
            for name, rate in sorted(s.completion_rate_by_type.items())
        )
        print(
            f"{policy:<10} {100 * s.completion_rate:10.1f}   "
            f"{s.fairness_index:13.3f}   {by_type}"
        )

    print()
    print(
        "FAIR-MCT trades a little aggregate completion for a flatter\n"
        "per-type profile — the trade-off the assignment asks students to\n"
        "discover. Try `pressure=2.0` for a stronger fairness push:"
    )
    result = scenario.with_scheduler("FAIR-MCT", pressure=2.0).run()
    print(
        f"FAIR-MCT(pressure=2): completion "
        f"{100 * result.summary.completion_rate:.1f}%, fairness "
        f"{result.summary.fairness_index:.3f}"
    )


if __name__ == "__main__":
    main()
