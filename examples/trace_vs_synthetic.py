#!/usr/bin/env python3
"""Does a policy ranking survive contact with a real trace?

Synthetic arrivals (Poisson, stationary rates) are the default experimental
diet, but real cluster traces are bursty, heavy-tailed and non-stationary.
This example runs the same policy comparisons on both diets:

1. **Local policies, trace vs synthetic** — the ``trace_replay`` preset
   (the bundled Google-style sample pushed through the TraceSpec ingestion
   pipeline) against a synthetic twin: same EET, same machines, a Poisson
   workload of matched size and span. If a policy's rank flips between the
   columns, the synthetic benchmark was flattering it.
2. **Gateway policies under background cross-traffic** — the
   ``diurnal_wan`` preset (uplinks carrying diurnal + bursty MMPP
   cross-traffic) against its quiet twin with the cross-traffic stripped.
   Offload-happy gateways look great on an empty WAN; residual capacity is
   where they earn (or lose) their keep.

Run:  python examples/trace_vs_synthetic.py [--smoke]

--smoke thins the trace and shortens the federated run for CI.
"""

import argparse
from dataclasses import replace

from repro.scenarios import build_scenario

LOCAL_POLICIES = ("FCFS", "MECT", "MSD")
GATEWAYS = ("LOCALITY_FIRST", "LEAST_LOADED", "EET_AWARE_REMOTE")


def synthetic_twin(scenario, total_tasks: int, span: float):
    """A Poisson-fed copy of a trace-driven scenario, matched in size."""
    workload = scenario.build_workload()
    shares: dict[str, float] = {}
    for task in workload:
        name = task.task_type.name
        shares[name] = shares.get(name, 0.0) + 1.0
    return replace(
        scenario,
        trace=None,
        generator={
            "duration": span,
            "count": total_tasks,
            "specs": [
                {"name": name, "share": share}
                for name, share in sorted(shares.items())
            ],
        },
        name=f"{scenario.name}-synthetic",
    )


def quiet_twin(scenario):
    """The same federated scenario with the background cross-traffic removed."""
    from repro.core.config import Scenario

    data = scenario.to_dict()
    for link in data["federation"]["topology"]["links"].values():
        if isinstance(link, dict):
            link.pop("cross_traffic", None)
    return Scenario.from_dict(data)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="thinned trace + short federated run (CI smoke mode)",
    )
    args = parser.parse_args()

    trace_kwargs = {"sample": 0.4, "max_tasks": 120} if args.smoke else {}
    duration = 90.0 if args.smoke else 300.0

    # -- Part 1: local policies, trace-driven vs synthetic ----------------
    base = build_scenario("trace_replay", **trace_kwargs)
    trace_workload = base.build_workload()
    span = max(t.arrival_time for t in trace_workload) or 1.0
    twin = synthetic_twin(base, len(trace_workload), span)

    print(f"Part 1 — local policies on {len(trace_workload)} tasks "
          f"({span:.0f} s span): trace-driven vs matched synthetic")
    print(f"{'policy':<8} {'trace compl%':>13} {'synth compl%':>13} "
          f"{'trace kJ':>9} {'synth kJ':>9}")
    print("-" * 56)
    for policy in LOCAL_POLICIES:
        on_trace = base.with_scheduler(policy).run().summary
        on_synth = twin.with_scheduler(policy).run().summary
        print(
            f"{policy:<8} {on_trace.completion_rate:>12.1%} "
            f"{on_synth.completion_rate:>12.1%} "
            f"{on_trace.total_energy / 1e3:>9.1f} "
            f"{on_synth.total_energy / 1e3:>9.1f}"
        )
    print()

    # -- Part 2: gateways with and without background cross-traffic -------
    print(f"Part 2 — gateway policies over {duration:.0f} s of WAN load: "
          "contended uplinks vs the quiet twin")
    print(f"{'gateway':<18} {'busy compl%':>12} {'quiet compl%':>13} "
          f"{'busy offl%':>11} {'quiet offl%':>12}")
    print("-" * 70)
    for gateway in GATEWAYS:
        contended = build_scenario(
            "diurnal_wan", gateway=gateway, duration=duration
        )
        busy = contended.run()
        quiet = quiet_twin(contended).run()
        print(
            f"{gateway:<18} {busy.summary.completion_rate:>11.1%} "
            f"{quiet.summary.completion_rate:>12.1%} "
            f"{busy.offload_rate:>10.1%} {quiet.offload_rate:>11.1%}"
        )
    print()
    print("Reading the tables: a rank flip between trace and synthetic "
          "columns, or a gateway that only wins on the quiet WAN, is a "
          "policy conclusion that would not survive deployment.")


if __name__ == "__main__":
    main()
