#!/usr/bin/env python3
"""Energy- and fairness-aware scheduling on a multi-tenant edge (paper §1).

The motivating system of the paper's introduction: an IoT edge node serving
object detection, face recognition and speech recognition on ARM CPUs, an
edge GPU and an inference ASIC. The ASIC crushes face recognition (fast AND
low-power) but is a poor match for speech — exactly the kind of inconsistent
heterogeneity where an energy-greedy policy starves task types.

Compares MM (deadline-only), ELARE (energy-aware) and FELARE (energy- and
fairness-aware) on completion rate, Jain's fairness index across task types,
and total energy — the E-X3 story. Also demonstrates the communication and
memory extensions.

Run:  python examples/edge_ai_energy.py
"""

from repro.metrics.energy import energy_breakdown
from repro.scenarios import edge_ai
from repro.viz.barchart import GroupedBarChart


def main() -> None:
    policies = ("MM", "ELARE", "FELARE")
    chart = GroupedBarChart(
        "edge AI under overload — policy comparison", unit="", max_value=None
    )
    print("policy    completion%   fairness(Jain)   energy(J)   J/task")
    print("-" * 62)
    for policy in policies:
        scenario = edge_ai(scheduler=policy, intensity=2.5, duration=500.0)
        result = scenario.run()
        s = result.summary
        print(
            f"{policy:<8} {100 * s.completion_rate:10.1f}   "
            f"{s.fairness_index:13.3f}   {s.total_energy:9.0f}   "
            f"{s.energy_per_completed_task:6.1f}"
        )
        chart.set("completion %", policy, 100 * s.completion_rate)
        chart.set("fairness (×100)", policy, 100 * s.fairness_index)
    print()
    print(chart.to_text())
    print()

    # Per-type rates: where does fairness pressure come from?
    print("per-task-type completion rates:")
    header = f"{'policy':<8}"
    scenario = edge_ai(scheduler="MM", intensity=2.5, duration=500.0)
    type_names = scenario.eet.task_type_names
    print(header + "".join(f"{n:>22}" for n in type_names))
    for policy in policies:
        result = edge_ai(
            scheduler=policy, intensity=2.5, duration=500.0
        ).run()
        rates = result.summary.completion_rate_by_type
        print(
            f"{policy:<8}"
            + "".join(f"{100 * rates.get(n, 0.0):21.1f}%" for n in type_names)
        )
    print()

    # The communication extension in action.
    print("with the star network enabled (latency + payload transfer):")
    for with_network in (False, True):
        result = edge_ai(
            scheduler="FELARE",
            intensity=2.5,
            duration=500.0,
            with_network=with_network,
        ).run()
        label = "networked" if with_network else "ideal    "
        print(
            f"  {label}  completion {100 * result.summary.completion_rate:5.1f}%  "
            f"mean response {result.summary.mean_response_time:6.2f} s"
        )
    print()

    # Energy breakdown by machine type for the last run.
    scenario = edge_ai(scheduler="FELARE", intensity=2.5, duration=500.0)
    simulator = scenario.build_simulator()
    simulator.run()
    breakdown = energy_breakdown(simulator.cluster)
    print("energy by machine type (FELARE):")
    for name, joules in sorted(breakdown.by_machine_type.items()):
        print(f"  {name:<6} {joules:10.0f} J")
    print(f"  idle fraction: {100 * breakdown.idle_fraction:.1f}%")


if __name__ == "__main__":
    main()
