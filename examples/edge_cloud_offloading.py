#!/usr/bin/env python3
"""Edge-cloud offloading: when is it worth shipping a task across the WAN?

The federated kernel runs two clusters — a small edge site where every task
arrives, and a fast cloud behind a WAN link — under one clock. A *gateway*
policy decides per task whether to keep it local or offload it (paying
``latency + data_in / bandwidth`` seconds of transfer) before the cluster's
*local* policy picks a machine. This script compares the four stock gateway
disciplines on the ``edge_cloud`` preset, then shows how the WAN latency
itself flips the keep-vs-offload trade-off.

Run:  python examples/edge_cloud_offloading.py

Shell equivalent for a single run:

    e2c-sim run --scenario edge_cloud --policy mect --gateway eet-aware-remote
"""

from repro.scenarios import build_scenario


def compare_gateways() -> None:
    print("Gateway face-off on edge_cloud (local policy: MECT)\n")
    header = (
        f"{'gateway':<18} {'completion':>10} {'on-time':>8} "
        f"{'mean resp s':>12} {'offloaded':>10} {'WAN s':>8}"
    )
    print(header)
    print("-" * len(header))
    for gateway in (
        "LOCALITY_FIRST",
        "LEAST_LOADED",
        "EET_AWARE_REMOTE",
        "RANDOM_SPLIT",
    ):
        # RANDOM_SPLIT defaults to the *arrival* weights (cloud gets none);
        # give it an explicit 50/50 split so it actually uses the cloud.
        params = {"weights": [0.5, 0.5]} if gateway == "RANDOM_SPLIT" else None
        result = build_scenario(
            "edge_cloud", gateway=gateway, gateway_params=params
        ).run()
        summary = result.summary
        print(
            f"{gateway:<18} {summary.completion_rate:>10.1%} "
            f"{summary.on_time_rate:>8.1%} "
            f"{summary.mean_response_time:>12.2f} "
            f"{result.offload_rate:>10.1%} {result.wan_time_total:>8.1f}"
        )


def latency_sweep() -> None:
    print("\nWAN latency sweep (EET-aware gateway): paying for distance\n")
    header = (
        f"{'WAN latency s':>13} {'offloaded':>10} {'completion':>11} "
        f"{'mean resp s':>12}"
    )
    print(header)
    print("-" * len(header))
    for latency in (0.0, 0.1, 0.5, 2.0, 8.0):
        result = build_scenario("edge_cloud", wan_latency=latency).run()
        print(
            f"{latency:>13.1f} {result.offload_rate:>10.1%} "
            f"{result.summary.completion_rate:>11.1%} "
            f"{result.summary.mean_response_time:>12.2f}"
        )
    print(
        "\nAs the WAN slows, the gateway's completion estimates absorb the\n"
        "transfer cost and it keeps ever more work on the edge CPUs — the\n"
        "offload share falls while completions hold, because the routing\n"
        "decision already prices the network in."
    )


def per_cluster_view() -> None:
    print("\nPer-cluster + global summary of the stock preset:\n")
    print(build_scenario("edge_cloud").run().to_text())


def main() -> None:
    compare_gateways()
    latency_sweep()
    per_cluster_view()


if __name__ == "__main__":
    main()
