#!/usr/bin/env python3
"""Quickstart: build a heterogeneous system, run two policies, read reports.

The 60-second tour of the library:

1. synthesise a heterogeneous EET matrix (the paper's CVB method),
2. describe a scenario (machines + workload generator + policy),
3. run it and print the Summary report,
4. swap the policy and compare completion rates — the paper's core lesson
   (MECT beats FCFS on heterogeneous systems) in a dozen lines.

Run:  python examples/quickstart.py
"""

from repro import Scenario, generate_eet_cvb
from repro.viz.barchart import BarChart


def main() -> None:
    # 3 applications × 4 machine classes, inconsistent heterogeneity.
    eet = generate_eet_cvb(
        n_task_types=3,
        n_machine_types=4,
        mean_task=20.0,
        v_task=0.4,
        v_machine=0.6,
        seed=7,
    )
    print("EET matrix (seconds):")
    print(eet.to_csv())

    scenario = Scenario(
        eet=eet,
        machine_counts={name: 1 for name in eet.machine_type_names},
        scheduler="MECT",
        generator={"duration": 500.0, "intensity": "high"},
        seed=42,
        name="quickstart",
    )

    result = scenario.run()
    print(result.reports.summary_report().to_text())
    print()

    # Compare every immediate policy on the identical workload.
    chart = BarChart(
        "completion % under a high-intensity workload", max_value=100.0,
        unit="%",
    )
    for policy in ("FCFS", "MECT", "MEET", "KPB", "RR"):
        outcome = scenario.with_scheduler(policy).run()
        chart.add(policy, 100.0 * outcome.summary.completion_rate)
    print(chart.to_text())
    print()
    print(
        "Note how MECT (load + EET aware) beats FCFS (load-only) and MEET\n"
        "(EET-only): the central lesson of the E2C class assignment."
    )


if __name__ == "__main__":
    main()
