#!/usr/bin/env python3
"""Failure injection: scheduling through machine crashes.

Machines alternate exponential up/down phases (MTBF/MTTR); a crash evicts
the running task and the local queue back into the batch queue (deadlines
keep ticking). This script sweeps availability and shows:

* completion rate vs availability for MECT (immediate) and MM (batch),
* per-machine availability and failure counts from the energy meters,
* the wait-time distribution stretching as failures bite (histogram),
* retry counts — how often tasks had to be re-placed.

Run:  python examples/fault_tolerance.py
"""

from repro import FailureModel, Scenario, generate_eet_cvb
from repro.viz.histogram import Histogram


def build_scenario(policy: str, mtbf: float | None, capacity) -> Scenario:
    eet = generate_eet_cvb(
        3, 4, mean_task=20.0, v_task=0.4, v_machine=0.5, seed=2023
    )
    return Scenario(
        eet=eet,
        machine_counts={n: 1 for n in eet.machine_type_names},
        scheduler=policy,
        queue_capacity=capacity,
        generator={"duration": 500.0, "intensity": 1.2},
        failure_model=(
            None if mtbf is None else FailureModel(mtbf=mtbf, mttr=15.0)
        ),
        seed=11,
        name=f"fault-{policy}-{mtbf}",
    )


def main() -> None:
    print("completion % vs machine reliability (mttr = 15 s):")
    print(f"{'MTBF':>12} {'availability':>13} {'MECT':>8} {'MM':>8}")
    for mtbf in (None, 300.0, 100.0, 50.0):
        availability = 1.0 if mtbf is None else mtbf / (mtbf + 15.0)
        rates = {}
        for policy, capacity in (("MECT", float("inf")), ("MM", 3)):
            result = build_scenario(policy, mtbf, capacity).run()
            rates[policy] = result.summary.completion_rate
        label = "∞" if mtbf is None else f"{mtbf:.0f} s"
        print(
            f"{label:>12} {100 * availability:12.1f}% "
            f"{100 * rates['MECT']:7.1f}% {100 * rates['MM']:7.1f}%"
        )
    print()

    # Detail run: who failed, how often, what did it do to waits?
    scenario = build_scenario("MM", 100.0, 3)
    simulator = scenario.build_simulator()
    simulator.run()
    result = simulator.result()

    print("per-machine availability under mtbf=100:")
    for machine in simulator.cluster:
        meter = machine.energy
        print(
            f"  {machine.name:<8} failures={machine.failure_count:<3} "
            f"availability={100 * meter.availability():5.1f}%  "
            f"utilisation={100 * meter.utilization():5.1f}%"
        )
    print()

    retries = [t.retries for t in simulator.workload if t.retries > 0]
    print(
        f"tasks requeued by crashes: {len(retries)} "
        f"(max retries for one task: {max(retries, default=0)})"
    )
    print()

    print(
        Histogram.from_task_records(
            result.task_records,
            "wait_time",
            title="wait-time distribution with failures (MM, mtbf=100)",
            bins=8,
        ).to_text()
    )


if __name__ == "__main__":
    main()
