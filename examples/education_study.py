#!/usr/bin/env python3
"""The education study of §5: quizzes, cohort learning effect, survey.

Reproduces the paper's evaluation artifacts in one script:

* a scheduling quiz sheet with its auto-computed answer key (3 tasks × 4
  machines × {MEET, MECT, MM, MSD} = 12 points, as in the paper),
* the pre/post study (paper: 7.6 → 8.94 of 12, ≈ +17.6%) over the synthetic
  learning-effect cohort,
* the Fig-8a and Fig-8b survey charts from the calibrated 23-student cohort,
  with the demographic table.

Run:  python examples/education_study.py
"""

import numpy as np

from repro.education.cohort import run_quiz_study
from repro.education.quiz import generate_quiz
from repro.education.survey import SurveyStudy, generate_cohort


def main() -> None:
    # -- the quiz itself -----------------------------------------------------
    quiz = generate_quiz(seed=2023)
    print(quiz.to_text())
    print()
    print("Answer key (computed by the real scheduler implementations):")
    for method, mapping in quiz.answer_key().items():
        cells = ", ".join(
            f"task {tid} → {quiz.eet.machine_type_names[mid]}"
            for tid, mid in sorted(mapping.items())
        )
        print(f"  {method:<5} {cells}")
    print()

    # -- pre/post study -------------------------------------------------------
    studies = [run_quiz_study(seed=s) for s in range(10)]
    pre = float(np.mean([s.pre_mean for s in studies]))
    post = float(np.mean([s.post_mean for s in studies]))
    print("pre/post quiz study (10 cohort replications of 23 students):")
    print(f"  pre-quiz mean : {pre:5.2f} / 12   (paper: 7.60)")
    print(f"  post-quiz mean: {post:5.2f} / 12   (paper: 8.94)")
    print(
        f"  improvement   : {100 * (post - pre) / pre:5.1f}%      "
        "(paper: 17.6%)"
    )
    print()

    # -- survey ---------------------------------------------------------------
    study = SurveyStudy(generate_cohort(seed=42))
    demo = study.demographics()
    print("survey cohort demographics (paper targets in parentheses):")
    print(f"  students          : {demo['n_students']}      (23)")
    print(f"  male / female     : {100 * demo['male_fraction']:.1f}% / "
          f"{100 * demo['female_fraction']:.1f}%  (73.9% / 26.1%)")
    print(f"  undergrad / grad  : {100 * demo['undergraduate_fraction']:.1f}% / "
          f"{100 * demo['graduate_fraction']:.1f}%  (60.9% / 39.1%)")
    print(f"  prog. experience  : mean {demo['prog_experience_mean']:.2f}, "
          f"median {demo['prog_experience_median']:.0f}  (3.8 / 3)")
    print(f"  passed OS course  : {100 * demo['passed_os_fraction']:.1f}%   (43.5%)")
    print()
    print(study.figure_8a().to_text())
    print()
    print(study.figure_8b().to_text())


if __name__ == "__main__":
    main()
