"""E-F5 — Figure 5: completion % of immediate policies on a homogeneous
system at low/medium/high intensity (FCFS, MECT, MEET).

Paper shape asserted: completion declines monotonically with intensity for
every policy, and FCFS ≈ MECT on a homogeneous system (EET awareness buys
nothing when all machines are identical) while load-blind MEET collapses.
"""


from repro.education.assignment import build_homogeneous_eet, run_completion_sweep


def test_bench_figure5(benchmark, results_dir, assignment_config):
    eet = build_homogeneous_eet(assignment_config)

    figure = benchmark.pedantic(
        run_completion_sweep,
        args=(eet, ("FCFS", "MECT", "MEET")),
        kwargs=dict(
            config=assignment_config,
            batch=False,
            title="Fig 5 — completion % of immediate policies, homogeneous system",
        ),
        rounds=1,
        iterations=1,
    )

    out = figure.to_text() + "\n\nraw cell means:\n"
    for intensity in ("low", "medium", "high"):
        for policy in ("FCFS", "MECT", "MEET"):
            out += f"  {intensity:<7} {policy:<5} {100 * figure.mean(intensity, policy):6.2f}%\n"
    (results_dir / "figure5_homogeneous_immediate.txt").write_text(
        out, encoding="utf-8"
    )
    figure.chart.to_csv(results_dir / "figure5_homogeneous_immediate.csv")

    # Shape 1: monotone decline with intensity, every policy.
    for policy in ("FCFS", "MECT", "MEET"):
        low = figure.mean("low", policy)
        high = figure.mean("high", policy)
        assert low >= figure.mean("medium", policy) - 0.02
        assert figure.mean("medium", policy) >= high - 0.02
        assert low > high

    # Shape 2: FCFS ≈ MECT on homogeneous hardware (within 5 points).
    for intensity in ("low", "medium", "high"):
        assert abs(
            figure.mean(intensity, "FCFS") - figure.mean(intensity, "MECT")
        ) < 0.05

    # Shape 3: the load-blind MEET (fixed argmin tie-break) funnels all work
    # to one machine and collapses relative to the load-aware policies.
    assert figure.mean("medium", "MEET") < figure.mean("medium", "MECT")
