"""E-P1 — engine performance: events/second and scaling.

Not a paper figure, but the performance envelope that makes the educational
tool interactive: the DES core must stay far above real-time for classroom
system sizes. Benchmarks the end-to-end engine on a medium scenario and on
a larger machine population, reporting events/sec.
"""

import pytest

from repro.core.config import Scenario
from repro.machines.eet_generation import generate_eet_cvb


def build_scenario(n_machines_per_type: int, duration: float) -> Scenario:
    eet = generate_eet_cvb(
        4, 4, mean_task=12.0, v_task=0.4, v_machine=0.5, seed=3
    )
    return Scenario(
        eet=eet,
        machine_counts={n: n_machines_per_type for n in eet.machine_type_names},
        scheduler="MECT",
        generator={"duration": duration, "intensity": "medium"},
        seed=9,
        name="throughput",
    )


@pytest.mark.parametrize(
    "machines_per_type,duration",
    [(1, 400.0), (4, 400.0)],
    ids=["4-machines", "16-machines"],
)
def test_bench_engine_throughput(
    benchmark, results_dir, machines_per_type, duration
):
    scenario = build_scenario(machines_per_type, duration)

    result = benchmark(scenario.run)

    events_per_sec = result.events_processed / benchmark.stats["mean"]
    out = (
        f"engine throughput ({machines_per_type * 4} machines): "
        f"{result.events_processed} events, "
        f"{result.summary.total_tasks} tasks, "
        f"{events_per_sec:,.0f} events/s "
        f"(mean wall {benchmark.stats['mean'] * 1e3:.1f} ms)\n"
    )
    path = results_dir / "engine_throughput.txt"
    with path.open("a", encoding="utf-8") as fh:
        fh.write(out)

    assert result.summary.total_tasks > 0
    # Interactive envelope: the engine must process far faster than the
    # simulated clock advances (>> 1000 events/s on any modern machine).
    assert events_per_sec > 1000


def test_bench_batch_policy_throughput(benchmark, results_dir):
    """Batch mapping (Min-Min matrix loop) under a saturated queue."""
    eet = generate_eet_cvb(
        4, 4, mean_task=12.0, v_task=0.4, v_machine=0.5, seed=3
    )
    scenario = Scenario(
        eet=eet,
        machine_counts={n: 1 for n in eet.machine_type_names},
        scheduler="MM",
        queue_capacity=3,
        generator={"duration": 400.0, "intensity": "high"},
        seed=9,
        name="batch-throughput",
    )
    result = benchmark(scenario.run)
    events_per_sec = result.events_processed / benchmark.stats["mean"]
    with (results_dir / "engine_throughput.txt").open(
        "a", encoding="utf-8"
    ) as fh:
        fh.write(
            f"batch MM throughput: {events_per_sec:,.0f} events/s "
            f"({result.summary.total_tasks} tasks)\n"
        )
    assert events_per_sec > 500
