"""E-P1 — engine performance: events/second and scaling.

Not a paper figure, but the performance envelope that makes the educational
tool interactive: the DES core must stay far above real-time for classroom
system sizes. Benchmarks the end-to-end engine on a medium scenario, on a
larger machine population, under the batch mapping loop, and on a scale-tier
preset (hundreds of machines).

Each benchmark attaches ``events`` / ``events_per_sec`` to pytest-benchmark's
``extra_info``; ``benchmarks/check_regression.py`` compares those numbers
against the committed baseline (``results/engine_throughput_baseline.json``)
and fails CI on >30% regression.
"""

import pytest

from bench_recording import record_result_json, record_result_line
from repro.core.config import Scenario
from repro.machines.eet_generation import generate_eet_cvb
from repro.scenarios import build_scenario


def _record(results_dir, key, line, **payload):
    """Record one benchmark under *key* in both committed artifacts: the
    human-readable ``engine_throughput.txt`` and its machine-readable twin
    ``engine_throughput.json`` (consumed by dashboards and ad-hoc tooling
    without scraping the prose lines)."""
    record_result_line(results_dir / "engine_throughput.txt", key, line)
    record_result_json(results_dir / "engine_throughput.json", key, payload)


def build_scenario_throughput(n_machines_per_type: int, duration: float) -> Scenario:
    eet = generate_eet_cvb(
        4, 4, mean_task=12.0, v_task=0.4, v_machine=0.5, seed=3
    )
    return Scenario(
        eet=eet,
        machine_counts={n: n_machines_per_type for n in eet.machine_type_names},
        scheduler="MECT",
        generator={"duration": duration, "intensity": "medium"},
        seed=9,
        name="throughput",
    )


@pytest.mark.parametrize(
    "machines_per_type,duration",
    [(1, 400.0), (4, 400.0)],
    ids=["4-machines", "16-machines"],
)
def test_bench_engine_throughput(
    benchmark, results_dir, machines_per_type, duration
):
    scenario = build_scenario_throughput(machines_per_type, duration)

    result = benchmark(scenario.run)

    events_per_sec = result.events_processed / benchmark.stats["mean"]
    benchmark.extra_info["events"] = result.events_processed
    benchmark.extra_info["events_per_sec"] = events_per_sec
    _record(
        results_dir,
        f"engine throughput ({machines_per_type * 4} machines)",
        f"{result.events_processed} events, "
        f"{result.summary.total_tasks} tasks, "
        f"{events_per_sec:,.0f} events/s "
        f"(mean wall {benchmark.stats['mean'] * 1e3:.1f} ms)",
        events=result.events_processed,
        tasks=result.summary.total_tasks,
        events_per_sec=round(events_per_sec, 1),
        mean_wall_s=benchmark.stats["mean"],
    )

    assert result.summary.total_tasks > 0
    # Interactive envelope: the engine must process far faster than the
    # simulated clock advances (>> 1000 events/s on any modern machine).
    assert events_per_sec > 1000


def test_bench_batch_policy_throughput(benchmark, results_dir):
    """Batch mapping (Min-Min matrix loop) under a saturated queue."""
    eet = generate_eet_cvb(
        4, 4, mean_task=12.0, v_task=0.4, v_machine=0.5, seed=3
    )
    scenario = Scenario(
        eet=eet,
        machine_counts={n: 1 for n in eet.machine_type_names},
        scheduler="MM",
        queue_capacity=3,
        generator={"duration": 400.0, "intensity": "high"},
        seed=9,
        name="batch-throughput",
    )
    result = benchmark(scenario.run)
    events_per_sec = result.events_processed / benchmark.stats["mean"]
    benchmark.extra_info["events"] = result.events_processed
    benchmark.extra_info["events_per_sec"] = events_per_sec
    _record(
        results_dir,
        "batch MM throughput",
        f"{events_per_sec:,.0f} events/s ({result.summary.total_tasks} tasks)",
        events=result.events_processed,
        tasks=result.summary.total_tasks,
        events_per_sec=round(events_per_sec, 1),
        mean_wall_s=benchmark.stats["mean"],
    )
    assert events_per_sec > 500


def test_bench_federated_throughput(benchmark, results_dir):
    """Federated tier: two sites under heavy-tailed arrivals, every task
    routed through the gateway layer (and often across the WAN) before its
    destination cluster's vectorised local policy maps it. Guards the
    federation overhead: events/s must stay within the same order as the
    single-cluster engine (the committed baseline enforces the floor)."""
    scenario = build_scenario("fed_heavytail")
    result = benchmark.pedantic(
        scenario.run, rounds=3, iterations=1, warmup_rounds=1
    )
    events_per_sec = result.events_processed / benchmark.stats["mean"]
    benchmark.extra_info["events"] = result.events_processed
    benchmark.extra_info["events_per_sec"] = events_per_sec
    _record(
        results_dir,
        "federated tier (2 sites, heavy tail)",
        f"{result.events_processed} events, "
        f"{result.summary.total_tasks} tasks, "
        f"{result.offload_rate:.0%} offloaded, "
        f"{events_per_sec:,.0f} events/s",
        events=result.events_processed,
        tasks=result.summary.total_tasks,
        offload_rate=round(result.offload_rate, 4),
        events_per_sec=round(events_per_sec, 1),
        mean_wall_s=benchmark.stats["mean"],
    )
    assert result.summary.total_tasks > 2000
    assert 0.0 < result.offload_rate < 1.0
    assert events_per_sec > 1000


def test_bench_contended_wan_throughput(benchmark, results_dir):
    """Contended-WAN tier: the fed_congested preset, whose every offload
    runs the link state machines (FIFO + processor sharing) and per-link
    energy meters. Guards the WAN-as-queueing-resource overhead: turning
    the WAN into a simulated resource must not knock the federated engine
    out of its throughput envelope."""
    scenario = build_scenario("fed_congested")
    result = benchmark.pedantic(
        scenario.run, rounds=3, iterations=1, warmup_rounds=1
    )
    events_per_sec = result.events_processed / benchmark.stats["mean"]
    benchmark.extra_info["events"] = result.events_processed
    benchmark.extra_info["events_per_sec"] = events_per_sec
    _record(
        results_dir,
        "contended WAN tier (3 sites, fifo+ps links)",
        f"{result.events_processed} events, "
        f"{result.summary.total_tasks} tasks, "
        f"{result.offload_rate:.0%} offloaded, "
        f"{events_per_sec:,.0f} events/s",
        events=result.events_processed,
        tasks=result.summary.total_tasks,
        offload_rate=round(result.offload_rate, 4),
        events_per_sec=round(events_per_sec, 1),
        mean_wall_s=benchmark.stats["mean"],
    )
    assert result.summary.total_tasks > 500
    assert 0.0 < result.offload_rate < 1.0
    assert sum(u.delivered for u in result.wan_links.values()) > 0
    assert events_per_sec > 1000


def test_bench_migration_throughput(benchmark, results_dir):
    """Migration tier: the fed_rebalance preset, where a periodic rebalance
    pass evicts queued tasks and ships them over a contended FIFO uplink —
    every tick snapshots batch queues, runs the eviction policy, and every
    migration exercises the link state machine plus the in-flight
    cancellation path. Guards the rebalancer overhead: mid-queue migration
    must not knock the federated engine out of its throughput envelope."""
    scenario = build_scenario("fed_rebalance")
    result = benchmark.pedantic(
        scenario.run, rounds=3, iterations=1, warmup_rounds=1
    )
    events_per_sec = result.events_processed / benchmark.stats["mean"]
    benchmark.extra_info["events"] = result.events_processed
    benchmark.extra_info["events_per_sec"] = events_per_sec
    stats = result.migration_stats
    _record(
        results_dir,
        "migration tier (2 sites, mid-queue rebalancing)",
        f"{result.events_processed} events, "
        f"{result.summary.total_tasks} tasks, "
        f"{stats.attempted} migrations, "
        f"{events_per_sec:,.0f} events/s",
        events=result.events_processed,
        tasks=result.summary.total_tasks,
        migrations=stats.attempted,
        events_per_sec=round(events_per_sec, 1),
        mean_wall_s=benchmark.stats["mean"],
    )
    assert result.summary.total_tasks > 500
    assert stats.attempted > 0
    assert stats.attempted == stats.delivered + stats.cancelled_in_flight
    assert events_per_sec > 1000


def test_bench_adaptive_throughput(benchmark, results_dir):
    """Adaptive tier: the fed_adaptive preset, where every arrival runs
    the bandit's arm selection, every terminal task funnels back through
    the reward loop, and the rebalancer evaluates watermark hysteresis on
    each tick. Guards the learning-gateway overhead: the feedback path
    (one callback per terminal task) and the per-decision bookkeeping must
    not knock the federated engine out of its throughput envelope."""
    scenario = build_scenario("fed_adaptive")
    result = benchmark.pedantic(
        scenario.run, rounds=3, iterations=1, warmup_rounds=1
    )
    events_per_sec = result.events_processed / benchmark.stats["mean"]
    benchmark.extra_info["events"] = result.events_processed
    benchmark.extra_info["events_per_sec"] = events_per_sec
    _record(
        results_dir,
        "adaptive tier (bandit gateway + hysteresis)",
        f"{result.events_processed} events, "
        f"{result.summary.total_tasks} tasks, "
        f"{result.offload_rate:.0%} offloaded, "
        f"{events_per_sec:,.0f} events/s",
        events=result.events_processed,
        tasks=result.summary.total_tasks,
        offload_rate=round(result.offload_rate, 4),
        events_per_sec=round(events_per_sec, 1),
        mean_wall_s=benchmark.stats["mean"],
    )
    assert result.summary.total_tasks > 500
    assert 0.0 < result.offload_rate < 1.0
    assert events_per_sec > 1000


def test_bench_trace_replay_throughput(benchmark, results_dir):
    """Trace tier: the trace_replay preset, whose workload comes from the
    full TraceSpec ingestion pipeline (CSV parse, rescale, quantile
    binning, deadline synthesis) before the engine runs. Each round builds
    the scenario fresh so ingestion cost is measured, not memoised away —
    guards the import layer staying cheap relative to the simulation."""
    def run_from_cold():
        return build_scenario("trace_replay").run()

    result = benchmark.pedantic(
        run_from_cold, rounds=3, iterations=1, warmup_rounds=1
    )
    events_per_sec = result.events_processed / benchmark.stats["mean"]
    benchmark.extra_info["events"] = result.events_processed
    benchmark.extra_info["events_per_sec"] = events_per_sec
    _record(
        results_dir,
        "trace tier (ingestion + replay)",
        f"{result.events_processed} events, "
        f"{result.summary.total_tasks} tasks, "
        f"{events_per_sec:,.0f} events/s",
        events=result.events_processed,
        tasks=result.summary.total_tasks,
        events_per_sec=round(events_per_sec, 1),
        mean_wall_s=benchmark.stats["mean"],
    )
    assert result.summary.total_tasks == 420
    assert events_per_sec > 500


def test_bench_cross_traffic_throughput(benchmark, results_dir):
    """Cross-traffic tier: the diurnal_wan preset, where every WAN
    transfer is re-integrated at each utilisation epoch (diurnal ticks on
    the FIFO uplink, MMPP switches on the PS uplink). Guards the residual-
    capacity machinery: background traffic must not knock the contended-WAN
    engine out of its throughput envelope."""
    scenario = build_scenario("diurnal_wan")
    result = benchmark.pedantic(
        scenario.run, rounds=3, iterations=1, warmup_rounds=1
    )
    events_per_sec = result.events_processed / benchmark.stats["mean"]
    benchmark.extra_info["events"] = result.events_processed
    benchmark.extra_info["events_per_sec"] = events_per_sec
    _record(
        results_dir,
        "cross-traffic tier (diurnal + mmpp uplinks)",
        f"{result.events_processed} events, "
        f"{result.summary.total_tasks} tasks, "
        f"{result.offload_rate:.0%} offloaded, "
        f"{events_per_sec:,.0f} events/s",
        events=result.events_processed,
        tasks=result.summary.total_tasks,
        offload_rate=round(result.offload_rate, 4),
        events_per_sec=round(events_per_sec, 1),
        mean_wall_s=benchmark.stats["mean"],
    )
    assert result.summary.total_tasks > 500
    assert 0.0 < result.offload_rate < 1.0
    assert events_per_sec > 1000


def test_bench_scale_tier_throughput(benchmark, results_dir):
    """Scale tier: 96 machines, ~11k tasks — the registered scale_campus
    preset, run once per round (the workload is large enough that a single
    run is a stable measurement)."""
    scenario = build_scenario("scale_campus")
    result = benchmark.pedantic(scenario.run, rounds=3, iterations=1, warmup_rounds=1)
    events_per_sec = result.events_processed / benchmark.stats["mean"]
    benchmark.extra_info["events"] = result.events_processed
    benchmark.extra_info["events_per_sec"] = events_per_sec
    _record(
        results_dir,
        "scale tier (96 machines)",
        f"{result.events_processed} events, "
        f"{result.summary.total_tasks} tasks, "
        f"{events_per_sec:,.0f} events/s",
        events=result.events_processed,
        tasks=result.summary.total_tasks,
        events_per_sec=round(events_per_sec, 1),
        mean_wall_s=benchmark.stats["mean"],
    )
    assert result.summary.total_tasks > 5000
    assert events_per_sec > 1000


def test_bench_scale_federation_throughput(benchmark, results_dir):
    """Federation-scale tier: the scale_federation preset — 24 sites, 1152
    machines, ~28k tasks, every one routed through the random-split gateway
    and (23 times out of 24) shipped across the uniform WAN. The largest
    committed workload; guards the serial federated engine at the scale the
    parallel path is built for."""
    scenario = build_scenario("scale_federation")
    result = benchmark.pedantic(
        scenario.run, rounds=3, iterations=1, warmup_rounds=1
    )
    events_per_sec = result.events_processed / benchmark.stats["mean"]
    benchmark.extra_info["events"] = result.events_processed
    benchmark.extra_info["events_per_sec"] = events_per_sec
    _record(
        results_dir,
        "federation scale tier (24 sites, serial)",
        f"{result.events_processed} events, "
        f"{result.summary.total_tasks} tasks, "
        f"{result.offload_rate:.0%} offloaded, "
        f"{events_per_sec:,.0f} events/s",
        events=result.events_processed,
        tasks=result.summary.total_tasks,
        offload_rate=round(result.offload_rate, 4),
        events_per_sec=round(events_per_sec, 1),
        mean_wall_s=benchmark.stats["mean"],
    )
    assert result.summary.total_tasks > 20000
    assert 0.0 < result.offload_rate < 1.0
    assert events_per_sec > 1000


def test_bench_parallel_federation_throughput(benchmark, results_dir):
    """Window-parallel tier: scale_federation again, but executed by
    ``ParallelFederatedSimulator`` with 4 worker processes advancing in
    350 ms conservative windows. The result is bit-identical to the serial
    tier above (the integration suite pins that); this benchmark records
    what the process fan-out costs or earns on the current host. On a
    multi-core box the workers run concurrently; on a single core they
    time-slice, so the committed baseline is the honest single-core figure
    and any speedup shows up as headroom, not a regression."""
    scenario = build_scenario("scale_federation")

    def run_parallel():
        return scenario.build_simulator(parallel_workers=4).run()

    result = benchmark.pedantic(
        run_parallel, rounds=3, iterations=1, warmup_rounds=1
    )
    events_per_sec = result.events_processed / benchmark.stats["mean"]
    benchmark.extra_info["events"] = result.events_processed
    benchmark.extra_info["events_per_sec"] = events_per_sec
    _record(
        results_dir,
        "federation scale tier (24 sites, 4 workers)",
        f"{result.events_processed} events, "
        f"{result.summary.total_tasks} tasks, "
        f"{result.offload_rate:.0%} offloaded, "
        f"{events_per_sec:,.0f} events/s",
        events=result.events_processed,
        tasks=result.summary.total_tasks,
        offload_rate=round(result.offload_rate, 4),
        events_per_sec=round(events_per_sec, 1),
        mean_wall_s=benchmark.stats["mean"],
    )
    assert result.summary.total_tasks > 20000
    assert 0.0 < result.offload_rate < 1.0
    assert events_per_sec > 1000


def test_bench_hierarchy_throughput(benchmark, results_dir):
    """Hierarchy tier: the hier_3region preset — 18 leaf clusters under a
    3-level tree, every offload hopping site and region uplinks store-and-
    forward (each hop its own transfer on a shared FIFO channel) and every
    arrival running the tree-pressure gateway's rolled-up subtree walk.
    Guards the relay machinery: path routing must not knock the federated
    engine out of its throughput envelope."""
    scenario = build_scenario("hier_3region")
    result = benchmark.pedantic(
        scenario.run, rounds=3, iterations=1, warmup_rounds=1
    )
    events_per_sec = result.events_processed / benchmark.stats["mean"]
    benchmark.extra_info["events"] = result.events_processed
    benchmark.extra_info["events_per_sec"] = events_per_sec
    _record(
        results_dir,
        "hierarchy tier (3 regions x 3 sites x 2 clusters)",
        f"{result.events_processed} events, "
        f"{result.summary.total_tasks} tasks, "
        f"{result.offload_rate:.0%} offloaded, "
        f"{events_per_sec:,.0f} events/s",
        events=result.events_processed,
        tasks=result.summary.total_tasks,
        offload_rate=round(result.offload_rate, 4),
        events_per_sec=round(events_per_sec, 1),
        mean_wall_s=benchmark.stats["mean"],
    )
    assert result.summary.total_tasks > 500
    assert 0.0 < result.offload_rate < 1.0
    assert result.tree.root.stats["wan_attempted"] == result.offloaded
    assert events_per_sec > 1000


def test_bench_deep_hierarchy_throughput(benchmark, results_dir):
    """Deep-hierarchy tier: the hier_deep preset — leaves at mixed depths
    (1 to 4), cross-tree offloads crossing up to three shared uplinks, the
    deepest of them deliberately skinny. Guards the worst-case relay chain:
    long store-and-forward paths and deep rollups must stay in the
    envelope."""
    scenario = build_scenario("hier_deep")
    result = benchmark.pedantic(
        scenario.run, rounds=3, iterations=1, warmup_rounds=1
    )
    events_per_sec = result.events_processed / benchmark.stats["mean"]
    benchmark.extra_info["events"] = result.events_processed
    benchmark.extra_info["events_per_sec"] = events_per_sec
    _record(
        results_dir,
        "deep hierarchy tier (4 levels, mixed-depth leaves)",
        f"{result.events_processed} events, "
        f"{result.summary.total_tasks} tasks, "
        f"{result.offload_rate:.0%} offloaded, "
        f"{events_per_sec:,.0f} events/s",
        events=result.events_processed,
        tasks=result.summary.total_tasks,
        offload_rate=round(result.offload_rate, 4),
        events_per_sec=round(events_per_sec, 1),
        mean_wall_s=benchmark.stats["mean"],
    )
    assert result.summary.total_tasks > 300
    assert 0.0 < result.offload_rate < 1.0
    assert result.tree.root.stats["wan_attempted"] == result.offloaded
    assert events_per_sec > 1000
