"""E-X2 — ablation: heterogeneity degree and consistency class.

Sweeps the CVB machine-heterogeneity coefficient (v_machine ∈ {0, 0.25, 0.5,
0.75}) and the consistency class, measuring the FCFS→MECT completion gap.
The paper's pedagogy predicts the gap grows with heterogeneity: on a
homogeneous system EET awareness is worthless; the more machines differ, the
more an EET-aware mapper wins.
"""


from repro.core.config import Scenario
from repro.machines.eet_generation import generate_eet_cvb
from repro.metrics.stats import summarize
from repro.viz.barchart import GroupedBarChart

V_MACHINES = (0.0, 0.25, 0.5, 0.75)
REPLICATIONS = 5


def run_sweep():
    rows = {}
    for v_machine in V_MACHINES:
        eet = generate_eet_cvb(
            3, 4, mean_task=20.0, v_task=0.4, v_machine=v_machine, seed=2023
        )
        per_policy = {}
        for policy in ("FCFS", "MECT"):
            rates = []
            for rep in range(REPLICATIONS):
                scenario = Scenario(
                    eet=eet,
                    machine_counts={n: 1 for n in eet.machine_type_names},
                    scheduler=policy,
                    generator={"duration": 500.0, "intensity": 1.2},
                    seed=7,
                    name=f"het-{v_machine}-{policy}",
                )
                rates.append(
                    scenario.run(replication=rep).summary.completion_rate
                )
            per_policy[policy] = summarize(rates).mean
        rows[v_machine] = per_policy
    return rows


def run_consistency_compare():
    out = {}
    for consistency in ("inconsistent", "consistent", "partially_consistent"):
        eet = generate_eet_cvb(
            3, 4, mean_task=20.0, v_task=0.4, v_machine=0.6,
            consistency=consistency, seed=2023,
        )
        scenario = Scenario(
            eet=eet,
            machine_counts={n: 1 for n in eet.machine_type_names},
            scheduler="MECT",
            generator={"duration": 500.0, "intensity": 1.2},
            seed=7,
            name=f"consistency-{consistency}",
        )
        rates = [
            scenario.run(replication=rep).summary.completion_rate
            for rep in range(REPLICATIONS)
        ]
        out[consistency] = summarize(rates).mean
    return out


def test_bench_ablation_heterogeneity(benchmark, results_dir):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    consistency = run_consistency_compare()

    chart = GroupedBarChart(
        "ablation — completion % vs machine heterogeneity (CVB v_machine)",
        max_value=100.0,
        unit="%",
    )
    for v_machine, per_policy in rows.items():
        for policy, rate in per_policy.items():
            chart.set(f"v_machine={v_machine}", policy, 100.0 * rate)
    text = chart.to_text() + "\n\nMECT by consistency class (v_machine=0.6):\n"
    for name, rate in consistency.items():
        text += f"  {name:<22} {100 * rate:6.2f}%\n"
    (results_dir / "ablation_heterogeneity.txt").write_text(
        text, encoding="utf-8"
    )
    chart.to_csv(results_dir / "ablation_heterogeneity.csv")

    # Shape 1: on the homogeneous system the FCFS→MECT gap is negligible.
    assert abs(rows[0.0]["MECT"] - rows[0.0]["FCFS"]) < 0.03
    # Shape 2: at strong heterogeneity MECT's edge is material.
    assert rows[0.75]["MECT"] > rows[0.75]["FCFS"] + 0.02
    # Shape 3: the gap at 0.75 exceeds the gap at 0.
    gap_hi = rows[0.75]["MECT"] - rows[0.75]["FCFS"]
    gap_lo = rows[0.0]["MECT"] - rows[0.0]["FCFS"]
    assert gap_hi > gap_lo
    # Consistency classes all produce valid rates.
    assert all(0.0 < r <= 1.0 for r in consistency.values())
