"""Keyed result-file recording shared by the benchmark modules."""

from __future__ import annotations

from pathlib import Path


def record_result_line(path: Path, key: str, line: str) -> None:
    """Write ``key: line`` into *path*, replacing any previous entry for *key*.

    Result files are committed artifacts; blind appending made every local
    benchmark run accumulate duplicate lines. Keying each line by its
    benchmark id keeps exactly one (the latest) measurement per benchmark
    while preserving first-seen ordering for unrelated keys.
    """
    prefix = f"{key}: "
    lines = []
    if path.exists():
        lines = path.read_text(encoding="utf-8").splitlines()
    replaced = False
    for i, existing in enumerate(lines):
        if existing.startswith(prefix):
            lines[i] = prefix + line
            replaced = True
            break
    if not replaced:
        lines.append(prefix + line)
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
