"""Keyed result-file recording shared by the benchmark modules."""

from __future__ import annotations

import json
from pathlib import Path


def record_result_line(path: Path, key: str, line: str) -> None:
    """Write ``key: line`` into *path*, replacing any previous entry for *key*.

    Result files are committed artifacts; blind appending made every local
    benchmark run accumulate duplicate lines. Keying each line by its
    benchmark id keeps exactly one (the latest) measurement per benchmark
    while preserving first-seen ordering for unrelated keys.
    """
    prefix = f"{key}: "
    lines = []
    if path.exists():
        lines = path.read_text(encoding="utf-8").splitlines()
    replaced = False
    for i, existing in enumerate(lines):
        if existing.startswith(prefix):
            lines[i] = prefix + line
            replaced = True
            break
    if not replaced:
        lines.append(prefix + line)
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def record_result_json(path: Path, key: str, payload: dict) -> None:
    """Merge ``{key: payload}`` into the JSON result file at *path*.

    The machine-readable twin of :func:`record_result_line`: one top-level
    object keyed by benchmark id, each value a flat dict of measurements
    (events, events/s, wall time, ...). Same replace-don't-append semantics,
    so the committed artifact stays one entry per benchmark. Keys are sorted
    on write to keep diffs stable across partial re-runs.
    """
    data: dict = {}
    if path.exists():
        data = json.loads(path.read_text(encoding="utf-8"))
    data[key] = payload
    path.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
