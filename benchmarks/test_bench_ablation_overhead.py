"""E-X5 — ablation: scheduling overhead, immediate vs batch.

§3: "Typically, immediate mode scheduling methods impose a lower overhead".
This ablation charges every scheduling pass per examined (pending × machine)
cell and sweeps the cost: immediate MECT examines one task per pass while
batch MM re-examines its whole backlog, so rising decision costs erode the
batch mapper's quality advantage — the trade-off behind the paper's
statement, made quantitative.
"""


from repro.core.config import Scenario
from repro.education.assignment import AssignmentConfig, build_heterogeneous_eet
from repro.metrics.stats import summarize
from repro.viz.barchart import GroupedBarChart

PER_CELL_LEVELS = (0.0, 0.05, 0.2, 0.5)
REPLICATIONS = 5


def run_sweep():
    config = AssignmentConfig(
        duration=500.0, replications=REPLICATIONS, seed=2023
    )
    eet = build_heterogeneous_eet(config)
    rows: dict[float, dict[str, float]] = {}
    for per_cell in PER_CELL_LEVELS:
        per_policy = {}
        for policy, capacity in (("MECT", float("inf")), ("MM", 3)):
            rates = []
            for rep in range(REPLICATIONS):
                scenario = Scenario(
                    eet=eet,
                    machine_counts={n: 1 for n in eet.machine_type_names},
                    scheduler=policy,
                    queue_capacity=capacity,
                    generator={"duration": config.duration, "intensity": 1.5},
                    scheduling_overhead=(
                        None if per_cell == 0.0 else {"per_cell": per_cell}
                    ),
                    seed=config.seed,
                    name=f"overhead-{per_cell}-{policy}",
                )
                rates.append(
                    scenario.run(replication=rep).summary.completion_rate
                )
            per_policy[policy] = summarize(rates).mean
        rows[per_cell] = per_policy
    return rows


def test_bench_ablation_overhead(benchmark, results_dir):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    chart = GroupedBarChart(
        "ablation — completion % vs per-cell scheduling overhead "
        "(intensity 1.5)",
        max_value=100.0,
        unit="%",
    )
    for per_cell, per_policy in rows.items():
        for policy, rate in per_policy.items():
            chart.set(f"per_cell={per_cell}", policy, 100.0 * rate)
    (results_dir / "ablation_overhead.txt").write_text(
        chart.to_text() + "\n", encoding="utf-8"
    )
    chart.to_csv(results_dir / "ablation_overhead.csv")

    # Shape 1: free decisions — the batch mapper is at least competitive.
    assert rows[0.0]["MM"] >= rows[0.0]["MECT"] - 0.05
    # Shape 2: rising decision cost hurts the batch mapper more (it pays per
    # backlog cell, immediate pays per single task): the MM-minus-MECT gap
    # shrinks (or flips) as per_cell grows.
    gap_free = rows[0.0]["MM"] - rows[0.0]["MECT"]
    gap_costly = rows[0.5]["MM"] - rows[0.5]["MECT"]
    assert gap_costly < gap_free
    # Shape 3: heavy overhead visibly damages the batch policy itself.
    assert rows[0.5]["MM"] < rows[0.0]["MM"]
