#!/usr/bin/env python
"""Benchmark-regression gate for the engine-throughput suite.

Reads a pytest-benchmark JSON report (``--benchmark-json``), extracts the
``events_per_sec`` figure each benchmark attached to ``extra_info``, and
compares it against the committed baseline. A benchmark fails the gate when
its throughput drops more than ``--tolerance`` (default 30%) below baseline.

Usage::

    python -m pytest benchmarks/test_bench_engine_throughput.py \
        --benchmark-json=bench-results.json
    python benchmarks/check_regression.py bench-results.json

Refresh the baseline after an intentional performance change::

    python benchmarks/check_regression.py bench-results.json --update

Benchmarks present in the report but absent from the baseline pass with a
notice (so adding a benchmark does not require touching two files in one
commit); baseline entries missing from the report fail, because a silently
skipped benchmark is indistinguishable from a regression.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = (
    Path(__file__).parent / "results" / "engine_throughput_baseline.json"
)


def load_report_throughputs(report_path: Path) -> dict[str, float]:
    """Map benchmark name -> events/s from a pytest-benchmark JSON report."""
    report = json.loads(report_path.read_text(encoding="utf-8"))
    out: dict[str, float] = {}
    for bench in report.get("benchmarks", []):
        extra = bench.get("extra_info", {})
        if "events_per_sec" in extra:
            out[bench["name"]] = float(extra["events_per_sec"])
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", type=Path, help="pytest-benchmark JSON report")
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE,
        help=f"committed baseline JSON (default {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.30,
        help="maximum allowed fractional drop below baseline (default 0.30)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the baseline from this report instead of checking",
    )
    args = parser.parse_args(argv)

    measured = load_report_throughputs(args.report)
    if not measured:
        print("error: report contains no benchmarks with events_per_sec")
        return 2

    if args.update:
        args.baseline.write_text(
            json.dumps(
                {
                    "description": (
                        "events/s baseline for the engine-throughput "
                        "benchmarks; refreshed via check_regression.py "
                        "--update"
                    ),
                    "events_per_sec": {
                        name: round(eps, 1) for name, eps in sorted(measured.items())
                    },
                },
                indent=2,
            )
            + "\n",
            encoding="utf-8",
        )
        print(f"baseline updated: {args.baseline}")
        return 0

    if not args.baseline.exists():
        print(f"error: baseline {args.baseline} not found (run with --update?)")
        return 2
    baseline = json.loads(args.baseline.read_text(encoding="utf-8"))
    expected: dict[str, float] = baseline.get("events_per_sec", {})

    failures = []
    print(f"{'benchmark':<50} {'baseline':>12} {'measured':>12} {'ratio':>7}")
    for name, base_eps in sorted(expected.items()):
        if name not in measured:
            failures.append(f"{name}: present in baseline but missing from report")
            print(f"{name:<50} {base_eps:>12,.0f} {'MISSING':>12}")
            continue
        eps = measured[name]
        ratio = eps / base_eps
        flag = ""
        if ratio < 1.0 - args.tolerance:
            failures.append(
                f"{name}: {eps:,.0f} events/s is "
                f"{(1.0 - ratio) * 100:.1f}% below baseline {base_eps:,.0f}"
            )
            flag = "  << REGRESSION"
        print(f"{name:<50} {base_eps:>12,.0f} {eps:>12,.0f} {ratio:>6.2f}x{flag}")
    for name in sorted(set(measured) - set(expected)):
        print(f"{name:<50} {'(new)':>12} {measured[name]:>12,.0f}")

    if failures:
        print(f"\nFAIL: {len(failures)} benchmark(s) regressed >"
              f"{args.tolerance * 100:.0f}%:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"\nOK: all benchmarks within {args.tolerance * 100:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
