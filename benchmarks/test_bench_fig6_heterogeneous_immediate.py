"""E-F6 — Figure 6: completion % of immediate policies on a heterogeneous
system at low/medium/high intensity (FCFS, MECT, MEET).

Paper shape asserted: monotone decline with intensity; MECT beats FCFS at
the medium (saturation) point — the §4 learning outcome — because FCFS is
blind to execution-time heterogeneity.
"""

from repro.education.assignment import (
    build_heterogeneous_eet,
    run_completion_sweep,
)


def test_bench_figure6(benchmark, results_dir, assignment_config):
    eet = build_heterogeneous_eet(assignment_config)

    figure = benchmark.pedantic(
        run_completion_sweep,
        args=(eet, ("FCFS", "MECT", "MEET")),
        kwargs=dict(
            config=assignment_config,
            batch=False,
            title="Fig 6 — completion % of immediate policies, heterogeneous system",
        ),
        rounds=1,
        iterations=1,
    )

    out = figure.to_text() + "\n\nraw cell means:\n"
    for intensity in ("low", "medium", "high"):
        for policy in ("FCFS", "MECT", "MEET"):
            out += f"  {intensity:<7} {policy:<5} {100 * figure.mean(intensity, policy):6.2f}%\n"
    (results_dir / "figure6_heterogeneous_immediate.txt").write_text(
        out, encoding="utf-8"
    )
    figure.chart.to_csv(results_dir / "figure6_heterogeneous_immediate.csv")

    # Shape 1: monotone decline with intensity.
    for policy in ("FCFS", "MECT", "MEET"):
        assert figure.mean("low", policy) >= figure.mean("medium", policy) - 0.02
        assert figure.mean("medium", policy) >= figure.mean("high", policy) - 0.02
        assert figure.mean("low", policy) > figure.mean("high", policy)

    # Shape 2: MECT > FCFS once the system saturates (the §4 lesson).
    assert figure.mean("medium", "MECT") > figure.mean("medium", "FCFS")

    # Shape 3: everyone is fine when under-subscribed.
    assert figure.mean("low", "MECT") > 0.95
    assert figure.mean("low", "FCFS") > 0.95
