"""E-X1 — ablation: machine-queue capacity for batch policies.

The Fig-3 GUI exposes the machine queue size for batch policies; this
ablation quantifies the design choice. Tiny queues keep mapping decisions
late (good information) but risk starving machines; effectively-unbounded
queues degenerate batch mode toward immediate-mode commitment. Sweeps
capacity ∈ {1, 2, 3, 5, 10} for Min-Min on a saturated heterogeneous system.
"""


from repro.core.config import Scenario
from repro.education.assignment import AssignmentConfig, build_heterogeneous_eet
from repro.metrics.stats import summarize
from repro.viz.barchart import BarChart

CAPACITIES = (1, 2, 3, 5, 10)


def run_sweep():
    config = AssignmentConfig(duration=500.0, replications=5, seed=2023)
    eet = build_heterogeneous_eet(config)
    outcomes = {}
    for capacity in CAPACITIES:
        rates = []
        for rep in range(config.replications):
            scenario = Scenario(
                eet=eet,
                machine_counts={n: 1 for n in eet.machine_type_names},
                scheduler="MM",
                queue_capacity=capacity,
                generator={"duration": config.duration, "intensity": "high"},
                seed=config.seed,
                name=f"queue-{capacity}",
            )
            rates.append(scenario.run(replication=rep).summary.completion_rate)
        outcomes[capacity] = summarize(rates).mean
    return outcomes


def test_bench_ablation_queue_size(benchmark, results_dir):
    outcomes = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    chart = BarChart(
        "ablation — MM completion % vs machine-queue capacity (high intensity)",
        max_value=100.0,
        unit="%",
    )
    for capacity, rate in outcomes.items():
        chart.add(f"capacity={capacity}", 100.0 * rate)
    (results_dir / "ablation_queue_size.txt").write_text(
        chart.to_text() + "\n", encoding="utf-8"
    )
    chart.to_csv(results_dir / "ablation_queue_size.csv")

    rates = list(outcomes.values())
    assert all(0.0 < r <= 1.0 for r in rates)
    # Small queues dominate under overload: keeping tasks in the batch queue
    # lets Min-Min keep re-deciding instead of committing early. The shape:
    # capacity 1 is at least as good as capacity 10 by a visible margin.
    assert outcomes[1] >= outcomes[10]
    # And the sweep actually moves the metric (the knob matters).
    assert max(rates) - min(rates) > 0.01
