"""Load driver for the campaign service: duplicate-heavy submission storms.

The service exists for the classroom case where many students submit the
same handful of specs. This driver models exactly that: *S* submitter
threads racing over *U* unique scenarios, each submitting *R* times, against
a fresh service. It returns a :class:`LoadReport` and **asserts the
single-flight invariant inline** — exactly one engine execution per unique
canonical key, no matter how contended the submission path was.

Run standalone (``python benchmarks/bench_service_load.py [--smoke]``) or
through pytest-benchmark via ``test_bench_service_load.py``, whose
``submissions_per_sec`` figure feeds ``check_regression.py`` against
``results/service_load_baseline.json``.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path


@dataclass(frozen=True)
class LoadReport:
    """Outcome of one submission storm."""

    submitters: int
    unique_specs: int
    submissions: int
    executions: int
    cache_hits: int
    coalesced: int
    wall: float
    submissions_per_sec: float

    def line(self) -> str:
        return (
            f"{self.submissions} submissions from {self.submitters} threads "
            f"over {self.unique_specs} unique specs: "
            f"{self.executions} engine runs, "
            f"{self.cache_hits} cache hits, {self.coalesced} coalesced, "
            f"{self.submissions_per_sec:,.0f} submissions/s"
        )


def make_specs(unique_specs: int, duration: float) -> list[dict]:
    """*unique_specs* distinct scenarios (seed axis) — distinct cache keys."""
    return [
        {
            "preset": "classroom_homogeneous",
            "overrides": {"duration": duration, "seed": 100 + i},
        }
        for i in range(unique_specs)
    ]


def run_load(
    *,
    submitters: int = 8,
    unique_specs: int = 3,
    repeats: int = 4,
    workers: int = 2,
    duration: float = 30.0,
    root: str | Path | None = None,
) -> LoadReport:
    """One storm: barrier-released threads submit a duplicate-heavy mix.

    Submitter *i* submits *repeats* specs round-robin starting at offset
    ``i % unique_specs``, so every unique spec is hit by several threads
    at once. Raises ``AssertionError`` if the service executes more (or
    fewer) than one engine run per unique spec.
    """
    from repro.service import CampaignService

    specs = make_specs(unique_specs, duration)
    tmp = None
    if root is None:
        tmp = tempfile.TemporaryDirectory(prefix="e2c-service-load-")
        root = tmp.name
    try:
        with CampaignService(root, workers=workers) as service:
            receipts = []
            lock = threading.Lock()
            barrier = threading.Barrier(submitters)

            def storm(index: int) -> None:
                barrier.wait()
                for r in range(repeats):
                    spec = specs[(index + r) % unique_specs]
                    receipt = service.submit(dict(spec))
                    with lock:
                        receipts.append(receipt)

            threads = [
                threading.Thread(target=storm, args=(i,), name=f"submit-{i}")
                for i in range(submitters)
            ]
            start = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            for receipt in receipts:
                service.wait(receipt.job_id, timeout=300)
            wall = time.perf_counter() - start

            keys = {r.key for r in receipts}
            assert len(keys) == unique_specs, (
                f"expected {unique_specs} unique keys, got {len(keys)}"
            )
            assert service.queue.executions == unique_specs, (
                f"single-flight violated: {service.queue.executions} engine "
                f"runs for {unique_specs} unique specs"
            )
            n = len(receipts)
            return LoadReport(
                submitters=submitters,
                unique_specs=unique_specs,
                submissions=n,
                executions=service.queue.executions,
                cache_hits=service.queue.cache_hits,
                coalesced=service.queue.coalesced,
                wall=wall,
                submissions_per_sec=n / wall if wall > 0 else 0.0,
            )
    finally:
        if tmp is not None:
            tmp.cleanup()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--submitters", type=int, default=8)
    parser.add_argument("--unique-specs", type=int, default=3)
    parser.add_argument("--repeats", type=int, default=4)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--duration", type=float, default=30.0)
    parser.add_argument(
        "--smoke", action="store_true",
        help="single fast storm (CI): tiny scenario, one worker",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.duration = min(args.duration, 20.0)
        args.workers = 1
    report = run_load(
        submitters=args.submitters,
        unique_specs=args.unique_specs,
        repeats=args.repeats,
        workers=args.workers,
        duration=args.duration,
    )
    print(report.line())
    return 0


if __name__ == "__main__":
    sys.exit(main())
