"""E-Q1 — §5 headline number: pre/post quiz improvement.

Paper: "The average score of students has improved from 7.6 (out 12 points)
in the first quiz to 8.94 in the second quiz ... E2C could improve the
students' learning ... by 17.6%."

Regenerates the study over 10 cohort replications (each 23 students, with
the calibrated learning-effect model) and asserts the pre/post means and the
relative improvement stay in the paper's band.
"""

import numpy as np
import pytest

from repro.education.cohort import (
    PAPER_POST_MEAN,
    PAPER_PRE_MEAN,
    run_quiz_study,
)

N_REPLICATIONS = 10


def run_replicated_study():
    return [run_quiz_study(seed=seed) for seed in range(N_REPLICATIONS)]


def test_bench_quiz_improvement(benchmark, results_dir):
    studies = benchmark.pedantic(
        run_replicated_study, rounds=1, iterations=1
    )
    pre = float(np.mean([s.pre_mean for s in studies]))
    post = float(np.mean([s.post_mean for s in studies]))
    improvement = (post - pre) / pre

    out = (
        "pre/post quiz study — paper vs measured\n"
        f"  replications        : {N_REPLICATIONS} cohorts × 23 students\n"
        f"  pre-quiz mean       : measured {pre:5.2f} / 12   paper {PAPER_PRE_MEAN:5.2f}\n"
        f"  post-quiz mean      : measured {post:5.2f} / 12   paper {PAPER_POST_MEAN:5.2f}\n"
        f"  relative improvement: measured {100 * improvement:5.1f}%     paper  17.6%\n"
        "\nper-replication means (pre -> post):\n"
    )
    for i, s in enumerate(studies):
        out += f"  seed {i:>2}: {s.pre_mean:5.2f} -> {s.post_mean:5.2f}  (+{100 * s.improvement:5.1f}%)\n"
    (results_dir / "quiz_improvement.txt").write_text(out, encoding="utf-8")

    # Paper bands.
    assert pre == pytest.approx(PAPER_PRE_MEAN, abs=0.5)
    assert post == pytest.approx(PAPER_POST_MEAN, abs=0.5)
    assert 0.10 < improvement < 0.28
    # Every individual cohort improves.
    assert all(s.post_mean > s.pre_mean for s in studies)
