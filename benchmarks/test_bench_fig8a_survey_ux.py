"""E-F8a — Figure 8a: survey, user-experience scores (§5).

Regenerates the six UX metrics (overall + per-gender means) from the
calibrated synthetic cohort and asserts the paper's aggregates: every UX
metric near 8.3/10 except the "comprehensive report" outlier near 5.7
(the weakness the authors acknowledge), and female scores above male on the
headline metrics.
"""

import pytest

from repro.education.survey import PAPER_METRICS, SurveyStudy, generate_cohort


def build_study() -> SurveyStudy:
    return SurveyStudy(generate_cohort(seed=42))


def test_bench_figure8a(benchmark, results_dir):
    study = benchmark(build_study)
    chart = study.figure_8a()

    out = chart.to_text() + "\n\npaper targets (overall / female / male):\n"
    for metric in PAPER_METRICS:
        if metric.category != "ux":
            continue
        overall = study.mean(metric.key)
        female = study.mean(metric.key, gender="female")
        male = study.mean(metric.key, gender="male")
        out += (
            f"  {metric.label:<24} measured {overall:5.2f}/{female:5.2f}/{male:5.2f}"
            f"   paper -/{metric.female_target:.1f}/{metric.male_target:.1f}\n"
        )
    (results_dir / "figure8a_survey_ux.txt").write_text(out, encoding="utf-8")
    chart.to_csv(results_dir / "figure8a_survey_ux.csv")

    # Paper aggregates (±0.2 rounding tolerance on the calibrated cohort).
    assert study.mean("easy_installation") == pytest.approx(8.3, abs=0.2)
    assert study.mean("intuitive_gui") == pytest.approx(8.35, abs=0.2)
    assert study.mean("ease_of_use") == pytest.approx(8.3, abs=0.2)
    assert study.mean("recommend_to_others") == pytest.approx(8.3, abs=0.2)
    # The one weak metric: comprehensive report ≈ 5.6–5.7.
    report = study.mean("comprehensive_report")
    assert report == pytest.approx(5.7, abs=0.3)
    assert report < study.mean("ease_of_use") - 2.0

    # Gender pattern of §5 on the headline metrics.
    for key in ("intuitive_gui", "ease_of_use", "recommend_to_others"):
        assert study.mean(key, gender="female") > study.mean(key, gender="male")
    # ... and the one reversal the paper reports: males rated the report
    # subsystem higher than females (5.9 vs 4.8).
    assert study.mean("comprehensive_report", gender="male") > study.mean(
        "comprehensive_report", gender="female"
    )
