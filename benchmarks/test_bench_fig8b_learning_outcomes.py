"""E-F8b — Figure 8b: survey, learning-outcome scores (§5).

Regenerates the four learning metrics and asserts the paper's aggregates:
all near 8–9 of 10, heterogeneous-scheduling insight rated ≈ 8.7, overall
usefulness ≈ 8.8, and "E2C is more effective for female students" (female
mean > male mean on every learning metric).
"""

import pytest

from repro.education.survey import PAPER_METRICS, SurveyStudy, generate_cohort


def build_study() -> SurveyStudy:
    return SurveyStudy(generate_cohort(seed=42))


def test_bench_figure8b(benchmark, results_dir):
    study = benchmark(build_study)
    chart = study.figure_8b()

    out = chart.to_text() + "\n\nmeasured vs paper (gender means):\n"
    for metric in PAPER_METRICS:
        if metric.category != "learning":
            continue
        out += (
            f"  {metric.label:<44} female {study.mean(metric.key, gender='female'):5.2f}"
            f" (paper {metric.female_target:.1f})   male "
            f"{study.mean(metric.key, gender='male'):5.2f}"
            f" (paper {metric.male_target:.1f})\n"
        )
    (results_dir / "figure8b_learning_outcomes.txt").write_text(
        out, encoding="utf-8"
    )
    chart.to_csv(results_dir / "figure8b_learning_outcomes.csv")

    # Weighted aggregates implied by the paper's gender means.
    assert study.mean("heterogeneous_scheduling") == pytest.approx(8.62, abs=0.2)
    assert study.mean("homogeneous_scheduling") == pytest.approx(8.69, abs=0.2)
    assert study.mean("arrival_rate_impact") == pytest.approx(8.59, abs=0.2)
    assert study.mean("overall_usefulness") == pytest.approx(8.83, abs=0.2)

    # Medians land in the ballpark the paper reports (8.7 / 8 / 8.6 / 8.8).
    assert 8.0 <= study.median("heterogeneous_scheduling") <= 9.5
    assert 8.0 <= study.median("overall_usefulness") <= 9.5

    # "the gender-based results show that E2C is more effective for female
    # students" — female mean strictly above male on every learning metric.
    for metric in PAPER_METRICS:
        if metric.category != "learning":
            continue
        assert study.mean(metric.key, gender="female") > study.mean(
            metric.key, gender="male"
        )
