"""Shared helpers for the benchmark/figure-regeneration harness.

Every benchmark regenerates one paper artifact (table, figure, or headline
number), writes the regenerated content under ``benchmarks/results/`` (so the
series survive the pytest capture), asserts the paper's qualitative shape,
and times the generating kernel with pytest-benchmark.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def assignment_config():
    """Full-size configuration for the Figure 5/6/7 regenerations."""
    from repro.education.assignment import AssignmentConfig

    return AssignmentConfig(duration=500.0, replications=5, seed=2023)

