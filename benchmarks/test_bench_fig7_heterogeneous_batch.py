"""E-F7 — Figure 7: completion % of batch policies on a heterogeneous
system at low/medium/high intensity (MM, MMU, MSD; machine queue size 3).

Paper shapes asserted: monotone decline with intensity, and the §4 lesson
that batch policies outperform the best immediate policy on a saturated
heterogeneous system (cross-checked against an MECT run on the same system).
"""

from repro.education.assignment import (
    build_heterogeneous_eet,
    run_completion_sweep,
)


def test_bench_figure7(benchmark, results_dir, assignment_config):
    eet = build_heterogeneous_eet(assignment_config)

    figure = benchmark.pedantic(
        run_completion_sweep,
        args=(eet, ("MM", "MMU", "MSD")),
        kwargs=dict(
            config=assignment_config,
            batch=True,
            title="Fig 7 — completion % of batch policies, heterogeneous system",
        ),
        rounds=1,
        iterations=1,
    )

    # The immediate-mode reference for the batch-vs-immediate lesson.
    immediate = run_completion_sweep(
        eet, ("MECT",), config=assignment_config, batch=False,
        title="immediate reference",
    )

    out = figure.to_text() + "\n\nraw cell means:\n"
    for intensity in ("low", "medium", "high"):
        for policy in ("MM", "MMU", "MSD"):
            out += f"  {intensity:<7} {policy:<4} {100 * figure.mean(intensity, policy):6.2f}%\n"
        out += (
            f"  {intensity:<7} MECT(immediate reference) "
            f"{100 * immediate.mean(intensity, 'MECT'):6.2f}%\n"
        )
    (results_dir / "figure7_heterogeneous_batch.txt").write_text(
        out, encoding="utf-8"
    )
    figure.chart.to_csv(results_dir / "figure7_heterogeneous_batch.csv")

    # Shape 1: monotone decline with intensity.
    for policy in ("MM", "MMU", "MSD"):
        assert figure.mean("low", policy) >= figure.mean("medium", policy) - 0.02
        assert figure.mean("medium", policy) >= figure.mean("high", policy) - 0.02

    # Shape 2: the best batch policy beats the immediate reference when the
    # system is oversubscribed (§4: "batch policies outperform immediate
    # scheduling policies for heterogeneous systems").
    best_batch_high = max(
        figure.mean("high", p) for p in ("MM", "MMU", "MSD")
    )
    assert best_batch_high > immediate.mean("high", "MECT")
