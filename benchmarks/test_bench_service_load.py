"""Service load benchmark: duplicate-submission storms through the queue.

Times :func:`bench_service_load.run_load` — 8 submitter threads × 4
submissions over 3 unique specs against a fresh service each round — and
attaches ``submissions_per_sec`` (mirrored into ``events_per_sec`` so
``check_regression.py`` can gate it against
``results/service_load_baseline.json``). The single-flight invariant is
asserted inside the driver on every round: one engine execution per unique
canonical key, under contention, every time.
"""

from bench_recording import record_result_line
from bench_service_load import run_load


def test_bench_service_duplicate_storm(benchmark, results_dir):
    report = benchmark.pedantic(
        lambda: run_load(
            submitters=8, unique_specs=3, repeats=4, workers=2, duration=30.0
        ),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    throughput = report.submissions / benchmark.stats["mean"]
    benchmark.extra_info["submissions"] = report.submissions
    benchmark.extra_info["unique_specs"] = report.unique_specs
    benchmark.extra_info["executions"] = report.executions
    # The regression gate keys on events_per_sec; for the service tier the
    # "event" is a submission handled end-to-end (submit -> terminal job).
    benchmark.extra_info["events_per_sec"] = throughput
    benchmark.extra_info["submissions_per_sec"] = throughput
    record_result_line(
        results_dir / "service_load.txt",
        "duplicate storm (8 submitters, 3 unique specs)",
        report.line(),
    )
    assert report.executions == report.unique_specs
    assert report.submissions == 32
    assert report.cache_hits + report.coalesced == (
        report.submissions - report.unique_specs
    )
